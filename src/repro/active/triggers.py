"""Triggers: the user-facing face of ECA rules.

A trigger is an active rule dressed the way database people expect:

    ON   +order(Id, Item, Qty)          (event — optional)
    IF   stock(Item, Level), Level...   (condition literals)
    THEN -available(Item)               (action)

:class:`TriggerBuilder` (via :func:`on` / :func:`immediately`) builds
:class:`~repro.lang.rules.Rule` objects with names and priorities, ready
to register on an :class:`~repro.active.activedb.ActiveDatabase`.  Rules
written in text syntax or via :mod:`repro.lang.builder` are equally
accepted everywhere; this module is sugar, not a second rule system.
"""

from __future__ import annotations

from ..errors import LanguageError
from ..lang.atoms import Atom
from ..lang.builder import PredAtom, _coerce_literal, _coerce_update
from ..lang.literals import Event
from ..lang.rules import Rule
from ..lang.updates import Update, UpdateOp


class TriggerBuilder:
    """Accumulates ON / IF parts, finished by :meth:`then`."""

    def __init__(self, events=()):
        self._literals = list(events)

    def _add_event(self, op, target):
        if isinstance(target, PredAtom):
            target = target.atom
        if isinstance(target, Event):
            self._literals.append(target)
            return self
        if isinstance(target, Update):
            self._literals.append(Event(target))
            return self
        if not isinstance(target, Atom):
            raise LanguageError("trigger event must name an atom, got %r" % (target,))
        self._literals.append(Event(Update(op, target)))
        return self

    def on_insert(self, target):
        """Also fire on insertion of *target* (an event literal ``+target``)."""
        return self._add_event(UpdateOp.INSERT, target)

    def on_delete(self, target):
        """Also fire on deletion of *target* (an event literal ``-target``)."""
        return self._add_event(UpdateOp.DELETE, target)

    def if_(self, *conditions):
        """Add condition literals (positive atoms, ``~atom`` for negation)."""
        self._literals.extend(_coerce_literal(c) for c in conditions)
        return self

    def then(self, op_or_update, target=None, name=None, priority=None):
        """Finish the trigger with its action; returns the compiled Rule."""
        head = _coerce_update(op_or_update, target)
        return Rule(
            head=head, body=tuple(self._literals), name=name, priority=priority
        )


def on(*events):
    """Start a trigger from one or more event expressions.

    Events are ``+p(X)`` / ``-p(X)`` expressions built with
    :class:`~repro.lang.builder.Pred` (or explicit
    :class:`~repro.lang.literals.Event` objects)::

        on(+order("Id", "Item")).if_(stock("Item")).then(-backlog("Item"))
    """
    builder = TriggerBuilder()
    for event in events:
        if isinstance(event, Event):
            builder._literals.append(event)
        elif isinstance(event, Update):
            builder._literals.append(Event(event))
        else:
            raise LanguageError(
                "on(...) expects +p(...)/-p(...) event expressions, got %r; "
                "use if_() for plain conditions" % (event,)
            )
    return builder


def immediately(*conditions):
    """Start a condition-action trigger (no event part)."""
    return TriggerBuilder().if_(*conditions)
