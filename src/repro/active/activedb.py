"""The active database facade: tables + triggers + transactional PARK commits.

This is the paper's "implementability on top of a commercial DBMS"
requirement made concrete: a small DBMS-shaped API where every commit runs
the PARK semantics over the registered rules and the transaction's update
set, then atomically applies the resulting delta.

    >>> from repro.active import ActiveDatabase
    >>> db = ActiveDatabase.from_text("emp(joe). active(joe). payroll(joe, 10).")
    >>> _ = db.add_rule("emp(X), not active(X), payroll(X, S) -> -payroll(X, S).")
    >>> with db.transaction() as tx:
    ...     _ = tx.delete("active", "joe")
    >>> db.rows("payroll")
    []
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter

from ..core.blocking import BlockingMode
from ..core.engine import ParkEngine
from ..engine.plancache import PlanCache
from ..errors import LanguageError, TransactionError
from ..lang.atoms import Atom
from ..lang.program import Program
from ..lang.rules import Rule
from ..lang.terms import Constant
from ..obs import metrics as _obs
from ..policies.base import as_policy
from ..storage.database import Database
from .events import CommitRecord, EventLog
from .transaction import Transaction, TxState


class ActiveDatabase:
    """A database instance with registered active rules and a conflict policy."""

    def __init__(
        self,
        database=None,
        rules=(),
        policy=None,
        blocking_mode=BlockingMode.ALL,
        listeners=(),
        journal=None,
        audit=None,
    ):
        if database is None:
            database = Database()
        elif not isinstance(database, Database):
            database = Database(database)
        self._database = database
        if journal is not None and not hasattr(journal, "append"):
            from .journal import Journal

            journal = Journal(journal)
        self.journal = journal
        # ``audit``: None/False (off), True (record a decision trail per
        # commit; persisted to a ``<journal>.audit`` sidecar when a journal
        # is configured), a path, or an AuditLog instance.  The trail of
        # the latest commit always rides on the commit's ParkResult.
        self.audit_log = None
        self._audit_enabled = bool(audit)
        if audit is not None and audit is not False:
            from ..obs.audit import SIDECAR_SUFFIX, AuditLog

            if isinstance(audit, AuditLog):
                self.audit_log = audit
            elif audit is not True:
                self.audit_log = AuditLog(audit)
            elif journal is not None:
                self.audit_log = AuditLog(journal.path + SIDECAR_SUFFIX)
        self._trail = None
        self._rules = []
        for rule in rules:
            self.add_rule(rule)
        if policy is None:
            from ..policies.inertia import InertiaPolicy

            policy = InertiaPolicy()
        self.policy = as_policy(policy)
        self.blocking_mode = blocking_mode
        self.listeners = tuple(listeners)
        self.log = EventLog()
        self._next_tx = 1
        self._open_tx = None
        # Cross-transaction plan cache: commits re-run the same rule set,
        # so program analysis is derived once and validated thereafter.
        self.plan_cache = PlanCache()

    # -- constructors ---------------------------------------------------------------

    @classmethod
    def from_text(cls, facts_text, rules_text="", **options):
        """Build from fact syntax and (optionally) rule syntax."""
        db = cls(Database.from_text(facts_text), **options)
        if rules_text:
            db.add_rules(rules_text)
        return db

    # -- schema & data access ----------------------------------------------------------

    @property
    def database(self):
        """The live underlying :class:`Database` (mutate at your own risk)."""
        return self._database

    def define_table(self, predicate, columns):
        """Declare a table's schema up front (otherwise inferred on first use)."""
        from ..storage.catalog import Schema

        self._database.catalog.declare(
            Schema(predicate, len(tuple(columns)), tuple(columns))
        )

    def rows(self, predicate):
        """All rows of *predicate* as sorted value tuples."""
        relation = self._database.relation(predicate)
        if relation is None:
            return []
        return sorted(relation.rows(), key=str)

    def contains(self, predicate_or_atom, *values):
        """Membership test: ``db.contains("emp", "joe")`` or ``db.contains(atom)``."""
        if isinstance(predicate_or_atom, Atom):
            return predicate_or_atom in self._database
        atom = Atom(predicate_or_atom, tuple(Constant(v) for v in values))
        return atom in self._database

    def select(self, predicate, *pattern):
        """Rows matching a pattern; ``None`` is a wildcard.

        ``db.select("payroll", "joe", None)`` returns the rows whose first
        column is ``"joe"``.
        """
        relation = self._database.relation(predicate)
        if relation is None:
            return []
        bound = {
            position: value
            for position, value in enumerate(pattern)
            if value is not None
        }
        return sorted(relation.candidates(bound), key=str)

    def __len__(self):
        return len(self._database)

    def query(self, body_text):
        """Ad-hoc conjunctive query with negation, e.g.
        ``db.query("payroll(X, S), not active(X)")``.

        Returns a list of ``{variable name: value}`` dicts, sorted.
        Event literals never hold against committed data (there are no
        pending updates outside a running PARK computation).
        """
        from ..engine.query import query_rows

        return query_rows(body_text, self._database)

    def ask(self, body_text):
        """Boolean query: ``db.ask("emp(joe), not active(joe)")``."""
        from ..engine.query import holds

        return holds(body_text, self._database)

    # -- rules ---------------------------------------------------------------------------

    def add_rule(self, rule):
        """Register one active rule (a Rule, trigger-built Rule, or rule text)."""
        if isinstance(rule, str):
            from ..lang.parser import parse_program

            parsed = parse_program(rule)
            if len(parsed) != 1:
                raise LanguageError(
                    "add_rule expects exactly one rule; got %d (use add_rules)"
                    % len(parsed)
                )
            rule = parsed[0]
        if not isinstance(rule, Rule):
            raise TypeError("not a rule: %r" % (rule,))
        # Re-validate the whole set so duplicate names and arity clashes
        # surface at registration, not at commit.
        Program(tuple(self._rules) + (rule,))
        self._rules.append(rule)
        return rule

    def add_rules(self, rules):
        """Register many rules (iterable of rules, or rule source text)."""
        if isinstance(rules, str):
            from ..lang.parser import parse_program

            rules = tuple(parse_program(rules))
        return [self.add_rule(r) for r in rules]

    def drop_rule(self, name):
        """Unregister the rule with the given name."""
        for index, rule in enumerate(self._rules):
            if rule.name == name:
                del self._rules[index]
                return rule
        raise KeyError(name)

    @property
    def program(self):
        """The registered rules as an immutable :class:`Program`."""
        return Program(tuple(self._rules))

    # -- transactions --------------------------------------------------------------------

    def transaction(self):
        """Open a transaction (usable as a context manager).

        One open transaction at a time: the PARK semantics is defined for a
        single update set ``U`` against a single instance ``D``.
        """
        if self._open_tx is not None and self._open_tx.state is TxState.ACTIVE:
            raise TransactionError(
                "transaction tx%d is still active" % self._open_tx.transaction_id
            )
        tx = Transaction(self, self._next_tx)
        self._next_tx += 1
        self._open_tx = tx
        return tx

    def insert(self, predicate_or_atom, *values):
        """Auto-commit convenience: one-update transaction, committed now."""
        with self.transaction() as tx:
            tx.insert(predicate_or_atom, *values)
        return tx.result

    def delete(self, predicate_or_atom, *values):
        """Auto-commit convenience: one-update transaction, committed now."""
        with self.transaction() as tx:
            tx.delete(predicate_or_atom, *values)
        return tx.result

    def refresh(self):
        """Run the rules with an empty update set (condition-action sweep).

        Useful after bulk-loading data directly into :attr:`database`.
        """
        with self.transaction() as tx:
            pass
        return tx.result

    # -- durability -----------------------------------------------------------------------

    def checkpoint(self, snapshot_path):
        """Persist the current contents and truncate the journal.

        After a checkpoint, :meth:`recover` needs only the snapshot plus
        commits journaled *since* — the classical WAL checkpoint.  The
        snapshot is written (and fsynced, file and directory) before the
        journal is discarded, so a crash between the two leaves a valid
        snapshot plus a redundant-but-replayable journal, never neither.

        The audit sidecar is deliberately *not* truncated: it is history,
        not redo state, and ``repro audit`` keeps answering questions
        about pre-checkpoint transactions.
        """
        from ..storage.textio import dump_database

        dump_database(self._database, snapshot_path)
        if self.journal is not None:
            self.journal.truncate()
        m = _obs.ACTIVE
        if m is not None:
            m.inc("journal.checkpoints")

    @contextmanager
    def group_commit(self, size=8):
        """Coalesce the journal fsyncs of the block's commits, *size* per barrier.

        Throughput mode for bursts of small auto-commit transactions: each
        commit is still journaled before it is applied, but the fsync
        happens once per *size* records (and once on exit) instead of per
        commit.  A crash inside the block can lose at most the un-fsynced
        suffix of the burst; recovery still yields a clean prefix of the
        committed history.  No-op when the database has no journal.
        """
        if self.journal is None:
            yield self
            return
        with self.journal.group_commit(size):
            yield self

    @classmethod
    def recover(cls, snapshot_path, journal_path, rules=(), **options):
        """Rebuild a database from a checkpoint snapshot plus a journal.

        Replays the journaled *deltas* (not the rules), so the recovered
        state is exactly what was committed even if the rule set changed.
        A torn final record (crash mid-append) is truncated off the file,
        and the recovered instance keeps journaling to the same file.

        Pass ``audit=True`` to keep appending decision trails to the
        journal's ``.audit`` sidecar; a torn final audit record (the
        sidecar is not fsynced per commit) is repaired the same way.
        """
        from ..storage.textio import load_database
        from .journal import Journal

        start = perf_counter()
        database = load_database(snapshot_path)
        journal = Journal(journal_path)
        records = journal.records()
        for record in records:
            record.delta.apply(database, in_place=True)
        journal.repair_tail()
        db = cls(database, rules=rules, journal=journal, **options)
        if records:
            db._next_tx = max(r.transaction_id for r in records) + 1
        if db.audit_log is not None:
            db.audit_log.repair_tail()
        m = _obs.ACTIVE
        if m is not None:
            m.inc("journal.recoveries")
            m.inc("journal.records_replayed", len(records))
            m.observe("journal.recovery", perf_counter() - start)
        return db

    # -- the commit path --------------------------------------------------------------------

    def _commit(self, tx):
        start = perf_counter()
        trail = None
        if self._audit_enabled:
            from ..obs.audit import DecisionTrail

            # One reusable trail per database: commits are serial and
            # ``trail.start`` resets it, so each commit records cleanly.
            if self._trail is None:
                self._trail = DecisionTrail()
            trail = self._trail
        engine = ParkEngine(
            policy=self.policy,
            blocking_mode=self.blocking_mode,
            listeners=self.listeners,
            facts=True,
            plan_cache=self.plan_cache,
            audit=trail,
        )
        result = engine.run(self.program, self._database, updates=tx.updates())
        # Write-ahead ordering: the journal record must be durable before
        # the delta touches the live database.  If the append fails (crash,
        # full disk), the database is unchanged and the transaction simply
        # never happened; the reverse order would acknowledge a commit the
        # journal knows nothing about.
        if self.journal is not None:
            self.journal.append(tx.transaction_id, tx.updates(), result.delta)
        result.delta.apply(self._database, in_place=True)
        # The decision trail is appended *after* the commit point: it is
        # observability, not part of the durability contract, so a failed
        # trail write must never un-commit an already-journaled delta.
        if self.audit_log is not None and trail is not None:
            self.audit_log.append(tx.transaction_id, trail)
        self.log.append(
            CommitRecord(
                transaction_id=tx.transaction_id,
                requested=tx.updates(),
                delta=result.delta,
                stats=result.stats,
                policy_name=result.policy_name,
                blocked_rules=tuple(result.blocked_rules()),
            )
        )
        m = _obs.ACTIVE
        if m is not None:
            m.inc("active.commits")
            m.inc("active.commit_updates", len(result.delta))
            m.observe("active.commit", perf_counter() - start)
        return result

    def __repr__(self):
        return "ActiveDatabase(%d atoms, %d rules, policy=%s)" % (
            len(self._database),
            len(self._rules),
            self.policy.name,
        )
