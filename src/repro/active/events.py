"""The event log: a durable record of committed transactions.

Every commit through the active-database facade appends one
:class:`CommitRecord` capturing what the transaction *requested* (the
update set ``U``), what the rules *made of it* (the applied delta — rules
may amplify, extend or override the request, subject to the conflict
policy), and the run statistics.  The log is what an administrator would
audit to answer "why did this row disappear?" — pair it with
:mod:`repro.analysis.explain` for rule-level answers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class CommitRecord:
    """One committed transaction."""

    transaction_id: int
    requested: Tuple
    delta: object
    stats: object
    policy_name: str
    blocked_rules: Tuple[str, ...] = ()

    def __str__(self):
        return "tx%d: requested %d updates, applied %s via %s" % (
            self.transaction_id,
            len(self.requested),
            self.delta,
            self.policy_name,
        )


class EventLog:
    """Append-only log of commit records."""

    def __init__(self):
        self._records = []

    def append(self, record):
        if not isinstance(record, CommitRecord):
            raise TypeError("expected a CommitRecord, got %r" % (record,))
        self._records.append(record)

    def __len__(self):
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def __getitem__(self, index):
        return self._records[index]

    def last(self):
        """The most recent commit record, or ``None``."""
        return self._records[-1] if self._records else None

    def for_atom(self, atom):
        """All commits whose applied delta touched *atom*."""
        return [
            record
            for record in self._records
            if atom in record.delta.inserts or atom in record.delta.deletes
        ]

    def clear(self):
        self._records.clear()
