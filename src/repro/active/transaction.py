"""Transactions: staged update sets with savepoints.

A transaction collects the user's updates ``U`` without touching the
database; :meth:`commit` hands ``U`` to the PARK engine (building ``P_U``,
Section 4.3) and atomically applies the resulting delta.  Nothing is
visible to other readers until commit — the paper's semantics is defined
on the pre-transaction instance ``D``, and this facade keeps that contract
literal.

Savepoints are cursor marks into the staged update list: rolling back to a
savepoint discards the updates staged after it (cheap, since nothing has
been applied yet).
"""

from __future__ import annotations

import enum

from ..errors import TransactionError
from ..lang.atoms import Atom
from ..lang.terms import Constant
from ..lang.updates import Update, UpdateOp


class TxState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """A staged set of updates against an :class:`ActiveDatabase`."""

    def __init__(self, activedb, transaction_id):
        self._db = activedb
        self.transaction_id = transaction_id
        self._updates = []
        self._savepoints = {}
        self._state = TxState.ACTIVE
        self.result = None

    # -- state ------------------------------------------------------------------

    @property
    def state(self):
        return self._state

    def _require_active(self):
        if self._state is not TxState.ACTIVE:
            raise TransactionError(
                "transaction tx%d is %s" % (self.transaction_id, self._state.value)
            )

    # -- staging -----------------------------------------------------------------

    @staticmethod
    def _atom(predicate_or_atom, values):
        if isinstance(predicate_or_atom, Atom):
            if values:
                raise TransactionError(
                    "pass either an Atom or predicate+values, not both"
                )
            atom = predicate_or_atom
        else:
            atom = Atom(
                predicate_or_atom, tuple(Constant(v) for v in values)
            )
        if not atom.is_ground():
            raise TransactionError("transaction updates must be ground: %s" % atom)
        return atom

    def insert(self, predicate_or_atom, *values):
        """Stage an insertion: ``tx.insert("emp", "joe")`` or ``tx.insert(atom)``."""
        self._require_active()
        self._updates.append(
            Update(UpdateOp.INSERT, self._atom(predicate_or_atom, values))
        )
        return self

    def delete(self, predicate_or_atom, *values):
        """Stage a deletion."""
        self._require_active()
        self._updates.append(
            Update(UpdateOp.DELETE, self._atom(predicate_or_atom, values))
        )
        return self

    def updates(self):
        """The staged updates, de-duplicated, in staging order."""
        seen = set()
        result = []
        for update in self._updates:
            if update not in seen:
                seen.add(update)
                result.append(update)
        return tuple(result)

    # -- savepoints --------------------------------------------------------------

    def savepoint(self, name=None):
        """Mark the current staging position; returns the savepoint name."""
        self._require_active()
        if name is None:
            name = "sp_%d" % (len(self._savepoints) + 1)
        if name in self._savepoints:
            raise TransactionError("savepoint %r already exists" % name)
        self._savepoints[name] = len(self._updates)
        return name

    def rollback_to(self, name):
        """Discard updates staged after the named savepoint."""
        self._require_active()
        position = self._savepoints.get(name)
        if position is None:
            raise TransactionError("no such savepoint: %r" % name)
        del self._updates[position:]
        # Drop savepoints created after this one.
        self._savepoints = {
            n: p for n, p in self._savepoints.items() if p <= position
        }
        return self

    # -- completion ------------------------------------------------------------------

    def commit(self):
        """Run PARK over the staged updates and apply the result atomically.

        Returns the :class:`~repro.core.result.ParkResult`.  A conflicting
        *staged set* (both ``+a`` and ``-a``) is legitimate — the rules
        ``tx_i`` conflict and the policy resolves them, exactly as Section
        4.3 prescribes.
        """
        self._require_active()
        self.result = self._db._commit(self)
        self._state = TxState.COMMITTED
        return self.result

    def rollback(self):
        """Abandon the transaction; the database is untouched."""
        self._require_active()
        self._updates.clear()
        self._state = TxState.ABORTED

    # -- context manager ----------------------------------------------------------------

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if self._state is TxState.ACTIVE:
            if exc_type is None:
                self.commit()
            else:
                self.rollback()
        return False

    def __repr__(self):
        return "Transaction(tx%d, %s, %d staged)" % (
            self.transaction_id,
            self._state.value,
            len(self._updates),
        )
