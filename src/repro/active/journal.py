"""The commit journal: durable, replayable history of applied deltas.

A :class:`Journal` appends one framed record per committed transaction —
the transaction id, the requested update set ``U``, and the applied
delta.  Recovery is the classical recipe: restore the base snapshot,
then replay the journal's deltas in order.  Because PARK is
deterministic, replaying *deltas* (rather than re-running rules)
reproduces the exact state even if the rule set has changed since.

The journal is a write-ahead log: :meth:`ActiveDatabase._commit`
appends (and fsyncs) the record *before* the delta touches the live
database, so an acknowledged commit is always recoverable and a crash
between the two loses nothing that was acknowledged.

Record framing (v2), one record per line::

    v2|tx=3|len=57|crc=9f0c41aa|requested=-active(joe)|applied=+audit(joe)

* field values are percent-escaped (``%`` ``|`` ``;`` newline CR), so
  quoted string constants containing the structural bytes round-trip;
* ``len`` is the byte length of the body (everything after the fourth
  ``|``) — a truncated record, including one missing only its trailing
  newline, can never masquerade as complete;
* ``crc`` is the CRC-32 of the body bytes, catching bit rot and pages
  that hit disk out of order.

Files written by the v1 format (plain ``tx=...|requested=...|applied=...``
lines, no framing) are still read transparently; new appends always
write v2, so a pre-existing journal simply becomes mixed-version.

Crash artifacts at the tail are tolerated *and repaired*:
:meth:`records` stops at a torn final record and reports it in
:attr:`corrupt_tail`; the first :meth:`append` (and
:meth:`ActiveDatabase.recover`) physically truncates the torn bytes via
:meth:`repair_tail` so the next record is never concatenated onto them.
Corruption *before* intact records still raises — that indicates real
damage, not a crash mid-append.

Throughput: :meth:`group_commit` batches the fsyncs of many small
auto-commit transactions into one barrier (see ``docs/durability.md``).
"""

from __future__ import annotations

import os
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import List, Optional, Tuple

from ..errors import StorageError
from ..lang.parser import parse_atom
from ..lang.pretty import render_atom
from ..lang.updates import Update, UpdateOp
from ..obs import metrics as _obs
from ..storage.delta import Delta
from ..storage.fsio import REAL_FS


@dataclass(frozen=True)
class JournalRecord:
    """One committed transaction as stored in the journal."""

    transaction_id: int
    requested: Tuple[Update, ...]
    delta: Delta
    version: int = field(default=2, compare=False)


def _render_update(update):
    return "%s%s" % (update.op.sign, render_atom(update.atom))


def _parse_update(text):
    text = text.strip()
    if not text or text[0] not in "+-":
        raise StorageError("journal update %r is malformed" % text)
    op = UpdateOp.INSERT if text[0] == "+" else UpdateOp.DELETE
    return Update(op, parse_atom(text[1:]))


# -- v2 framing ---------------------------------------------------------------------

#: Escape order matters: ``%`` first on encode, last on decode.
_ESCAPES = (
    ("%", "%25"),
    ("|", "%7C"),
    (";", "%3B"),
    ("\n", "%0A"),
    ("\r", "%0D"),
)


def _escape_field(text):
    for raw, encoded in _ESCAPES:
        text = text.replace(raw, encoded)
    return text


def _unescape_field(text):
    for raw, encoded in reversed(_ESCAPES):
        text = text.replace(encoded, raw)
    return text


def _render_record(record):
    requested = ";".join(
        _escape_field(_render_update(u)) for u in record.requested
    )
    applied = ";".join(
        _escape_field(_render_update(u)) for u in record.delta.updates()
    )
    body = "requested=%s|applied=%s" % (requested, applied)
    body_bytes = body.encode("utf-8")
    return "v2|tx=%d|len=%d|crc=%08x|%s" % (
        record.transaction_id,
        len(body_bytes),
        zlib.crc32(body_bytes) & 0xFFFFFFFF,
        body,
    )


def _parse_field(part, name, line):
    prefix = name + "="
    if not part.startswith(prefix):
        raise StorageError(
            "journal line missing %r field: %r" % (name, line)
        )
    return part[len(prefix):]


def _parse_record_v2(line):
    parts = line.split("|", 4)
    if len(parts) != 5:
        raise StorageError("truncated v2 journal record %r" % line)
    _, tx_part, len_part, crc_part, body = parts
    try:
        transaction_id = int(_parse_field(tx_part, "tx", line))
        length = int(_parse_field(len_part, "len", line))
        crc = int(_parse_field(crc_part, "crc", line), 16)
    except ValueError as error:
        raise StorageError("malformed journal line %r (%s)" % (line, error))
    body_bytes = body.encode("utf-8")
    if len(body_bytes) != length:
        raise StorageError(
            "torn v2 journal record: body is %d bytes, frame says %d"
            % (len(body_bytes), length)
        )
    if zlib.crc32(body_bytes) & 0xFFFFFFFF != crc:
        raise StorageError("v2 journal record fails its CRC: %r" % line)
    fields = body.split("|")
    if len(fields) != 2:
        raise StorageError("malformed v2 journal body %r" % body)
    try:
        requested = tuple(
            _parse_update(_unescape_field(u))
            for u in _parse_field(fields[0], "requested", line).split(";")
            if u
        )
        applied = Delta(
            _parse_update(_unescape_field(u))
            for u in _parse_field(fields[1], "applied", line).split(";")
            if u
        )
    except (KeyError, ValueError) as error:
        raise StorageError("malformed journal line %r (%s)" % (line, error))
    return JournalRecord(
        transaction_id=transaction_id,
        requested=requested,
        delta=applied,
        version=2,
    )


def _parse_record_v1(line):
    fields = {}
    for part in line.split("|"):
        key, _, value = part.partition("=")
        if not _:
            raise StorageError("journal line missing '=': %r" % line)
        fields[key] = value
    try:
        transaction_id = int(fields["tx"])
        requested = tuple(
            _parse_update(u) for u in fields["requested"].split(";") if u
        )
        applied = Delta(
            _parse_update(u) for u in fields["applied"].split(";") if u
        )
    except (KeyError, ValueError) as error:
        raise StorageError("malformed journal line %r (%s)" % (line, error))
    return JournalRecord(
        transaction_id=transaction_id,
        requested=requested,
        delta=applied,
        version=1,
    )


def _parse_record(line):
    line = line.rstrip("\n").rstrip("\r")
    if line.startswith("v2|"):
        return _parse_record_v2(line)
    return _parse_record_v1(line)


class Journal:
    """An append-only commit journal backed by one file.

    All file access goes through *fs* (default: the production
    :data:`~repro.storage.fsio.REAL_FS`), which the fault-injection
    harness replaces to simulate crashes at byte granularity.

    A journal has one writer: the record count is cached after the first
    scan (``__len__`` would otherwise re-parse the whole file) and kept
    current by :meth:`append`/:meth:`truncate`, so concurrent external
    writers would stale it.
    """

    def __init__(self, path, fs=None):
        self.path = str(path)
        self.corrupt_tail: Optional[str] = None
        self._fs = fs if fs is not None else REAL_FS
        self._count: Optional[int] = None
        self._good_offset = 0
        self._needs_repair = False
        self._scanned = False
        self._tail_checked = False
        self._group_size = 1
        self._pending_syncs = 0

    # -- writing -------------------------------------------------------------------

    def append(self, transaction_id, requested, delta):
        """Durably append one commit record (v2 framing).

        The first append checks the tail and truncates a torn final
        record left by a crash, so new records are never concatenated
        onto torn bytes.  With :meth:`group_commit` active the fsync is
        deferred until the group barrier.
        """
        record = JournalRecord(
            transaction_id=transaction_id,
            requested=tuple(requested),
            delta=delta,
        )
        if not self._tail_checked:
            self.repair_tail()
        fs = self._fs
        data = (_render_record(record) + "\n").encode("utf-8")
        creating = not fs.exists(self.path)
        sync_now = self._group_size <= 1
        fs.append(self.path, data, sync=sync_now)
        if creating:
            # The file's existence must survive the crash too.
            fs.sync_dir(os.path.dirname(os.path.abspath(self.path)))
        m = _obs.ACTIVE
        if m is not None:
            m.inc("journal.appends")
            m.inc("journal.bytes_written", len(data))
            if creating:
                m.inc("journal.dir_fsyncs")
        if sync_now:
            if m is not None:
                m.inc("journal.fsyncs")
        else:
            self._pending_syncs += 1
            if self._pending_syncs >= self._group_size:
                self.sync()
        if self._count is not None:
            self._count += 1
        self._good_offset += len(data)
        return record

    def sync(self):
        """fsync any appends deferred by :meth:`group_commit`."""
        if self._pending_syncs and self._fs.exists(self.path):
            self._fs.sync(self.path)
            m = _obs.ACTIVE
            if m is not None:
                m.inc("journal.fsyncs")
                m.inc("journal.group_flushes")
        self._pending_syncs = 0

    @contextmanager
    def group_commit(self, size):
        """Coalesce up to *size* appends into one fsync barrier.

        Inside the block, appended records are written immediately but
        fsynced only every *size* records (and once more on exit).  A
        crash inside the block can lose at most the un-fsynced suffix —
        recovery still yields a clean prefix of the committed history,
        it just may be a slightly shorter one.
        """
        previous = self._group_size
        self._group_size = max(1, int(size))
        try:
            yield self
        finally:
            self._group_size = previous
            self.sync()

    # -- reading ---------------------------------------------------------------------

    def _scan(self) -> List[JournalRecord]:
        """Parse the file, recording tail state and byte offsets."""
        self.corrupt_tail = None
        self._needs_repair = False
        self._good_offset = 0
        self._scanned = True
        if not self._fs.exists(self.path):
            self._count = 0
            return []
        data = self._fs.read_bytes(self.path)
        lines = data.splitlines(keepends=True)
        # Trailing blank lines never count when deciding whether a bad
        # line is "the tail": a torn record followed by blank line(s)
        # must still be tolerated, not raised on.
        last_content = -1
        for index, raw in enumerate(lines):
            if raw.strip():
                last_content = index
        records = []
        offset = 0
        for index, raw in enumerate(lines):
            end = offset + len(raw)
            if not raw.strip():
                offset = end
                continue
            try:
                text = raw.decode("utf-8")
            except UnicodeDecodeError:
                text = raw.decode("utf-8", "replace")
                failure = StorageError(
                    "journal line %d is not UTF-8" % (index + 1)
                )
            else:
                failure = None
            if failure is None:
                try:
                    record = _parse_record(text)
                except StorageError as error:
                    failure = error
                else:
                    if not raw.endswith(b"\n"):
                        # A complete-looking record without its trailing
                        # newline is still a torn append: the next record
                        # would be concatenated onto this line.
                        failure = StorageError(
                            "final journal record has no trailing newline"
                        )
            if failure is not None:
                if index >= last_content:
                    self.corrupt_tail = text
                    self._needs_repair = True
                    break
                raise failure
            records.append(record)
            self._good_offset = end
            offset = end
        if not self._needs_repair and data and not data.endswith(b"\n"):
            # Trailing blank bytes without a newline: torn junk, repairable.
            self._needs_repair = True
        self._count = len(records)
        return records

    def records(self) -> List[JournalRecord]:
        """All readable records, in append order.

        A corrupt/truncated *final* record (even when followed only by
        blank lines) is skipped and remembered in :attr:`corrupt_tail`;
        corruption before intact records raises (that indicates real
        damage, not a crash mid-append).
        """
        return self._scan()

    def repair_tail(self):
        """Physically truncate a torn final record; returns True if repaired.

        Idempotent.  Called automatically by the first :meth:`append`
        and by :meth:`ActiveDatabase.recover`, so a crash artifact never
        survives into the next append.
        """
        self._tail_checked = True
        if not self._scanned:
            self._scan()
        if not self._needs_repair:
            return False
        self._fs.truncate(self.path, self._good_offset)
        self.corrupt_tail = None
        self._needs_repair = False
        m = _obs.ACTIVE
        if m is not None:
            m.inc("journal.tail_repairs")
        return True

    def replay(self, database, in_place=True):
        """Apply every journaled delta to *database*, in order."""
        target = database if in_place else database.copy()
        for record in self.records():
            record.delta.apply(target, in_place=True)
        return target

    def truncate(self):
        """Discard the journal (after a successful base-snapshot checkpoint)."""
        fs = self._fs
        if fs.exists(self.path):
            fs.remove(self.path)
            fs.sync_dir(os.path.dirname(os.path.abspath(self.path)))
        self.corrupt_tail = None
        self._count = 0
        self._good_offset = 0
        self._needs_repair = False
        self._scanned = True
        self._tail_checked = True
        self._pending_syncs = 0

    def __len__(self):
        # The count is cached after the first scan and kept current by
        # append/truncate; only the very first call pays a file parse.
        if self._count is None:
            self._scan()
        return self._count

    def __repr__(self):
        return "Journal(%r)" % self.path
