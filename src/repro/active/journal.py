"""The commit journal: durable, replayable history of applied deltas.

A :class:`Journal` appends one line per committed transaction — the
transaction id, the requested update set ``U``, and the applied delta —
in the rule language's own textual form.  Recovery is the classical
recipe: restore the base snapshot, then :func:`replay` the journal's
deltas in order.  Because PARK is deterministic, replaying *deltas*
(rather than re-running rules) reproduces the exact state even if the
rule set has changed since.

Format, one record per line (``|``-separated, atoms in parser syntax)::

    tx=3|requested=-active(joe)|applied=+audit(joe, 4200);-active(joe)

Corrupt or truncated trailing lines (a crash mid-append) are tolerated:
:func:`Journal.records` stops at the first unparsable line and reports
it, mirroring how write-ahead logs recover.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import StorageError
from ..lang.parser import parse_atom
from ..lang.pretty import render_atom
from ..lang.updates import Update, UpdateOp
from ..storage.delta import Delta


@dataclass(frozen=True)
class JournalRecord:
    """One committed transaction as stored in the journal."""

    transaction_id: int
    requested: Tuple[Update, ...]
    delta: Delta


def _render_update(update):
    return "%s%s" % (update.op.sign, render_atom(update.atom))


def _parse_update(text):
    text = text.strip()
    if not text or text[0] not in "+-":
        raise StorageError("journal update %r is malformed" % text)
    op = UpdateOp.INSERT if text[0] == "+" else UpdateOp.DELETE
    return Update(op, parse_atom(text[1:]))


def _render_record(record):
    requested = ";".join(_render_update(u) for u in record.requested)
    applied = ";".join(_render_update(u) for u in record.delta.updates())
    return "tx=%d|requested=%s|applied=%s" % (
        record.transaction_id,
        requested,
        applied,
    )


def _parse_record(line):
    fields = {}
    for part in line.rstrip("\n").split("|"):
        key, _, value = part.partition("=")
        if not _:
            raise StorageError("journal line missing '=': %r" % line)
        fields[key] = value
    try:
        transaction_id = int(fields["tx"])
        requested = tuple(
            _parse_update(u) for u in fields["requested"].split(";") if u
        )
        applied = Delta(
            _parse_update(u) for u in fields["applied"].split(";") if u
        )
    except (KeyError, ValueError) as error:
        raise StorageError("malformed journal line %r (%s)" % (line, error))
    return JournalRecord(
        transaction_id=transaction_id, requested=requested, delta=applied
    )


class Journal:
    """An append-only commit journal backed by one file."""

    def __init__(self, path):
        self.path = str(path)
        self.corrupt_tail: Optional[str] = None

    # -- writing -------------------------------------------------------------------

    def append(self, transaction_id, requested, delta):
        """Durably append one commit record."""
        record = JournalRecord(
            transaction_id=transaction_id,
            requested=tuple(requested),
            delta=delta,
        )
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(_render_record(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        return record

    # -- reading ---------------------------------------------------------------------

    def records(self) -> List[JournalRecord]:
        """All readable records, in append order.

        A corrupt/truncated *final* line is skipped and remembered in
        :attr:`corrupt_tail`; corruption before intact records raises
        (that indicates real damage, not a crash mid-append).
        """
        self.corrupt_tail = None
        if not os.path.exists(self.path):
            return []
        records = []
        lines = []
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(_parse_record(line))
            except StorageError:
                if index == len(lines) - 1:
                    self.corrupt_tail = line
                    break
                raise
        return records

    def replay(self, database, in_place=True):
        """Apply every journaled delta to *database*, in order."""
        target = database if in_place else database.copy()
        for record in self.records():
            record.delta.apply(target, in_place=True)
        return target

    def truncate(self):
        """Discard the journal (after a successful base-snapshot checkpoint)."""
        if os.path.exists(self.path):
            os.remove(self.path)

    def __len__(self):
        return len(self.records())
