"""The active-database facade: tables, triggers, transactions, event log.

Everything here is sugar over the core semantics: a commit is exactly
``PARK(D, P, U)`` followed by applying the resulting delta.
"""

from .activedb import ActiveDatabase
from .events import CommitRecord, EventLog
from .journal import Journal, JournalRecord
from .transaction import Transaction, TxState
from .triggers import TriggerBuilder, immediately, on

__all__ = [
    "ActiveDatabase",
    "CommitRecord",
    "EventLog",
    "Journal",
    "JournalRecord",
    "Transaction",
    "TriggerBuilder",
    "TxState",
    "immediately",
    "on",
]
