"""The principle of inertia (paper, Section 4.1).

``SELECT(D, P, I, (a, ins, del)) = insert`` iff ``a`` was present in the
*original* database instance ``D``, and ``delete`` otherwise.  Because
inserting a present atom and deleting an absent one are no-ops, the net
effect is that a conflicting atom keeps the status it had in ``D`` — the
conflicting actions cancel out.

This is the paper's default policy for all running examples, and it is
constant-time per conflict (one membership test).
"""

from __future__ import annotations

from .base import Decision, SelectPolicy


class InertiaPolicy(SelectPolicy):
    """Keep the conflicting atom's original status."""

    name = "inertia"

    def select(self, context):
        if context.conflict.atom in context.database:
            return Decision.INSERT
        return Decision.DELETE
