"""Rule-priority conflict resolution (paper, Section 5).

"Within the sets ``ins`` and ``del`` of the conflict, the set containing
the rule with the highest priority is chosen by SELECT."  Rule priorities
of this kind appear in Ariel, Postgres and Starburst, which the paper
cites as precedents.

Priorities come from each rule's ``priority`` attribute (``@priority(n)``
in the text syntax).  Rules without a priority get ``default_priority``
(0 by default, configurable).  When both sides tie on their maximum
priority the conflict falls through to ``tie_breaker`` — the paper does
not define the tie case, so we make the fallback explicit and default it
to the principle of inertia.
"""

from __future__ import annotations

from .base import Decision, SelectPolicy
from .inertia import InertiaPolicy


class PriorityPolicy(SelectPolicy):
    """Higher-priority rules win; ties fall through to a tie-breaker policy."""

    name = "priority"

    def __init__(self, default_priority=0, tie_breaker=None):
        self.default_priority = default_priority
        self.tie_breaker = tie_breaker if tie_breaker is not None else InertiaPolicy()

    def _side_priority(self, groundings):
        return max(
            g.rule.priority if g.rule.priority is not None else self.default_priority
            for g in groundings
        )

    def select(self, context):
        conflict = context.conflict
        ins_priority = self._side_priority(conflict.ins)
        del_priority = self._side_priority(conflict.dels)
        if ins_priority > del_priority:
            return Decision.INSERT
        if del_priority > ins_priority:
            return Decision.DELETE
        return self.tie_breaker.select(context)
