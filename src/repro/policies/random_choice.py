"""Random conflict resolution (paper, Section 5).

"In some cases it may be convenient that the system just randomly chooses
one from the conflicting rules."  To keep PARK a deterministic function of
its inputs (a library invariant we property-test), the policy takes an
explicit seed: the same seed and the same conflict sequence yield the same
run.  Pass a ``random.Random`` instance instead of a seed to share state
across engines.
"""

from __future__ import annotations

import random

from .base import Decision, SelectPolicy


class RandomPolicy(SelectPolicy):
    """Choose insert or delete by (seeded) coin flip.

    ``insert_bias`` skews the coin: 0.5 is fair, 1.0 always inserts.
    """

    name = "random"

    def __init__(self, seed=0, insert_bias=0.5):
        if isinstance(seed, random.Random):
            self._rng = seed
        else:
            self._rng = random.Random(seed)
        if not 0.0 <= insert_bias <= 1.0:
            raise ValueError("insert_bias must be within [0, 1]")
        self.insert_bias = insert_bias

    def select(self, context):
        if self._rng.random() < self.insert_bias:
            return Decision.INSERT
        return Decision.DELETE
