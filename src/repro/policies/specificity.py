"""Specificity-based conflict resolution (paper, Section 5).

"An old AI principle says that more *specific* rules should be given
priority over more general rules": ``penguin(X) -> -flies(X)`` beats
``bird(X) -> +flies(X)`` on a penguin.  The paper notes this is not a
complete strategy — conflicting rules may be of equal or incomparable
specificity — so it "may be combined with other conflict resolution
strategies"; we expose that combination as an explicit fallback policy.

Specificity of one rule instance over another is determined semantically,
the way the paper sketches ("computing and comparing the sets of ground
facts to which the rules apply"), but localized to the conflict at hand:

    instance ``g1`` is at least as specific as ``g2`` w.r.t. the current
    state iff every positive body atom of ``g2`` is entailed by the
    positive body atoms of ``g1`` under the current interpretation's
    predicate extensions — approximated here by the practical, decidable
    test: ``g2``'s positive ground body atoms are a subset of ``g1``'s,
    or ``g1`` has strictly more positive body atoms all of which are valid
    while ``g2``'s are a proper subset of them.

In short: a rule instance whose valid positive ground body is a *strict
superset* of the other's is more specific (it fires in strictly fewer
situations).  A side wins when some instance on it is strictly more
specific than every instance on the other side.
"""

from __future__ import annotations

from ..lang.literals import Condition
from .base import Decision, SelectPolicy
from .inertia import InertiaPolicy


def _positive_ground_body(grounding):
    """The set of ground positive-condition atoms of a rule instance."""
    atoms = set()
    for literal in grounding.rule.body:
        if isinstance(literal, Condition) and literal.positive:
            atoms.add(literal.atom.ground(grounding.substitution))
    return frozenset(atoms)


def more_specific(grounding_a, grounding_b):
    """Whether instance *a* is strictly more specific than instance *b*.

    True iff *a*'s positive ground body is a strict superset of *b*'s —
    *a* requires everything *b* requires, plus more.
    """
    body_a = _positive_ground_body(grounding_a)
    body_b = _positive_ground_body(grounding_b)
    return body_b < body_a


class SpecificityPolicy(SelectPolicy):
    """More specific rule instances win; incomparable cases use a fallback."""

    name = "specificity"

    def __init__(self, fallback=None):
        self.fallback = fallback if fallback is not None else InertiaPolicy()

    def _dominates(self, winners, losers):
        """Some winner instance strictly more specific than *every* loser."""
        return any(
            all(more_specific(w, l) for l in losers) for w in winners
        )

    def select(self, context):
        conflict = context.conflict
        ins_wins = self._dominates(conflict.ins, conflict.dels)
        del_wins = self._dominates(conflict.dels, conflict.ins)
        if ins_wins and not del_wins:
            return Decision.INSERT
        if del_wins and not ins_wins:
            return Decision.DELETE
        return self.fallback.select(context)
