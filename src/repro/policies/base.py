"""The conflict-resolution interface: ``SELECT(D, P, I, c)``.

Section 3 of the paper requires the semantics to be *parameterized* by a
conflict resolution policy: a function from the database instance ``D``,
the program ``P``, the current state of the computation ``I`` and a
conflict ``c = (a, ins, del)`` to one of ``insert`` / ``delete``.  The
fixpoint engine treats the policy as a black box ("an oracle"), which is
what makes the inference component and the resolution component
independently replaceable.

A policy is anything with a ``select(context) -> Decision`` method (or a
bare callable).  :class:`ConflictContext` carries the paper's four
arguments plus engine extras (current blocked set, restart count) that
sophisticated policies may consult — the paper explicitly allows context
information beyond the four core components.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from ..errors import PolicyError


class Decision(enum.Enum):
    """The two possible outcomes of ``SELECT``: keep the insert or the delete."""

    INSERT = "insert"
    DELETE = "delete"

    def __str__(self):
        return self.value


@dataclass(frozen=True)
class ConflictContext:
    """Everything ``SELECT`` may look at when resolving one conflict.

    Attributes:
        database: the *original* database instance ``D`` (not the current
            intermediate state) — the paper's first argument.
        program: the program ``P`` (with transaction-update rules included
            when running full ECA semantics).
        interpretation: the current i-interpretation ``I`` — the last
            consistent state, from which the conflict was detected one step
            ahead.
        conflict: the conflict ``(a, ins, del)`` being resolved.
        blocked: the current blocked set ``B`` (engine extra).
        restarts: how many conflict-resolution restarts happened so far
            (engine extra).
    """

    database: object
    program: object
    interpretation: object
    conflict: object
    blocked: frozenset = frozenset()
    restarts: int = 0


class SelectPolicy:
    """Base class for conflict-resolution policies.

    Subclasses implement :meth:`select`.  ``name`` identifies the policy in
    traces and results.
    """

    name = "abstract"

    def select(self, context):
        """Return :data:`Decision.INSERT` or :data:`Decision.DELETE`."""
        raise NotImplementedError

    def __call__(self, context):
        return self.select(context)

    def __str__(self):
        return self.name


class CallablePolicy(SelectPolicy):
    """Adapter wrapping a bare function ``context -> Decision``."""

    def __init__(self, function, name=None):
        self._function = function
        self.name = name or getattr(function, "__name__", "callable")

    def select(self, context):
        return self._function(context)


def as_policy(policy):
    """Coerce *policy* into a :class:`SelectPolicy` (None is rejected)."""
    if isinstance(policy, SelectPolicy):
        return policy
    if callable(policy):
        return CallablePolicy(policy)
    raise PolicyError("not a conflict-resolution policy: %r" % (policy,))


def check_decision(decision, policy, conflict):
    """Validate a policy's return value, normalizing strings.

    Accepts the enum members or the strings ``"insert"`` / ``"delete"``
    (case-insensitive) so hand-written callables stay terse.
    """
    if isinstance(decision, Decision):
        return decision
    if isinstance(decision, str):
        lowered = decision.lower()
        if lowered == "insert":
            return Decision.INSERT
        if lowered == "delete":
            return Decision.DELETE
    raise PolicyError(
        "policy %s returned %r for conflict on %s; expected Decision.INSERT, "
        "Decision.DELETE, 'insert' or 'delete'"
        % (policy, decision, conflict.atom)
    )
