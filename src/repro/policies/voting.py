"""The voting scheme: a panel of critics decides each conflict (paper, Sec. 5).

"A critic is a program that takes as input a conflict and returns the
value insert or delete.  When a conflict occurs, the PARK semantics
invokes the set of critics and asks each of them for its vote.  The
majority opinion of the critics is then adopted."

A critic here is any policy or callable with the ``SELECT`` signature —
including other policies, so a panel can mix, say, an inertia critic, a
priority critic and a recency critic.  Ties (possible with an even panel)
fall through to ``tie_breaker``.  The paper notes the interactive scheme
is the special case of a single human critic; see
:mod:`repro.policies.interactive`.
"""

from __future__ import annotations

from ..errors import PolicyError
from .base import Decision, SelectPolicy, as_policy, check_decision
from .inertia import InertiaPolicy


class VotingPolicy(SelectPolicy):
    """Majority vote over a panel of critics."""

    name = "voting"

    def __init__(self, critics, tie_breaker=None):
        critics = [as_policy(c) for c in critics]
        if not critics:
            raise PolicyError("a voting panel needs at least one critic")
        self.critics = tuple(critics)
        self.tie_breaker = tie_breaker if tie_breaker is not None else InertiaPolicy()

    def select(self, context):
        inserts = 0
        deletes = 0
        for critic in self.critics:
            vote = check_decision(critic.select(context), critic, context.conflict)
            if vote is Decision.INSERT:
                inserts += 1
            else:
                deletes += 1
        if inserts > deletes:
            return Decision.INSERT
        if deletes > inserts:
            return Decision.DELETE
        return self.tie_breaker.select(context)

    def tally(self, context):
        """The raw vote counts ``(inserts, deletes)`` without deciding."""
        inserts = 0
        deletes = 0
        for critic in self.critics:
            vote = check_decision(critic.select(context), critic, context.conflict)
            if vote is Decision.INSERT:
                inserts += 1
            else:
                deletes += 1
        return inserts, deletes
