"""Policy combinators: compose partial strategies into total ones.

The paper observes that some strategies (specificity in particular) are
incomplete and "may be combined with other conflict resolution
strategies".  These combinators make composition explicit:

* :class:`FirstDecisivePolicy` — try partial policies in order; a partial
  policy signals "no opinion" by returning ``None`` (only allowed for
  policies constructed for this purpose — the stock policies are total).
* :class:`PerPredicatePolicy` — route conflicts to different policies by
  the conflicting atom's predicate, fulfilling the paper's "flexible
  conflict resolution ... vary from atom to atom" requirement directly.
* :class:`ConstantPolicy` — always insert / always delete; useful as a
  final fallback and in tests.
* :class:`TransactionWinsPolicy` — prefer the side containing a
  transaction-update rule (bodyless), encoding the "transaction updates
  cannot be overwritten" semantics the paper shows can be coded into
  SELECT (Section 4.3).
"""

from __future__ import annotations

from ..core.eca import is_transaction_rule
from ..errors import PolicyError
from .base import Decision, SelectPolicy, as_policy, check_decision
from .inertia import InertiaPolicy


class ConstantPolicy(SelectPolicy):
    """Always return the same decision."""

    def __init__(self, decision):
        self.decision = check_decision(decision, "constant", _FakeConflict())
        self.name = "always-%s" % self.decision

    def select(self, context):
        return self.decision


class _FakeConflict:
    """Placeholder so ConstantPolicy can reuse check_decision at init time."""

    atom = "<init>"


class FirstDecisivePolicy(SelectPolicy):
    """Try each policy in order; first non-``None`` answer wins.

    The last policy must be total (never return ``None``); a run out of
    opinions raises :class:`PolicyError`.
    """

    name = "first-decisive"

    def __init__(self, policies):
        policies = [as_policy(p) for p in policies]
        if not policies:
            raise PolicyError("FirstDecisivePolicy needs at least one policy")
        self.policies = tuple(policies)

    def select(self, context):
        for policy in self.policies:
            answer = policy.select(context)
            if answer is not None:
                return check_decision(answer, policy, context.conflict)
        raise PolicyError(
            "no policy in the chain had an opinion on conflict %s"
            % context.conflict.atom
        )


class PerPredicatePolicy(SelectPolicy):
    """Dispatch on the conflicting atom's predicate name.

    ``routes`` maps predicate names to policies; conflicts on unrouted
    predicates go to ``default`` (inertia unless overridden).
    """

    name = "per-predicate"

    def __init__(self, routes, default=None):
        self.routes = {name: as_policy(p) for name, p in dict(routes).items()}
        self.default = as_policy(default) if default is not None else InertiaPolicy()

    def select(self, context):
        policy = self.routes.get(context.conflict.atom.predicate, self.default)
        return policy.select(context)


class TransactionWinsPolicy(SelectPolicy):
    """A transaction update beats derived rule actions.

    If exactly one side of the conflict contains a transaction-update rule
    (empty body), that side wins; otherwise defer to ``fallback``.  This
    encodes into ``SELECT`` the alternative Section 4.3 semantics in which
    a transaction's updates cannot be overwritten by rules.
    """

    name = "transaction-wins"

    def __init__(self, fallback=None):
        self.fallback = as_policy(fallback) if fallback is not None else InertiaPolicy()

    def select(self, context):
        conflict = context.conflict
        ins_is_tx = any(is_transaction_rule(g.rule) for g in conflict.ins)
        del_is_tx = any(is_transaction_rule(g.rule) for g in conflict.dels)
        if ins_is_tx and not del_is_tx:
            return Decision.INSERT
        if del_is_tx and not ins_is_tx:
            return Decision.DELETE
        return self.fallback.select(context)
