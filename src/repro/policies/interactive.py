"""Interactive conflict resolution (paper, Section 5).

"As soon as a conflict is found, the user is queried and may resolve the
conflict by choosing one among the conflicting rules."  The paper
recommends this for databases monitoring critical systems.

The policy is callback-driven: ``ask(context) -> answer`` where the answer
is a :class:`Decision` or the strings ``insert`` / ``delete`` (also
accepted: ``i``/``d``, ``+``/``-``).  Three front-ends are provided:

* :class:`InteractivePolicy` — arbitrary callback (a real UI would pass a
  prompt function here);
* :func:`console_asker` — a ready-made stdin prompt for REPL use;
* :class:`ScriptedPolicy` — a pre-recorded sequence of answers, used by
  tests and by deterministic replays of interactive sessions.
"""

from __future__ import annotations

from ..errors import PolicyError
from .base import Decision, SelectPolicy

_ANSWERS = {
    "insert": Decision.INSERT,
    "i": Decision.INSERT,
    "+": Decision.INSERT,
    "delete": Decision.DELETE,
    "d": Decision.DELETE,
    "-": Decision.DELETE,
}


def _parse_answer(answer, source):
    if isinstance(answer, Decision):
        return answer
    if isinstance(answer, str):
        decision = _ANSWERS.get(answer.strip().lower())
        if decision is not None:
            return decision
    raise PolicyError("%s gave unintelligible answer %r" % (source, answer))


class InteractivePolicy(SelectPolicy):
    """Delegate every conflict to a user-supplied callback."""

    name = "interactive"

    def __init__(self, ask):
        if not callable(ask):
            raise PolicyError("ask must be callable")
        self._ask = ask

    def select(self, context):
        return _parse_answer(self._ask(context), "interactive callback")


def console_asker(context):
    """A stdin prompt suitable for ``InteractivePolicy(console_asker)``."""
    conflict = context.conflict
    print("Conflict on atom: %s" % conflict.atom)
    print("  rules voting insert: %s" % ", ".join(
        sorted({g.rule.describe() for g in conflict.ins})))
    print("  rules voting delete: %s" % ", ".join(
        sorted({g.rule.describe() for g in conflict.dels})))
    while True:
        answer = input("insert or delete? [i/d] ").strip().lower()
        if answer in _ANSWERS:
            return _ANSWERS[answer]
        print("please answer 'i' (insert) or 'd' (delete)")


class ScriptedPolicy(SelectPolicy):
    """Replay a fixed sequence of answers; raises when the script runs dry.

    Answers are consumed in conflict-resolution order.  ``strict=False``
    falls back to a given policy after the script is exhausted instead of
    raising.
    """

    name = "scripted"

    def __init__(self, answers, strict=True, fallback=None):
        self._answers = [
            _parse_answer(a, "scripted policy") for a in answers
        ]
        self._cursor = 0
        self._strict = strict
        self._fallback = fallback

    @property
    def remaining(self):
        """How many scripted answers are left."""
        return len(self._answers) - self._cursor

    def select(self, context):
        if self._cursor < len(self._answers):
            answer = self._answers[self._cursor]
            self._cursor += 1
            return answer
        if self._strict or self._fallback is None:
            raise PolicyError(
                "scripted policy ran out of answers at conflict on %s"
                % context.conflict.atom
            )
        return self._fallback.select(context)
