"""Conflict-resolution policies: the ``SELECT`` parameter of PARK.

All six strategies discussed in the paper (inertia, rule priority,
specificity, voting, interactive, random) plus combinators for building
application-specific policies out of them.
"""

from .base import (
    CallablePolicy,
    ConflictContext,
    Decision,
    SelectPolicy,
    as_policy,
    check_decision,
)
from .composite import (
    ConstantPolicy,
    FirstDecisivePolicy,
    PerPredicatePolicy,
    TransactionWinsPolicy,
)
from .critics import RecencyCritic, SourceReliabilityCritic
from .inertia import InertiaPolicy
from .interactive import InteractivePolicy, ScriptedPolicy, console_asker
from .priority import PriorityPolicy
from .random_choice import RandomPolicy
from .specificity import SpecificityPolicy, more_specific
from .voting import VotingPolicy

__all__ = [
    "CallablePolicy",
    "ConflictContext",
    "ConstantPolicy",
    "Decision",
    "FirstDecisivePolicy",
    "InertiaPolicy",
    "InteractivePolicy",
    "PerPredicatePolicy",
    "PriorityPolicy",
    "RandomPolicy",
    "RecencyCritic",
    "ScriptedPolicy",
    "SelectPolicy",
    "SourceReliabilityCritic",
    "SpecificityPolicy",
    "TransactionWinsPolicy",
    "VotingPolicy",
    "as_policy",
    "check_decision",
    "console_asker",
    "more_specific",
]
