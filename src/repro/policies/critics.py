"""Example critics for the voting scheme (paper, Section 5).

The paper sketches two concrete critics for its voting strategy:

* "one critic may use background information it possesses on when
  various tuples were placed in the database (e.g. later information may
  be preferred by this critic)" — :class:`RecencyCritic`;
* "another critic may use [a] source-based approach (it may know that
  the two rules that are involved in the conflict came from two
  different sources, and that one of these sources is more reliable
  than the other)" — :class:`SourceReliabilityCritic`.

Both are ordinary policies, so they can also be used standalone or
composed with :class:`~repro.policies.composite.FirstDecisivePolicy`.
"""

from __future__ import annotations

from .base import Decision, SelectPolicy
from .inertia import InertiaPolicy


class RecencyCritic(SelectPolicy):
    """Prefer the fate suggested by how recently the atom was asserted.

    ``timestamps`` maps ground atoms to comparable timestamps (ints,
    floats, datetimes).  The heuristic: an atom asserted *recently*
    (timestamp >= ``horizon``) is presumed intentional and kept
    (``insert``); an old atom is presumed stale and let go (``delete``);
    an atom with no recorded timestamp falls through to ``fallback``.

    This is deliberately simple — the paper's point is only that critics
    may consult out-of-band information, and the timestamp table is
    exactly such information.
    """

    name = "recency-critic"

    def __init__(self, timestamps, horizon, fallback=None):
        self.timestamps = dict(timestamps)
        self.horizon = horizon
        self.fallback = fallback if fallback is not None else InertiaPolicy()

    def observe(self, atom, timestamp):
        """Record (or refresh) an atom's assertion time."""
        self.timestamps[atom] = timestamp

    def select(self, context):
        timestamp = self.timestamps.get(context.conflict.atom)
        if timestamp is None:
            return self.fallback.select(context)
        if timestamp >= self.horizon:
            return Decision.INSERT
        return Decision.DELETE


class SourceReliabilityCritic(SelectPolicy):
    """Prefer the side whose rules come from the more reliable source.

    ``source_of`` maps rule names to source identifiers; ``reliability``
    maps source identifiers to numeric scores (higher = more reliable).
    A side's score is the best reliability among its instances' sources;
    unknown rules/sources score ``default_reliability``.  Ties fall
    through to ``fallback``.
    """

    name = "source-critic"

    def __init__(self, source_of, reliability, default_reliability=0.0,
                 fallback=None):
        self.source_of = dict(source_of)
        self.reliability = dict(reliability)
        self.default_reliability = default_reliability
        self.fallback = fallback if fallback is not None else InertiaPolicy()

    def _score(self, groundings):
        best = None
        for grounding in groundings:
            source = self.source_of.get(grounding.rule.name)
            score = self.reliability.get(source, self.default_reliability)
            if best is None or score > best:
                best = score
        return best if best is not None else self.default_reliability

    def select(self, context):
        conflict = context.conflict
        ins_score = self._score(conflict.ins)
        del_score = self._score(conflict.dels)
        if ins_score > del_score:
            return Decision.INSERT
        if del_score > ins_score:
            return Decision.DELETE
        return self.fallback.select(context)
