"""The catalog: predicate schemas and the constant intern table.

A schema here is minimal — predicate name and arity, optionally with column
names for the active-database facade.  The catalog's job is the discipline a
commercial DBMS would impose: a predicate has one arity everywhere, and the
storage layer refuses rows that disagree.  The paper's "implementability on
top of a commercial DBMS" requirement motivates keeping this layer explicit.

The catalog also carries the :class:`InternTable` — the database-level
dictionary encoding every constant value as a small integer id.  The
columnar storage layout (:class:`repro.storage.relation.ColumnarRelation`)
stores rows as tuples of these ids and the compiled matcher scans them as
plain integers, so one shared, append-only table is what makes id-encoded
rows from *different* databases comparable (the engine freely mixes the
``I∅``/``I+``/``I-`` stores, per-round delta databases, and snapshot
copies of all of them).  Ids are never recycled: a live database may hold
any id ever handed out, so the table only grows — bounded by the active
domain of the process, which the ``storage.intern_table_size`` gauge
tracks.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import SchemaError
from ..lang.terms import Constant


class InternTable:
    """A bijection between constant values and dense integer ids.

    Append-only: :meth:`intern` hands out ids ``0, 1, 2, ...`` in first-seen
    order and an id stays valid for the life of the process.  The table
    also memoizes one :class:`~repro.lang.terms.Constant` box per id so the
    compiled matcher can decode a slot value into a shared term object
    (cached hash, identity-friendly) without allocating.

    Thread-safe: the already-interned fast path is a lock-free dict read
    (safe because ids are published *last*, after both side arrays hold the
    value, so any id a reader can observe round-trips through
    :meth:`value_of`); allocation takes a lock so two threads can never
    tear the ``_ids``/``_values`` append pair or hand out one id twice.
    """

    __slots__ = ("_ids", "_values", "_constants", "_lock")

    def __init__(self):
        self._ids = {}  # value -> id
        self._values = []  # id -> value
        self._constants = []  # id -> Constant (built lazily)
        self._lock = threading.Lock()

    def intern(self, value):
        """The id for *value*, allocating the next one on first sight."""
        ident = self._ids.get(value)
        if ident is None:
            with self._lock:
                ident = self._ids.get(value)
                if ident is None:
                    ident = len(self._values)
                    self._values.append(value)
                    self._constants.append(None)
                    # Publish the id last: readers that see it can decode it.
                    self._ids[value] = ident
        return ident

    def id_of(self, value):
        """The id for *value*, or ``None`` if it was never interned."""
        return self._ids.get(value)

    def value_of(self, ident):
        """The raw value for *ident* (must be a valid id)."""
        return self._values[ident]

    def constant_of(self, ident):
        """The shared :class:`Constant` boxing *ident*'s value."""
        constant = self._constants[ident]
        if constant is None:
            constant = Constant(self._values[ident])
            self._constants[ident] = constant
        return constant

    def encode_row(self, row):
        """*row* of raw values as a tuple of ids (interning as needed)."""
        return tuple(map(self.intern, row))

    def try_encode_row(self, row):
        """Like :meth:`encode_row` but ``None`` if any value is unseen.

        Membership probes use this: a row containing a never-interned value
        cannot be stored anywhere, so the caller can answer "absent"
        without growing the table.
        """
        ids = self._ids
        try:
            return tuple(ids[value] for value in row)
        except KeyError:
            return None

    def decode_row(self, row):
        """A tuple of ids back to its raw values."""
        values = self._values
        return tuple(values[ident] for ident in row)

    def snapshot_values(self):
        """A consistent id→value prefix: ``result[i]`` is the value of id ``i``.

        This is the shipping format for parallel workers: the process-global
        table does not survive ``spawn``, so a worker seeds its own table
        from the parent's prefix (:meth:`load_prefix`) and then interns any
        later values in the same deterministic order as its peers.
        """
        with self._lock:
            return tuple(self._values)

    def load_prefix(self, values):
        """Intern *values* in order, so ids ``0..len(values)-1`` match the source.

        Safe to call on a table that already holds a (possibly longer)
        compatible prefix — re-interning is idempotent.  Raises
        :class:`SchemaError` when the existing contents disagree, which
        means the caller mixed tables from different processes.
        """
        for expected, value in enumerate(values):
            ident = self.intern(value)
            if ident != expected:
                raise SchemaError(
                    "intern prefix mismatch: value %r has id %d here, %d in "
                    "the shipped prefix" % (value, ident, expected)
                )

    def __len__(self):
        return len(self._values)

    def __repr__(self):
        return "InternTable(%d values)" % len(self._values)


#: The process-wide intern table.  Module-level (rather than per-catalog)
#: because the engine builds many short-lived databases per run — delta
#: shadows, interpretation stores, incorp results — whose id spaces must
#: all be compatible; ``Catalog.copy`` shares it for the same reason.
INTERNER = InternTable()


def global_interner():
    """The shared process-wide :class:`InternTable`."""
    return INTERNER


@dataclass(frozen=True)
class Schema:
    """The schema of one predicate: name, arity, optional column names."""

    predicate: str
    arity: int
    columns: Optional[Tuple[str, ...]] = None

    def __post_init__(self):
        if self.arity < 0:
            raise SchemaError("schema %r: negative arity" % self.predicate)
        if self.columns is not None:
            if not isinstance(self.columns, tuple):
                object.__setattr__(self, "columns", tuple(self.columns))
            if len(self.columns) != self.arity:
                raise SchemaError(
                    "schema %r: %d column names for arity %d"
                    % (self.predicate, len(self.columns), self.arity)
                )

    def __str__(self):
        if self.columns:
            return "%s(%s)" % (self.predicate, ", ".join(self.columns))
        return "%s/%d" % (self.predicate, self.arity)


class Catalog:
    """A mutable registry of predicate schemas.

    Schemas may be declared up front (:meth:`declare`) or discovered on
    first use (:meth:`ensure`); in both cases later uses must agree on the
    arity.
    """

    def __init__(self, schemas=()):
        self._schemas = {}
        for schema in schemas:
            self.declare(schema)

    def declare(self, schema):
        """Register *schema*; re-declaring with a different arity fails."""
        if not isinstance(schema, Schema):
            raise TypeError("expected a Schema, got %r" % (schema,))
        existing = self._schemas.get(schema.predicate)
        if existing is not None and existing.arity != schema.arity:
            raise SchemaError(
                "predicate %r already declared with arity %d, cannot redeclare "
                "with arity %d" % (schema.predicate, existing.arity, schema.arity)
            )
        self._schemas[schema.predicate] = schema
        return schema

    def ensure(self, predicate, arity):
        """Fetch the schema for *predicate*, auto-declaring it if unknown."""
        existing = self._schemas.get(predicate)
        if existing is None:
            return self.declare(Schema(predicate, arity))
        if existing.arity != arity:
            raise SchemaError(
                "predicate %r has arity %d, used with arity %d"
                % (predicate, existing.arity, arity)
            )
        return existing

    def get(self, predicate):
        """The schema for *predicate*, or ``None`` if undeclared."""
        return self._schemas.get(predicate)

    def __contains__(self, predicate):
        return predicate in self._schemas

    def __iter__(self):
        return iter(sorted(self._schemas))

    def __len__(self):
        return len(self._schemas)

    def schemas(self):
        """All schemas, sorted by predicate name."""
        return [self._schemas[name] for name in sorted(self._schemas)]

    def copy(self):
        clone = Catalog()
        clone._schemas = dict(self._schemas)
        return clone

    def __repr__(self):
        return "Catalog(%s)" % ", ".join(str(s) for s in self.schemas())
