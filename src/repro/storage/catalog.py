"""The catalog: predicate schemas shared by a database instance.

A schema here is minimal — predicate name and arity, optionally with column
names for the active-database facade.  The catalog's job is the discipline a
commercial DBMS would impose: a predicate has one arity everywhere, and the
storage layer refuses rows that disagree.  The paper's "implementability on
top of a commercial DBMS" requirement motivates keeping this layer explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import SchemaError


@dataclass(frozen=True)
class Schema:
    """The schema of one predicate: name, arity, optional column names."""

    predicate: str
    arity: int
    columns: Optional[Tuple[str, ...]] = None

    def __post_init__(self):
        if self.arity < 0:
            raise SchemaError("schema %r: negative arity" % self.predicate)
        if self.columns is not None:
            if not isinstance(self.columns, tuple):
                object.__setattr__(self, "columns", tuple(self.columns))
            if len(self.columns) != self.arity:
                raise SchemaError(
                    "schema %r: %d column names for arity %d"
                    % (self.predicate, len(self.columns), self.arity)
                )

    def __str__(self):
        if self.columns:
            return "%s(%s)" % (self.predicate, ", ".join(self.columns))
        return "%s/%d" % (self.predicate, self.arity)


class Catalog:
    """A mutable registry of predicate schemas.

    Schemas may be declared up front (:meth:`declare`) or discovered on
    first use (:meth:`ensure`); in both cases later uses must agree on the
    arity.
    """

    def __init__(self, schemas=()):
        self._schemas = {}
        for schema in schemas:
            self.declare(schema)

    def declare(self, schema):
        """Register *schema*; re-declaring with a different arity fails."""
        if not isinstance(schema, Schema):
            raise TypeError("expected a Schema, got %r" % (schema,))
        existing = self._schemas.get(schema.predicate)
        if existing is not None and existing.arity != schema.arity:
            raise SchemaError(
                "predicate %r already declared with arity %d, cannot redeclare "
                "with arity %d" % (schema.predicate, existing.arity, schema.arity)
            )
        self._schemas[schema.predicate] = schema
        return schema

    def ensure(self, predicate, arity):
        """Fetch the schema for *predicate*, auto-declaring it if unknown."""
        existing = self._schemas.get(predicate)
        if existing is None:
            return self.declare(Schema(predicate, arity))
        if existing.arity != arity:
            raise SchemaError(
                "predicate %r has arity %d, used with arity %d"
                % (predicate, existing.arity, arity)
            )
        return existing

    def get(self, predicate):
        """The schema for *predicate*, or ``None`` if undeclared."""
        return self._schemas.get(predicate)

    def __contains__(self, predicate):
        return predicate in self._schemas

    def __iter__(self):
        return iter(sorted(self._schemas))

    def __len__(self):
        return len(self._schemas)

    def schemas(self):
        """All schemas, sorted by predicate name."""
        return [self._schemas[name] for name in sorted(self._schemas)]

    def copy(self):
        clone = Catalog()
        clone._schemas = dict(self._schemas)
        return clone

    def __repr__(self):
        return "Catalog(%s)" % ", ".join(str(s) for s in self.schemas())
