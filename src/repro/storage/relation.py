"""A single relation: a set of ground value tuples with hash indexes.

The storage layer keeps *raw value tuples* (``("alice", 4200)``) rather than
:class:`repro.lang.atoms.Atom` objects; atoms are reconstructed on demand.
Each relation lazily maintains one hash index per column, built the first
time a lookup binds that column and kept incrementally up to date afterwards.
This gives the body-matching engine constant-time candidate retrieval, which
is what makes the polynomial bounds of the paper practical.

On top of the single-column indexes, a relation supports **composite
indexes** keyed by a tuple of columns.  The compiled matcher registers the
bound-column signatures its plans will probe (:meth:`Relation.register_index`
— the "lookup-signature handshake"), each index is materialized lazily on
the first probe and maintained incrementally by :meth:`add` /
:meth:`discard` from then on, so a multi-column probe is a single hash
lookup instead of a best-bucket scan-and-filter.
"""

from __future__ import annotations

from ..errors import SchemaError
from ..obs import metrics as _obs


class Relation:
    """A named relation holding ground tuples of a fixed arity."""

    __slots__ = ("name", "arity", "_tuples", "_indexes", "_registered", "_composite")

    def __init__(self, name, arity, tuples=()):
        if arity < 0:
            raise SchemaError("relation %r: arity must be >= 0" % name)
        self.name = name
        self.arity = arity
        self._tuples = set()
        self._indexes = {}  # column -> {value -> set of tuples}
        self._registered = set()  # column tuples with a composite index
        self._composite = {}  # column tuple -> {value tuple -> set of tuples}
        for row in tuples:
            self.add(row)

    # -- mutation --------------------------------------------------------------

    def _check(self, row):
        if not isinstance(row, tuple):
            raise SchemaError(
                "relation %r: row must be a tuple, got %r" % (self.name, row)
            )
        if len(row) != self.arity:
            raise SchemaError(
                "relation %r has arity %d, got row of length %d: %r"
                % (self.name, self.arity, len(row), row)
            )

    def add(self, row):
        """Insert *row*; returns True if it was new."""
        self._check(row)
        if row in self._tuples:
            return False
        self._tuples.add(row)
        for column, index in self._indexes.items():
            index.setdefault(row[column], set()).add(row)
        for columns, index in self._composite.items():
            key = tuple(row[c] for c in columns)
            index.setdefault(key, set()).add(row)
        return True

    def discard(self, row):
        """Delete *row*; returns True if it was present."""
        self._check(row)
        if row not in self._tuples:
            return False
        self._tuples.discard(row)
        for column, index in self._indexes.items():
            bucket = index.get(row[column])
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del index[row[column]]
        for columns, index in self._composite.items():
            key = tuple(row[c] for c in columns)
            bucket = index.get(key)
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del index[key]
        return True

    def clear(self):
        """Remove all rows (indexes are dropped, not rebuilt).

        Registered composite signatures survive: they describe which probes
        the compiled plans make, not the data, so the indexes simply
        rematerialize on the next probe.
        """
        self._tuples.clear()
        self._indexes.clear()
        self._composite.clear()

    # -- access ------------------------------------------------------------------

    def __contains__(self, row):
        return row in self._tuples

    def __len__(self):
        return len(self._tuples)

    def __iter__(self):
        return iter(self._tuples)

    def rows(self):
        """A snapshot list of all rows (safe to mutate the relation while using)."""
        return list(self._tuples)

    def row_set(self):
        """The live set of rows — read-only, must not be mutated or retained."""
        return self._tuples

    def _index_on(self, column):
        index = self._indexes.get(column)
        if index is None:
            index = {}
            for row in self._tuples:
                index.setdefault(row[column], set()).add(row)
            self._indexes[column] = index
            m = _obs.ACTIVE
            if m is not None:
                m.inc("storage.index_builds")
        return index

    # -- composite indexes ---------------------------------------------------------

    def register_index(self, columns):
        """Declare that lookups will bind exactly *columns* (sorted tuple).

        Trivial signatures are ignored: a single column uses the per-column
        index and a fully-bound probe is a plain membership test.  The
        composite index itself is built lazily on the first probe and then
        maintained incrementally, so registering is free until the signature
        is actually used.
        """
        columns = tuple(columns)
        if len(columns) < 2 or len(columns) >= self.arity:
            return
        self._registered.add(columns)

    def _composite_on(self, columns):
        index = self._composite.get(columns)
        if index is None:
            index = {}
            for row in self._tuples:
                index.setdefault(tuple(row[c] for c in columns), set()).add(row)
            self._composite[columns] = index
            m = _obs.ACTIVE
            if m is not None:
                m.inc("storage.composite_builds")
        return index

    def candidates_key(self, columns, key):
        """Rows whose *columns* (a sorted tuple of column indexes) equal *key*.

        The positional twin of :meth:`candidates`, used by the compiled
        matcher: the caller passes the prebuilt column tuple from the plan
        step plus the current key values, avoiding a per-probe dict.  An
        empty *columns* is a full scan; all columns bound is a membership
        test (*key* then *is* the row); one column uses the per-column
        index; anything else hits (and lazily builds) a composite index.
        Returns an iterable of rows; must not be retained across mutations.
        """
        count = len(columns)
        m = _obs.ACTIVE
        if not count:
            if m is not None:
                m.inc("storage.full_scans")
            return self._tuples
        if count == self.arity:
            # columns is sorted and distinct, so it is (0, ..., arity-1)
            # and key is the row itself.
            present = key in self._tuples
            if m is not None:
                m.inc("storage.index_lookups")
                if present:
                    m.inc("storage.index_hits")
            return (key,) if present else ()
        if count == 1:
            bucket = self._index_on(columns[0]).get(key[0])
        else:
            self._registered.add(columns)
            bucket = self._composite_on(columns).get(key)
        if m is not None:
            m.inc("storage.index_lookups")
            if bucket:
                m.inc("storage.index_hits")
        return bucket if bucket is not None else ()

    def candidates(self, bound):
        """Rows consistent with *bound*, a ``{column: value}`` mapping.

        With every column bound this is a single O(1) membership test.  A
        multi-column probe whose signature has a registered composite index
        is a single hash lookup; otherwise it uses the index on the most
        selective bound column and filters the rest.  With no bound columns
        this is a full scan.  Returns an iterable of rows; the result must
        not be retained across mutations.
        """
        m = _obs.ACTIVE
        if not bound:
            if m is not None:
                m.inc("storage.full_scans")
            return self._tuples
        if m is not None:
            m.inc("storage.index_lookups")
        if len(bound) == self.arity:
            # Fully bound: the only possible answer is the row itself.
            row = tuple(bound[column] for column in range(self.arity))
            present = row in self._tuples
            if present and m is not None:
                m.inc("storage.index_hits")
            return (row,) if present else ()
        if len(bound) > 1:
            columns = tuple(sorted(bound))
            if columns in self._registered:
                key = tuple(bound[c] for c in columns)
                bucket = self._composite_on(columns).get(key)
                if bucket and m is not None:
                    m.inc("storage.index_hits")
                return bucket if bucket is not None else ()
        best_column = None
        best_bucket = None
        for column, value in bound.items():
            bucket = self._index_on(column).get(value, ())
            if best_bucket is None or len(bucket) < len(best_bucket):
                best_column, best_bucket = column, bucket
            if not bucket:
                return ()
        if m is not None and best_bucket:
            m.inc("storage.index_hits")
        if len(bound) == 1:
            return best_bucket
        rest = [(c, v) for c, v in bound.items() if c != best_column]
        return (
            row for row in best_bucket if all(row[c] == v for c, v in rest)
        )

    def copy(self, with_indexes=False):
        """An independent copy sharing no mutable state.

        With ``with_indexes=True`` the hash indexes (single-column and
        composite) are carried over as per-bucket set copies — cheaper than
        rebuilding them from scratch on the first lookup, which matters on
        hot paths that copy a relation every evaluation round (``Γ``'s
        apply and epoch restarts).  Registered composite signatures are
        always carried: they are schema-level metadata, not data.
        """
        clone = Relation(self.name, self.arity)
        clone._tuples = set(self._tuples)
        clone._registered = set(self._registered)
        m = _obs.ACTIVE
        if m is not None:
            m.inc("storage.snapshot_copies")
        if with_indexes:
            if self._indexes:
                clone._indexes = {
                    column: {value: set(rows) for value, rows in index.items()}
                    for column, index in self._indexes.items()
                }
            if self._composite:
                clone._composite = {
                    columns: {key: set(rows) for key, rows in index.items()}
                    for columns, index in self._composite.items()
                }
        return clone

    def __eq__(self, other):
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self.name == other.name
            and self.arity == other.arity
            and self._tuples == other._tuples
        )

    def __hash__(self):
        raise TypeError("Relation is mutable and unhashable")

    def __repr__(self):
        return "Relation(%r, arity=%d, rows=%d)" % (self.name, self.arity, len(self))
