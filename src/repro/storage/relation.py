"""A single relation: a set of ground value tuples with hash indexes.

The storage layer keeps *raw value tuples* (``("alice", 4200)``) rather than
:class:`repro.lang.atoms.Atom` objects; atoms are reconstructed on demand.
Each relation lazily maintains one hash index per column, built the first
time a lookup binds that column and kept incrementally up to date afterwards.
This gives the body-matching engine constant-time candidate retrieval, which
is what makes the polynomial bounds of the paper practical.
"""

from __future__ import annotations

from ..errors import SchemaError


class Relation:
    """A named relation holding ground tuples of a fixed arity."""

    __slots__ = ("name", "arity", "_tuples", "_indexes")

    def __init__(self, name, arity, tuples=()):
        if arity < 0:
            raise SchemaError("relation %r: arity must be >= 0" % name)
        self.name = name
        self.arity = arity
        self._tuples = set()
        self._indexes = {}  # column -> {value -> set of tuples}
        for row in tuples:
            self.add(row)

    # -- mutation --------------------------------------------------------------

    def _check(self, row):
        if not isinstance(row, tuple):
            raise SchemaError(
                "relation %r: row must be a tuple, got %r" % (self.name, row)
            )
        if len(row) != self.arity:
            raise SchemaError(
                "relation %r has arity %d, got row of length %d: %r"
                % (self.name, self.arity, len(row), row)
            )

    def add(self, row):
        """Insert *row*; returns True if it was new."""
        self._check(row)
        if row in self._tuples:
            return False
        self._tuples.add(row)
        for column, index in self._indexes.items():
            index.setdefault(row[column], set()).add(row)
        return True

    def discard(self, row):
        """Delete *row*; returns True if it was present."""
        self._check(row)
        if row not in self._tuples:
            return False
        self._tuples.discard(row)
        for column, index in self._indexes.items():
            bucket = index.get(row[column])
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del index[row[column]]
        return True

    def clear(self):
        """Remove all rows (indexes are dropped, not rebuilt)."""
        self._tuples.clear()
        self._indexes.clear()

    # -- access ------------------------------------------------------------------

    def __contains__(self, row):
        return row in self._tuples

    def __len__(self):
        return len(self._tuples)

    def __iter__(self):
        return iter(self._tuples)

    def rows(self):
        """A snapshot list of all rows (safe to mutate the relation while using)."""
        return list(self._tuples)

    def row_set(self):
        """The live set of rows — read-only, must not be mutated or retained."""
        return self._tuples

    def _index_on(self, column):
        index = self._indexes.get(column)
        if index is None:
            index = {}
            for row in self._tuples:
                index.setdefault(row[column], set()).add(row)
            self._indexes[column] = index
        return index

    def candidates(self, bound):
        """Rows consistent with *bound*, a ``{column: value}`` mapping.

        With every column bound this is a single O(1) membership test;
        otherwise it uses the index on the most selective bound column and
        filters the rest.  With no bound columns this is a full scan.
        Returns an iterable of rows; the result must not be retained across
        mutations.
        """
        if not bound:
            return self._tuples
        if len(bound) == self.arity:
            # Fully bound: the only possible answer is the row itself.
            row = tuple(bound[column] for column in range(self.arity))
            return (row,) if row in self._tuples else ()
        best_column = None
        best_bucket = None
        for column, value in bound.items():
            bucket = self._index_on(column).get(value, ())
            if best_bucket is None or len(bucket) < len(best_bucket):
                best_column, best_bucket = column, bucket
            if not bucket:
                return ()
        if len(bound) == 1:
            return best_bucket
        rest = [(c, v) for c, v in bound.items() if c != best_column]
        return (
            row for row in best_bucket if all(row[c] == v for c, v in rest)
        )

    def copy(self, with_indexes=False):
        """An independent copy sharing no mutable state.

        With ``with_indexes=True`` the hash indexes are carried over as
        per-bucket set copies — cheaper than rebuilding them from scratch on
        the first lookup, which matters on hot paths that copy a relation
        every evaluation round (``Γ``'s apply and epoch restarts).
        """
        clone = Relation(self.name, self.arity)
        clone._tuples = set(self._tuples)
        if with_indexes and self._indexes:
            clone._indexes = {
                column: {value: set(rows) for value, rows in index.items()}
                for column, index in self._indexes.items()
            }
        return clone

    def __eq__(self, other):
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self.name == other.name
            and self.arity == other.arity
            and self._tuples == other._tuples
        )

    def __hash__(self):
        raise TypeError("Relation is mutable and unhashable")

    def __repr__(self):
        return "Relation(%r, arity=%d, rows=%d)" % (self.name, self.arity, len(self))
