"""A single relation, in one of two storage layouts.

Every relation speaks two dialects:

* the **raw dialect** — the atom-level public API (:meth:`add`,
  :meth:`discard`, :meth:`rows`, :meth:`candidates`, ``in``) exchanges
  tuples of raw constant values (``("alice", 4200)``) in both layouts;
* the **native dialect** — the row-level API the compiled matcher uses
  (:meth:`candidates_key`, :meth:`has_native`, :meth:`row_set`) exchanges
  *storage-native* rows: raw tuples in the row layout, tuples of intern-table
  ids in the columnar layout.

:class:`Relation` is the original row-oriented layout and stays the oracle:
a hash set of raw value tuples with lazily-built single-column and composite
hash indexes.  :class:`ColumnarRelation` is the fast layout: rows are tuples
of integer ids from the shared :class:`~repro.storage.catalog.InternTable`,
stored both as per-column ``array('q')`` id arrays (dense, swap-delete) and
as a position dict for O(1) membership, with the same index machinery keyed
by ids.  Matching then compares and hashes machine integers instead of
boxed ``Constant`` objects, which is where the compiled matcher's ≥3x comes
from.

The active layout is process-global: ``REPRO_STORAGE`` (or the CLI's
``--storage``) selects ``columnar`` (default) or ``row``;
:func:`make_relation` is the factory the database uses.

Both layouts maintain one hash index per column, built the first time a
lookup binds that column, plus **composite indexes** keyed by a tuple of
columns.  The compiled matcher registers the bound-column signatures its
plans will probe (:meth:`Relation.register_index` — the "lookup-signature
handshake"); each index is materialized lazily on the first probe and
maintained incrementally by :meth:`add` / :meth:`discard` from then on, so
a multi-column probe is a single hash lookup instead of a best-bucket
scan-and-filter.
"""

from __future__ import annotations

import os
import zlib
from array import array

from ..errors import SchemaError
from ..lang.terms import Constant
from ..obs import metrics as _obs
from .catalog import INTERNER

# -- row sharding ------------------------------------------------------------------
#
# The parallel executor partitions a relation's rows across workers by a
# *stable* hash: builtin hash() is per-process randomized for strings, and
# enumeration position depends on set iteration order, so neither survives
# the trip to a spawned worker.  The mix below folds each element with the
# tuple-hash multiplier over a fixed seed; integers (including the columnar
# layout's intern ids, which workers assign in identical deterministic
# order) contribute their value directly and any other constant contributes
# a CRC of its repr.  Two processes that agree on the row therefore agree
# on the shard.

_SHARD_MASK = 0xFFFFFFFFFFFFFFFF


def _stable_element_hash(value):
    if type(value) is int:
        return value & _SHARD_MASK
    return zlib.crc32(repr(value).encode("utf-8", "backslashreplace"))


def stable_row_shard(row, nshards):
    """The shard index in ``[0, nshards)`` owning *row* — process-stable.

    Works on either dialect (raw value tuples or native id tuples); the
    caller must use one dialect consistently for a given partitioning.
    Zero-arity rows all land in one fixed shard.
    """
    h = 0x345678
    for value in row:
        h = ((h * 1000003) ^ _stable_element_hash(value)) & _SHARD_MASK
    return h % nshards


class Relation:
    """A named relation holding ground tuples of a fixed arity."""

    __slots__ = ("name", "arity", "_tuples", "_indexes", "_registered", "_composite")

    #: Storage layout tag; native rows equal raw rows in this layout.
    storage = "row"

    def __init__(self, name, arity, tuples=()):
        if arity < 0:
            raise SchemaError("relation %r: arity must be >= 0" % name)
        self.name = name
        self.arity = arity
        self._tuples = set()
        self._indexes = {}  # column -> {value -> set of tuples}
        self._registered = set()  # column tuples with a composite index
        self._composite = {}  # column tuple -> {value tuple -> set of tuples}
        for row in tuples:
            self.add(row)

    # -- mutation --------------------------------------------------------------

    def _check(self, row):
        if not isinstance(row, tuple):
            raise SchemaError(
                "relation %r: row must be a tuple, got %r" % (self.name, row)
            )
        if len(row) != self.arity:
            raise SchemaError(
                "relation %r has arity %d, got row of length %d: %r"
                % (self.name, self.arity, len(row), row)
            )

    def add(self, row):
        """Insert *row*; returns True if it was new."""
        self._check(row)
        if row in self._tuples:
            return False
        self._tuples.add(row)
        for column, index in self._indexes.items():
            index.setdefault(row[column], set()).add(row)
        for columns, index in self._composite.items():
            key = tuple(row[c] for c in columns)
            index.setdefault(key, set()).add(row)
        return True

    def discard(self, row):
        """Delete *row*; returns True if it was present."""
        self._check(row)
        if row not in self._tuples:
            return False
        self._tuples.discard(row)
        for column, index in self._indexes.items():
            bucket = index.get(row[column])
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del index[row[column]]
        for columns, index in self._composite.items():
            key = tuple(row[c] for c in columns)
            bucket = index.get(key)
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del index[key]
        return True

    def clear(self):
        """Remove all rows (indexes are dropped, not rebuilt).

        Registered composite signatures survive: they describe which probes
        the compiled plans make, not the data, so the indexes simply
        rematerialize on the next probe.
        """
        self._tuples.clear()
        self._indexes.clear()
        self._composite.clear()

    # -- access ------------------------------------------------------------------

    def __contains__(self, row):
        return row in self._tuples

    def __len__(self):
        return len(self._tuples)

    def __iter__(self):
        return iter(self._tuples)

    def rows(self):
        """A snapshot list of all rows (safe to mutate the relation while using)."""
        return list(self._tuples)

    def row_set(self):
        """The live set of *native* rows — read-only, must not be mutated.

        Native rows are raw rows in this layout; id tuples in the columnar
        one.  Use :meth:`decode_row` / :meth:`row_constants` to interpret
        them uniformly.
        """
        return self._tuples

    def has_native(self, row):
        """Membership test in the native dialect (raw rows here)."""
        return row in self._tuples

    def decode_row(self, row):
        """A native row as its raw value tuple (identity in this layout)."""
        return row

    def row_constants(self, row):
        """A native row as a tuple of :class:`Constant` terms."""
        return tuple(map(Constant, row))

    def _index_on(self, column):
        index = self._indexes.get(column)
        if index is None:
            index = {}
            for row in self._tuples:
                index.setdefault(row[column], set()).add(row)
            self._indexes[column] = index
            m = _obs.ACTIVE
            if m is not None:
                m.inc("storage.index_builds")
        return index

    # -- composite indexes ---------------------------------------------------------

    def register_index(self, columns):
        """Declare that lookups will bind exactly *columns* (sorted tuple).

        Trivial signatures are ignored: a single column uses the per-column
        index and a fully-bound probe is a plain membership test.  The
        composite index itself is built lazily on the first probe and then
        maintained incrementally, so registering is free until the signature
        is actually used.
        """
        columns = tuple(columns)
        if len(columns) < 2 or len(columns) >= self.arity:
            return
        self._registered.add(columns)

    def _composite_on(self, columns):
        index = self._composite.get(columns)
        if index is None:
            index = {}
            for row in self._tuples:
                index.setdefault(tuple(row[c] for c in columns), set()).add(row)
            self._composite[columns] = index
            m = _obs.ACTIVE
            if m is not None:
                m.inc("storage.composite_builds")
        return index

    def candidates_key(self, columns, key):
        """Rows whose *columns* (a sorted tuple of column indexes) equal *key*.

        The positional twin of :meth:`candidates`, used by the compiled
        matcher: the caller passes the prebuilt column tuple from the plan
        step plus the current key values, avoiding a per-probe dict.  An
        empty *columns* is a full scan; all columns bound is a membership
        test (*key* then *is* the row); one column uses the per-column
        index; anything else hits (and lazily builds) a composite index.
        Returns an iterable of rows; must not be retained across mutations.
        """
        count = len(columns)
        m = _obs.ACTIVE
        if not count:
            if m is not None:
                m.inc("storage.full_scans")
            return self._tuples
        if count == self.arity:
            # columns is sorted and distinct, so it is (0, ..., arity-1)
            # and key is the row itself.
            present = key in self._tuples
            if m is not None:
                m.inc("storage.index_lookups")
                if present:
                    m.inc("storage.index_hits")
            return (key,) if present else ()
        if count == 1:
            bucket = self._index_on(columns[0]).get(key[0])
        else:
            self._registered.add(columns)
            bucket = self._composite_on(columns).get(key)
        if m is not None:
            m.inc("storage.index_lookups")
            if bucket:
                m.inc("storage.index_hits")
        return bucket if bucket is not None else ()

    def candidates(self, bound):
        """Rows consistent with *bound*, a ``{column: value}`` mapping.

        With every column bound this is a single O(1) membership test.  A
        multi-column probe whose signature has a registered composite index
        is a single hash lookup; otherwise it uses the index on the most
        selective bound column and filters the rest.  With no bound columns
        this is a full scan.  Returns an iterable of rows; the result must
        not be retained across mutations.
        """
        m = _obs.ACTIVE
        if not bound:
            if m is not None:
                m.inc("storage.full_scans")
            return self._tuples
        if m is not None:
            m.inc("storage.index_lookups")
        if len(bound) == self.arity:
            # Fully bound: the only possible answer is the row itself.
            row = tuple(bound[column] for column in range(self.arity))
            present = row in self._tuples
            if present and m is not None:
                m.inc("storage.index_hits")
            return (row,) if present else ()
        if len(bound) > 1:
            columns = tuple(sorted(bound))
            if columns in self._registered:
                key = tuple(bound[c] for c in columns)
                bucket = self._composite_on(columns).get(key)
                if bucket and m is not None:
                    m.inc("storage.index_hits")
                return bucket if bucket is not None else ()
        best_column = None
        best_bucket = None
        for column, value in bound.items():
            bucket = self._index_on(column).get(value, ())
            if best_bucket is None or len(bucket) < len(best_bucket):
                best_column, best_bucket = column, bucket
            if not bucket:
                return ()
        if m is not None and best_bucket:
            m.inc("storage.index_hits")
        if len(bound) == 1:
            return best_bucket
        rest = [(c, v) for c, v in bound.items() if c != best_column]
        return (
            row for row in best_bucket if all(row[c] == v for c, v in rest)
        )

    def copy(self, with_indexes=False):
        """An independent copy sharing no mutable state.

        With ``with_indexes=True`` the hash indexes (single-column and
        composite) are carried over as per-bucket set copies — cheaper than
        rebuilding them from scratch on the first lookup, which matters on
        hot paths that copy a relation every evaluation round (``Γ``'s
        apply and epoch restarts).  Registered composite signatures are
        always carried: they are schema-level metadata, not data.
        """
        clone = Relation(self.name, self.arity)
        clone._tuples = set(self._tuples)
        clone._registered = set(self._registered)
        m = _obs.ACTIVE
        if m is not None:
            m.inc("storage.snapshot_copies")
        if with_indexes:
            if self._indexes:
                clone._indexes = {
                    column: {value: set(rows) for value, rows in index.items()}
                    for column, index in self._indexes.items()
                }
            if self._composite:
                clone._composite = {
                    columns: {key: set(rows) for key, rows in index.items()}
                    for columns, index in self._composite.items()
                }
        return clone

    def partition(self, nshards):
        """Split into *nshards* disjoint relations by :func:`stable_row_shard`.

        Each shard is an independent :class:`Relation` carrying the
        registered composite signatures, so single-column and composite
        index buckets are built (lazily, as always) *per shard*.  The
        shards cover this relation exactly: every row lands in precisely
        one shard, determined by the stable content hash.
        """
        if nshards < 1:
            raise ValueError("nshards must be >= 1")
        shards = [Relation(self.name, self.arity) for _ in range(nshards)]
        for shard in shards:
            shard._registered = set(self._registered)
        for row in self._tuples:
            shards[stable_row_shard(row, nshards)]._tuples.add(row)
        return shards

    def __eq__(self, other):
        if isinstance(other, Relation):
            return (
                self.name == other.name
                and self.arity == other.arity
                and self._tuples == other._tuples
            )
        if isinstance(other, ColumnarRelation):
            return other.__eq__(self)
        return NotImplemented

    def __hash__(self):
        raise TypeError("Relation is mutable and unhashable")

    def __repr__(self):
        return "Relation(%r, arity=%d, rows=%d)" % (self.name, self.arity, len(self))


class ColumnarRelation:
    """The columnar layout: rows are tuples of intern-table ids.

    Data lives twice, deliberately: per-column ``array('q')`` id arrays
    (``_columns``, dense, deletion by swap-with-last) for cache-friendly
    column scans and cheap index builds, and a ``row -> position`` dict
    (``_rows``) that doubles as the O(1) membership set and the iteration
    order (``_order`` is the inverse mapping, position → row).  All index
    structures bucket native id tuples, so every probe the compiled matcher
    makes — fully-bound membership, single-column, composite — hashes small
    ints only.

    The raw dialect encodes on the way in (:meth:`add` interns) and decodes
    on the way out (:meth:`rows`, :meth:`candidates`); a raw probe for a
    never-interned value answers "absent" without growing the table.
    """

    __slots__ = (
        "name",
        "arity",
        "_interner",
        "_rows",
        "_order",
        "_columns",
        "_indexes",
        "_registered",
        "_composite",
    )

    storage = "columnar"

    def __init__(self, name, arity, tuples=(), interner=None):
        if arity < 0:
            raise SchemaError("relation %r: arity must be >= 0" % name)
        self.name = name
        self.arity = arity
        self._interner = interner if interner is not None else INTERNER
        self._rows = {}  # native row -> position in _order/_columns
        self._order = []  # position -> native row
        self._columns = [array("q") for _ in range(arity)]
        self._indexes = {}  # column -> {id -> set of native rows}
        self._registered = set()
        self._composite = {}  # column tuple -> {id tuple -> set of native rows}
        for row in tuples:
            self.add(row)

    # -- mutation --------------------------------------------------------------

    def _check(self, row):
        if not isinstance(row, tuple):
            raise SchemaError(
                "relation %r: row must be a tuple, got %r" % (self.name, row)
            )
        if len(row) != self.arity:
            raise SchemaError(
                "relation %r has arity %d, got row of length %d: %r"
                % (self.name, self.arity, len(row), row)
            )

    def add(self, row):
        """Insert a *raw* row; returns True if it was new."""
        self._check(row)
        return self._add_native(self._interner.encode_row(row))

    def _add_native(self, row):
        rows = self._rows
        if row in rows:
            return False
        rows[row] = len(self._order)
        self._order.append(row)
        columns = self._columns
        for column, ident in enumerate(row):
            columns[column].append(ident)
        for column, index in self._indexes.items():
            index.setdefault(row[column], set()).add(row)
        for cols, index in self._composite.items():
            key = tuple(row[c] for c in cols)
            index.setdefault(key, set()).add(row)
        return True

    def discard(self, row):
        """Delete a *raw* row; returns True if it was present."""
        self._check(row)
        native = self._interner.try_encode_row(row)
        if native is None:
            return False
        return self._discard_native(native)

    def _discard_native(self, row):
        rows = self._rows
        position = rows.pop(row, None)
        if position is None:
            return False
        order = self._order
        last = order.pop()
        columns = self._columns
        if last is not row and last != row:
            order[position] = last
            rows[last] = position
            for column, ids in enumerate(columns):
                ids[position] = last[column]
                ids.pop()
        else:
            for ids in columns:
                ids.pop()
        for column, index in self._indexes.items():
            bucket = index.get(row[column])
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del index[row[column]]
        for cols, index in self._composite.items():
            key = tuple(row[c] for c in cols)
            bucket = index.get(key)
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del index[key]
        return True

    def clear(self):
        """Remove all rows (indexes dropped; registered signatures survive)."""
        self._rows.clear()
        self._order.clear()
        for ids in self._columns:
            del ids[:]
        self._indexes.clear()
        self._composite.clear()

    # -- access ------------------------------------------------------------------

    def __contains__(self, row):
        native = self._interner.try_encode_row(row)
        return native is not None and native in self._rows

    def __len__(self):
        return len(self._rows)

    def __iter__(self):
        decode = self._interner.decode_row
        return (decode(row) for row in self._rows)

    def rows(self):
        """A snapshot list of all *raw* rows."""
        decode = self._interner.decode_row
        return [decode(row) for row in self._order]

    def row_set(self):
        """The live view of *native* rows (id tuples) — read-only."""
        return self._rows.keys()

    def has_native(self, row):
        """Membership test on a native (id-tuple) row."""
        return row in self._rows

    def decode_row(self, row):
        """A native id-tuple row back to its raw value tuple."""
        return self._interner.decode_row(row)

    def row_constants(self, row):
        """A native row as a tuple of shared :class:`Constant` boxes."""
        constant_of = self._interner.constant_of
        return tuple(constant_of(ident) for ident in row)

    def column(self, column):
        """The dense id array for *column* — read-only, do not retain."""
        return self._columns[column]

    def _index_on(self, column):
        index = self._indexes.get(column)
        if index is None:
            index = {}
            for row in self._rows:
                index.setdefault(row[column], set()).add(row)
            self._indexes[column] = index
            m = _obs.ACTIVE
            if m is not None:
                m.inc("storage.index_builds")
        return index

    # -- composite indexes ---------------------------------------------------------

    def register_index(self, columns):
        """Declare a composite probe signature (see :meth:`Relation.register_index`)."""
        columns = tuple(columns)
        if len(columns) < 2 or len(columns) >= self.arity:
            return
        self._registered.add(columns)

    def _composite_on(self, columns):
        index = self._composite.get(columns)
        if index is None:
            index = {}
            for row in self._rows:
                index.setdefault(tuple(row[c] for c in columns), set()).add(row)
            self._composite[columns] = index
            m = _obs.ACTIVE
            if m is not None:
                m.inc("storage.composite_builds")
        return index

    def candidates_key(self, columns, key):
        """Native rows whose *columns* equal *key* — both sides id-encoded.

        Same contract as :meth:`Relation.candidates_key`, but the key is a
        tuple of intern ids and the returned rows are id tuples.  The
        compiled matcher encodes plan constants at compile time, so on the
        hot path this is integer hashing end to end.
        """
        count = len(columns)
        m = _obs.ACTIVE
        if not count:
            if m is not None:
                m.inc("storage.full_scans")
            return self._rows.keys()
        if count == self.arity:
            present = key in self._rows
            if m is not None:
                m.inc("storage.index_lookups")
                if present:
                    m.inc("storage.index_hits")
            return (key,) if present else ()
        if count == 1:
            bucket = self._index_on(columns[0]).get(key[0])
        else:
            self._registered.add(columns)
            bucket = self._composite_on(columns).get(key)
        if m is not None:
            m.inc("storage.index_lookups")
            if bucket:
                m.inc("storage.index_hits")
        return bucket if bucket is not None else ()

    def candidates(self, bound):
        """Raw rows consistent with *bound*, a ``{column: raw value}`` mapping.

        The raw-dialect twin of :meth:`candidates_key`: bound values are
        encoded (a never-interned value matches nothing) and matching rows
        are decoded on the way out.  This is the interpreted matcher's
        path; the compiled matcher never calls it.
        """
        m = _obs.ACTIVE
        decode = self._interner.decode_row
        if not bound:
            if m is not None:
                m.inc("storage.full_scans")
            return (decode(row) for row in self._rows)
        id_of = self._interner.id_of
        native_bound = {}
        for column, value in bound.items():
            ident = id_of(value)
            if ident is None:
                if m is not None:
                    m.inc("storage.index_lookups")
                return ()
            native_bound[column] = ident
        if m is not None:
            m.inc("storage.index_lookups")
        if len(native_bound) == self.arity:
            row = tuple(native_bound[column] for column in range(self.arity))
            present = row in self._rows
            if present and m is not None:
                m.inc("storage.index_hits")
            return (decode(row),) if present else ()
        if len(native_bound) > 1:
            columns = tuple(sorted(native_bound))
            if columns in self._registered:
                key = tuple(native_bound[c] for c in columns)
                bucket = self._composite_on(columns).get(key)
                if bucket and m is not None:
                    m.inc("storage.index_hits")
                if bucket is None:
                    return ()
                return (decode(row) for row in bucket)
        best_column = None
        best_bucket = None
        for column, ident in native_bound.items():
            bucket = self._index_on(column).get(ident, ())
            if best_bucket is None or len(bucket) < len(best_bucket):
                best_column, best_bucket = column, bucket
            if not bucket:
                return ()
        if m is not None and best_bucket:
            m.inc("storage.index_hits")
        if len(native_bound) == 1:
            return (decode(row) for row in best_bucket)
        rest = [(c, i) for c, i in native_bound.items() if c != best_column]
        return (
            decode(row)
            for row in best_bucket
            if all(row[c] == i for c, i in rest)
        )

    def copy(self, with_indexes=False):
        """An independent copy sharing only the (append-only) intern table."""
        clone = ColumnarRelation(self.name, self.arity, interner=self._interner)
        clone._rows = dict(self._rows)
        clone._order = list(self._order)
        clone._columns = [array("q", ids) for ids in self._columns]
        clone._registered = set(self._registered)
        m = _obs.ACTIVE
        if m is not None:
            m.inc("storage.snapshot_copies")
        if with_indexes:
            if self._indexes:
                clone._indexes = {
                    column: {ident: set(rows) for ident, rows in index.items()}
                    for column, index in self._indexes.items()
                }
            if self._composite:
                clone._composite = {
                    columns: {key: set(rows) for key, rows in index.items()}
                    for columns, index in self._composite.items()
                }
        return clone

    def partition(self, nshards):
        """Split into *nshards* disjoint columnar relations by native-row hash.

        The id-tuple twin of :meth:`Relation.partition`: rows are sharded
        by :func:`stable_row_shard` over their intern ids (consistent
        across processes whose intern tables were seeded identically — see
        ``InternTable.load_prefix``), every shard shares this relation's
        intern table and registered composite signatures, and index buckets
        stay per-shard.
        """
        if nshards < 1:
            raise ValueError("nshards must be >= 1")
        shards = [
            ColumnarRelation(self.name, self.arity, interner=self._interner)
            for _ in range(nshards)
        ]
        for shard in shards:
            shard._registered = set(self._registered)
        for row in self._order:
            shards[stable_row_shard(row, nshards)]._add_native(row)
        return shards

    def __eq__(self, other):
        if isinstance(other, ColumnarRelation):
            if self.name != other.name or self.arity != other.arity:
                return False
            if other._interner is self._interner:
                return self._rows.keys() == other._rows.keys()
            return set(iter(self)) == set(iter(other))
        if isinstance(other, Relation):
            return (
                self.name == other.name
                and self.arity == other.arity
                and set(iter(self)) == other._tuples
            )
        return NotImplemented

    def __hash__(self):
        raise TypeError("ColumnarRelation is mutable and unhashable")

    def __repr__(self):
        return "ColumnarRelation(%r, arity=%d, rows=%d)" % (
            self.name,
            self.arity,
            len(self),
        )


# -- storage backend switch ------------------------------------------------------

_VALID_STORAGE = ("columnar", "row")
_storage = "columnar"


def set_storage_backend(name):
    """Select the storage layout for *newly created* relations.

    ``columnar`` (default) or ``row``.  Existing Database objects keep the
    layout they were built with; the engine converts inputs on entry (see
    ``ensure_storage``), so switching mid-process is safe as long as a
    single engine run sees one layout throughout — which ensure_storage
    guarantees.
    """
    if name not in _VALID_STORAGE:
        raise ValueError(
            "unknown storage backend %r; expected one of %s"
            % (name, ", ".join(_VALID_STORAGE))
        )
    global _storage
    _storage = name


def get_storage_backend():
    """The currently selected storage layout name."""
    return _storage


def make_relation(name, arity, tuples=(), interner=None):
    """A new relation in the currently selected storage layout."""
    if _storage == "columnar":
        return ColumnarRelation(name, arity, tuples, interner=interner)
    return Relation(name, arity, tuples)


set_storage_backend(os.environ.get("REPRO_STORAGE") or "columnar")
