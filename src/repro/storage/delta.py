"""Deltas: consistent sets of updates, and their application to databases.

The result of a PARK run, the effect of a transaction, and the difference
between two database instances are all *deltas*: sets of ground
:class:`~repro.lang.updates.Update` objects containing no conflicting pair
``+a`` / ``-a``.  This module gives them a first-class type with the obvious
algebra (apply, invert, compose, diff).
"""

from __future__ import annotations

from ..errors import StorageError
from ..lang.updates import Update, UpdateOp


class Delta:
    """An immutable, consistent set of ground updates."""

    __slots__ = ("_inserts", "_deletes")

    def __init__(self, updates=()):
        inserts = set()
        deletes = set()
        for update in updates:
            if not isinstance(update, Update):
                raise TypeError("delta element %r is not an Update" % (update,))
            if not update.is_ground():
                raise StorageError("delta update %s is not ground" % update)
            (inserts if update.is_insert else deletes).add(update.atom)
        overlap = inserts & deletes
        if overlap:
            sample = sorted(str(a) for a in overlap)[0]
            raise StorageError(
                "delta is inconsistent: both +%s and -%s present (%d conflicts)"
                % (sample, sample, len(overlap))
            )
        self._inserts = frozenset(inserts)
        self._deletes = frozenset(deletes)

    # -- construction ------------------------------------------------------------

    @classmethod
    def diff(cls, before, after):
        """The delta turning database *before* into database *after*.

        When both sides are :class:`~repro.storage.database.Database`
        instances the comparison runs per-relation on native row sets (id
        tuples under the columnar layout, raw tuples under the row one —
        both layouts share one intern table, so the set algebra is exact),
        and atom objects are only built for rows that actually differ — the
        common case (a run touching a small fraction of a large database)
        costs O(|difference|) atom constructions instead of O(|D|).
        """
        from ..lang.atoms import Atom
        from ..lang.terms import Constant
        from .database import Database

        def _raw_constants(row):
            return tuple(map(Constant, row))

        if isinstance(before, Database) and isinstance(after, Database):
            updates = []
            predicates = set(before.predicates()) | set(after.predicates())
            for predicate in sorted(predicates):
                before_rel = before.relation(predicate)
                after_rel = after.relation(predicate)
                if (
                    before_rel is not None
                    and after_rel is not None
                    and before_rel.storage != after_rel.storage
                ):
                    # Mixed layouts: native rows are not comparable, so
                    # fall back to decoded raw rows for this relation.
                    decode_b = before_rel.decode_row
                    decode_a = after_rel.decode_row
                    before_rows = {decode_b(r) for r in before_rel.row_set()}
                    after_rows = {decode_a(r) for r in after_rel.row_set()}
                    constants_b = constants_a = _raw_constants
                else:
                    before_rows = (
                        before_rel.row_set() if before_rel is not None else frozenset()
                    )
                    after_rows = (
                        after_rel.row_set() if after_rel is not None else frozenset()
                    )
                    constants_b = (
                        before_rel.row_constants if before_rel is not None else None
                    )
                    constants_a = (
                        after_rel.row_constants if after_rel is not None else None
                    )
                if before_rows == after_rows:
                    continue
                for row in after_rows - before_rows:
                    atom = Atom(predicate, constants_a(row))
                    updates.append(Update(UpdateOp.INSERT, atom))
                for row in before_rows - after_rows:
                    atom = Atom(predicate, constants_b(row))
                    updates.append(Update(UpdateOp.DELETE, atom))
            return cls(updates)

        before_atoms = before.freeze() if hasattr(before, "freeze") else frozenset(before)
        after_atoms = after.freeze() if hasattr(after, "freeze") else frozenset(after)
        updates = [Update(UpdateOp.INSERT, a) for a in after_atoms - before_atoms]
        updates += [Update(UpdateOp.DELETE, a) for a in before_atoms - after_atoms]
        return cls(updates)

    # -- views --------------------------------------------------------------------

    @property
    def inserts(self):
        """Frozenset of atoms to insert."""
        return self._inserts

    @property
    def deletes(self):
        """Frozenset of atoms to delete."""
        return self._deletes

    def updates(self):
        """All updates as a sorted list (deterministic order)."""
        result = [Update(UpdateOp.INSERT, a) for a in self._inserts]
        result += [Update(UpdateOp.DELETE, a) for a in self._deletes]
        result.sort(key=str)
        return result

    def __len__(self):
        return len(self._inserts) + len(self._deletes)

    def __bool__(self):
        return bool(self._inserts or self._deletes)

    def __iter__(self):
        return iter(self.updates())

    def __contains__(self, update):
        if not isinstance(update, Update):
            return False
        if update.is_insert:
            return update.atom in self._inserts
        return update.atom in self._deletes

    # -- algebra ---------------------------------------------------------------------

    def apply(self, database, in_place=False):
        """Apply this delta to *database*; returns the resulting database.

        Deletions of absent atoms and insertions of present atoms are no-ops,
        matching the paper's ``incorp`` operator.
        """
        target = database if in_place else database.copy()
        for atom in self._deletes:
            target.remove(atom)
        for atom in self._inserts:
            target.add(atom)
        return target

    def invert(self):
        """The delta that undoes this one (w.r.t. a state it was applied to).

        Note this is only a true inverse when every insert was actually new
        and every delete actually present; the transaction layer guarantees
        that by diffing real states instead of inverting blindly.
        """
        updates = [Update(UpdateOp.DELETE, a) for a in self._inserts]
        updates += [Update(UpdateOp.INSERT, a) for a in self._deletes]
        return Delta(updates)

    def then(self, later):
        """Sequential composition: apply ``self``, then *later*.

        Later operations win on the same atom.
        """
        inserts = (self._inserts - later._deletes) | later._inserts
        deletes = (self._deletes - later._inserts) | later._deletes
        updates = [Update(UpdateOp.INSERT, a) for a in inserts]
        updates += [Update(UpdateOp.DELETE, a) for a in deletes]
        return Delta(updates)

    def restricted_to(self, predicates):
        """The sub-delta touching only the given predicate names."""
        wanted = set(predicates)
        return Delta(u for u in self.updates() if u.atom.predicate in wanted)

    def __eq__(self, other):
        if not isinstance(other, Delta):
            return NotImplemented
        return self._inserts == other._inserts and self._deletes == other._deletes

    def __hash__(self):
        return hash((self._inserts, self._deletes))

    def __str__(self):
        if not self:
            return "{}"
        return "{%s}" % ", ".join(str(u) for u in self.updates())

    def __repr__(self):
        return "Delta(+%d, -%d)" % (len(self._inserts), len(self._deletes))


EMPTY_DELTA = Delta()
