"""Database instances: indexed sets of ground atoms.

A database instance ``D`` in the paper is simply a set of positive ground
atoms.  :class:`Database` realizes that set with per-predicate relations,
hash indexes, schema checking through a :class:`~repro.storage.catalog.Catalog`,
and cheap copying (the PARK engine snapshots ``D`` once per run; the
baselines snapshot more aggressively).

The class is deliberately *value-like*: equality compares contents, and
:meth:`freeze` produces a canonical frozenset of atoms for hashing and
golden-test comparison.
"""

from __future__ import annotations

from ..errors import SchemaError
from ..lang.atoms import Atom
from ..lang.terms import Constant
from ..obs import metrics as _obs
from .catalog import Catalog
from .relation import get_storage_backend, make_relation


class Database:
    """A mutable set of ground atoms, organized into indexed relations."""

    __slots__ = ("catalog", "_relations", "_lookup_registry")

    def __init__(self, atoms=(), catalog=None):
        self.catalog = catalog if catalog is not None else Catalog()
        self._relations = {}
        self._lookup_registry = {}  # predicate -> set of (arity, column tuple)
        for atom in atoms:
            self.add(atom)

    # -- classmethods -----------------------------------------------------------

    @classmethod
    def from_text(cls, text):
        """Build a database from fact syntax: ``Database.from_text("p(a). q.")``."""
        from ..lang.parser import parse_database

        return cls(parse_database(text))

    @classmethod
    def from_tuples(cls, predicate_rows):
        """Build from ``{"edge": [("a", "b"), ...], ...}`` style mappings."""
        db = cls()
        for predicate, rows in predicate_rows.items():
            for row in rows:
                if not isinstance(row, tuple):
                    row = tuple(row)
                db.add(Atom(predicate, tuple(Constant(v) for v in row)))
        return db

    # -- core mutation ------------------------------------------------------------

    def _relation_for(self, atom, create):
        if not isinstance(atom, Atom):
            raise TypeError("expected an Atom, got %r" % (atom,))
        if not atom.is_ground():
            raise SchemaError("database atoms must be ground, got %s" % atom)
        relation = self._relations.get(atom.predicate)
        if relation is None:
            if not create:
                return None
            self.catalog.ensure(atom.predicate, atom.arity)
            relation = make_relation(atom.predicate, atom.arity)
            for arity, columns in self._lookup_registry.get(atom.predicate, ()):
                if arity == atom.arity:
                    relation.register_index(columns)
            self._relations[atom.predicate] = relation
        elif relation.arity != atom.arity:
            raise SchemaError(
                "predicate %r has arity %d, atom %s has arity %d"
                % (atom.predicate, relation.arity, atom, atom.arity)
            )
        return relation

    def add(self, atom):
        """Insert a ground atom; returns True if it was new."""
        return self._relation_for(atom, create=True).add(atom.value_tuple())

    def remove(self, atom):
        """Delete a ground atom; returns True if it was present."""
        relation = self._relation_for(atom, create=False)
        if relation is None:
            return False
        return relation.discard(atom.value_tuple())

    def update(self, atoms):
        """Insert many atoms."""
        for atom in atoms:
            self.add(atom)

    # -- access ---------------------------------------------------------------------

    def __contains__(self, atom):
        relation = self._relations.get(atom.predicate)
        if relation is None:
            return False
        row = atom.value_tuple()
        return len(row) == relation.arity and row in relation

    def __len__(self):
        return sum(len(r) for r in self._relations.values())

    def __bool__(self):
        return any(len(r) for r in self._relations.values())

    def __iter__(self):
        return self.atoms()

    def atoms(self, predicate=None):
        """Iterate ground atoms, over one predicate or the whole database."""
        if predicate is not None:
            relation = self._relations.get(predicate)
            if relation is None:
                return
            row_constants = relation.row_constants
            for row in list(relation.row_set()):
                yield Atom(predicate, row_constants(row))
            return
        for name in sorted(self._relations):
            yield from self.atoms(name)

    def relation(self, predicate):
        """The :class:`Relation` for *predicate*, or ``None``."""
        return self._relations.get(predicate)

    def has_row(self, predicate, arity, row):
        """Membership test on a *storage-native* row.

        The tuple-level twin of ``atom in db``, used by the compiled matcher
        to test ground literals without constructing an :class:`Atom`.  The
        row is in the storage dialect: raw values in the row layout, intern
        ids in the columnar one.
        """
        relation = self._relations.get(predicate)
        return (
            relation is not None
            and relation.arity == arity
            and relation.has_native(row)
        )

    def register_lookup(self, predicate, arity, columns):
        """Declare a multi-column lookup signature for *predicate*.

        Forwarded to the relation's composite-index machinery
        (:meth:`Relation.register_index`); remembered so relations created
        later — e.g. the ``+``/``-`` mark stores, whose relations appear
        when the first mark arrives — pick the signature up on creation.
        Idempotent and cheap; the index itself is built lazily on first
        probe.
        """
        columns = tuple(columns)
        signatures = self._lookup_registry.setdefault(predicate, set())
        signatures.add((arity, columns))
        relation = self._relations.get(predicate)
        if relation is not None and relation.arity == arity:
            relation.register_index(columns)

    def predicates(self):
        """Sorted list of predicate names with at least one declared relation."""
        return sorted(self._relations)

    def constants(self):
        """All constant values appearing in any row, as :class:`Constant` terms."""
        values = set()
        for relation in self._relations.values():
            for row in relation:
                values.update(row)
        return {Constant(v) for v in values}

    def count(self, predicate):
        """Number of rows in *predicate* (0 if unknown)."""
        relation = self._relations.get(predicate)
        return len(relation) if relation is not None else 0

    # -- value semantics ---------------------------------------------------------------

    def copy(self, with_indexes=False):
        """An independent copy (catalog copied, rows copied).

        Indexes are dropped by default; ``with_indexes=True`` carries them
        over (see :meth:`Relation.copy`), which the engine uses when copying
        an interpretation every round and when restarting an epoch.
        """
        m = _obs.ACTIVE
        if m is not None:
            m.inc("storage.db_copies")
        clone = Database(catalog=self.catalog.copy())
        clone._relations = {
            name: relation.copy(with_indexes=with_indexes)
            for name, relation in self._relations.items()
        }
        clone._lookup_registry = {
            predicate: set(signatures)
            for predicate, signatures in self._lookup_registry.items()
        }
        return clone

    def freeze(self):
        """The database contents as a canonical ``frozenset`` of atoms."""
        return frozenset(self.atoms())

    def __eq__(self, other):
        if isinstance(other, Database):
            return self.freeze() == other.freeze()
        if isinstance(other, (set, frozenset)):
            return self.freeze() == frozenset(other)
        return NotImplemented

    def __hash__(self):
        raise TypeError("Database is mutable and unhashable; use freeze()")

    def __str__(self):
        from ..lang.pretty import render_atom

        return "{%s}" % ", ".join(sorted(render_atom(a) for a in self.atoms()))

    def __repr__(self):
        return "Database(%d atoms over %d predicates)" % (
            len(self),
            len(self._relations),
        )


def ensure_storage(database):
    """*database* with every relation in the currently selected layout.

    Returns the input unchanged when it already conforms (the common case);
    otherwise builds a converted copy, carrying catalog, lookup registry,
    and registered composite signatures.  The engine calls this on entry so
    a run never mixes native dialects — prebuilt benchmark/workload
    databases survive a ``set_storage_backend`` switch, and a row-layout
    database handed to a columnar-mode engine is converted once, up front.
    """
    backend = get_storage_backend()
    relations = database._relations
    if all(relation.storage == backend for relation in relations.values()):
        return database
    m = _obs.ACTIVE
    if m is not None:
        m.inc("storage.conversions")
    clone = Database(catalog=database.catalog.copy())
    clone._lookup_registry = {
        predicate: set(signatures)
        for predicate, signatures in database._lookup_registry.items()
    }
    for name, relation in relations.items():
        converted = make_relation(name, relation.arity)
        converted._registered = set(relation._registered)
        for row in relation.rows():
            converted.add(row)
        clone._relations[name] = converted
    return clone
