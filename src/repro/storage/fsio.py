"""Durable file primitives: the file layer behind the commit journal.

The journal never touches ``open``/``os`` directly; every operation goes
through an object with the :class:`RealFS` interface.  In production that
object is the module singleton :data:`REAL_FS` (thin wrappers over the
standard library), and the fault-injection harness
(:mod:`repro.testing.faults`) substitutes a shim that tears writes at
byte granularity and drops un-fsynced bytes — which is how the crash
safety of the commit pipeline is actually proven rather than assumed.

Two primitives here are easy to forget and load-bearing for crash
safety:

* ``append(..., sync=True)`` fsyncs the *file* so the record's bytes
  survive power loss, and
* ``sync_dir`` fsyncs the *directory* so the file's very existence (or
  removal, after a checkpoint truncation) survives it too.  POSIX makes
  no durability promise about directory entries without it.
"""

from __future__ import annotations

import os


class RealFS:
    """The production file layer: thin wrappers over ``os`` and ``open``.

    Methods are path-based rather than handle-based so a shim can account
    for every byte without replicating Python's file-object surface.
    """

    def exists(self, path):
        return os.path.exists(path)

    def size(self, path):
        try:
            return os.path.getsize(path)
        except OSError:
            return 0

    def read_bytes(self, path):
        with open(path, "rb") as handle:
            return handle.read()

    def append(self, path, data, sync=True):
        """Append *data* (bytes); with ``sync`` the bytes are made durable."""
        with open(path, "ab") as handle:
            handle.write(data)
            handle.flush()
            if sync:
                os.fsync(handle.fileno())

    def sync(self, path):
        """fsync *path*'s data — flushes every write, whatever handle made it."""
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def truncate(self, path, size):
        """Truncate *path* to *size* bytes, durably."""
        with open(path, "rb+") as handle:
            handle.truncate(size)
            handle.flush()
            os.fsync(handle.fileno())

    def remove(self, path):
        if os.path.exists(path):
            os.remove(path)

    def sync_dir(self, path):
        """fsync directory *path* so created/removed entries survive a crash.

        Best-effort: platforms that cannot open a directory (Windows)
        silently skip — there is no portable equivalent there.
        """
        try:
            fd = os.open(path or ".", os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)


#: The default, shared production file layer.
REAL_FS = RealFS()


def fsync_dir_of(path):
    """fsync the directory containing *path* (see :meth:`RealFS.sync_dir`)."""
    REAL_FS.sync_dir(os.path.dirname(os.path.abspath(path)))
