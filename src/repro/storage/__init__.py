"""The storage engine: relations, databases, catalogs, snapshots, deltas.

This is the paper's "database instance D" made concrete: ground atoms in
per-predicate relations with lazily built hash indexes, a schema catalog,
value-semantics copying, and a small update algebra (:class:`Delta`).
"""

from .catalog import Catalog, Schema
from .database import Database
from .delta import Delta, EMPTY_DELTA
from .relation import Relation
from .snapshot import SavepointStack, Snapshot
from .textio import dump_database, dump_program, load_database, load_program

__all__ = [
    "Catalog",
    "Database",
    "Delta",
    "EMPTY_DELTA",
    "Relation",
    "SavepointStack",
    "Schema",
    "Snapshot",
    "dump_database",
    "dump_program",
    "load_database",
    "load_program",
]
