"""Snapshots and savepoints over databases.

The PARK engine needs to restart from the original database instance ``D``
after every conflict resolution; the active-database facade needs rollback
to transaction boundaries and savepoints.  Both are served by
:class:`Snapshot` (an immutable capture of a database's contents) and
:class:`SavepointStack` (named, nested savepoints).
"""

from __future__ import annotations

from ..errors import TransactionError
from .database import Database
from .delta import Delta


class Snapshot:
    """An immutable capture of a database's contents at a point in time."""

    __slots__ = ("_atoms", "_catalog")

    def __init__(self, database):
        self._atoms = database.freeze()
        self._catalog = database.catalog.copy()

    @property
    def atoms(self):
        """The captured contents as a frozenset of ground atoms."""
        return self._atoms

    def restore(self):
        """Materialize a fresh :class:`Database` with the captured contents."""
        return Database(self._atoms, catalog=self._catalog.copy())

    def delta_to(self, database):
        """The delta from this snapshot to the current state of *database*."""
        return Delta.diff(self._atoms, database.freeze())

    def __len__(self):
        return len(self._atoms)

    def __contains__(self, atom):
        return atom in self._atoms

    def __eq__(self, other):
        if isinstance(other, Snapshot):
            return self._atoms == other._atoms
        return NotImplemented

    def __hash__(self):
        return hash(self._atoms)

    def __repr__(self):
        return "Snapshot(%d atoms)" % len(self._atoms)


class SavepointStack:
    """Named, nested savepoints over one database (LIFO semantics).

    Mirrors SQL savepoints: rolling back to a named savepoint discards the
    savepoints created after it; releasing drops a savepoint without
    touching data.
    """

    def __init__(self, database):
        self._database = database
        self._stack = []  # list of (name, Snapshot)

    def savepoint(self, name=None):
        """Create a savepoint and return its name (auto-generated if None)."""
        if name is None:
            name = "sp_%d" % (len(self._stack) + 1)
        if any(existing == name for existing, _ in self._stack):
            raise TransactionError("savepoint %r already exists" % name)
        self._stack.append((name, Snapshot(self._database)))
        return name

    def rollback_to(self, name):
        """Restore the database to the named savepoint's contents.

        The savepoint itself survives (as in SQL); savepoints nested inside
        it are discarded.
        """
        index = self._find(name)
        _, snapshot = self._stack[index]
        del self._stack[index + 1 :]
        restored = snapshot.restore()
        current = set(self._database.freeze())
        wanted = set(snapshot.atoms)
        for atom in current - wanted:
            self._database.remove(atom)
        for atom in wanted - current:
            self._database.add(atom)
        return restored

    def release(self, name):
        """Drop the named savepoint (and any nested inside it) without restoring."""
        index = self._find(name)
        del self._stack[index:]

    def _find(self, name):
        for index, (existing, _) in enumerate(self._stack):
            if existing == name:
                return index
        raise TransactionError("no such savepoint: %r" % name)

    def names(self):
        """Current savepoint names, outermost first."""
        return [name for name, _ in self._stack]

    def __len__(self):
        return len(self._stack)
