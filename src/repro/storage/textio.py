"""Text persistence: save and load databases and programs.

The on-disk format is the rule language itself (facts as ``p(a).`` lines,
rules in the parser's syntax with annotations), so saved files are
human-readable, diffable, and round-trip exactly through the parser —
property-tested via the pretty-printer round-trip guarantee.
"""

from __future__ import annotations

import os

from ..lang.parser import parse_database, parse_program
from ..lang.pretty import render_database, render_program
from ..lang.program import Program
from .database import Database
from .fsio import fsync_dir_of


def dump_database(database, path):
    """Write *database* to *path* as sorted fact lines.  Atomic replace."""
    text = render_database(database.atoms() if isinstance(database, Database) else database)
    _atomic_write(path, text + "\n" if text else "")


def load_database(path):
    """Read a fact file written by :func:`dump_database` (or by hand)."""
    with open(path, "r", encoding="utf-8") as handle:
        return Database(parse_database(handle.read()))


def dump_program(program, path):
    """Write *program* to *path*, one rule per line with annotations."""
    if not isinstance(program, Program):
        program = Program(tuple(program))
    text = render_program(program)
    _atomic_write(path, text + "\n" if text else "")


def load_program(path):
    """Read a rule file written by :func:`dump_program` (or by hand)."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_program(handle.read())


def _atomic_write(path, text):
    """Write-then-rename so readers never observe a torn file.

    The rename is followed by a directory fsync: without it the new
    directory entry itself may not survive a crash, leaving the old file
    (or on first write, no file) behind the just-"persisted" snapshot.
    """
    temporary = "%s.tmp.%d" % (path, os.getpid())
    with open(temporary, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, path)
    fsync_dir_of(path)
