"""Run results: the output of a PARK computation plus its statistics.

``PARK(D, P, U)`` is a database instance; a :class:`ParkResult` carries
that instance together with everything a caller might want to inspect —
the final bi-structure components, the net :class:`~repro.storage.delta.Delta`
against ``D``, per-run statistics, and (when tracing was enabled) the
recorded trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class RunStats:
    """Counters describing one PARK run.

    Attributes:
        rounds: total ``Γ`` applications across all epochs (the paper's
            inner fixpoint steps).
        restarts: conflict-resolution steps (each strictly grew ``B``).
        conflicts_resolved: individual conflicts decided by the policy
            (``>= restarts`` in ALL mode, ``== restarts`` in MINIMAL mode).
        blocked_instances: size of the final blocked set ``B``.
        firings_total: rule-instance firings observed across all rounds
            (a proxy for matcher work).
        epochs: restart epochs, i.e. ``restarts + 1``.
    """

    rounds: int = 0
    restarts: int = 0
    conflicts_resolved: int = 0
    blocked_instances: int = 0
    firings_total: int = 0

    @property
    def epochs(self):
        return self.restarts + 1


@dataclass
class ParkResult:
    """The full outcome of ``PARK(D, P, U)``.

    Attributes:
        database: the result database instance (a fresh object; the input
            ``D`` is never modified).
        delta: the net change from the input database to the result.
        interpretation: the final (fixpoint) i-interpretation.
        blocked: the final blocked set ``B``.
        stats: run counters.
        policy_name: the conflict-resolution policy that was used.
        provenance: the final epoch's derivation record (which rule
            instances derived which marked literals); feed it to
            :class:`repro.analysis.explain.Explainer` for derivation trees.
        trace: the recorded trace, when a recorder was attached.
        metrics: the :class:`repro.obs.metrics.Metrics` registry that was
            active during the run, when telemetry was enabled.
        trail: the :class:`repro.obs.audit.DecisionTrail` recorded during
            the run, when auditing was enabled — every conflict, SELECT
            verdict, restart, and the per-epoch provenance archives that
            power why-not explanations.
    """

    database: object
    delta: object
    interpretation: object
    blocked: frozenset
    stats: RunStats
    policy_name: str
    provenance: Optional[object] = None
    trace: Optional[object] = None
    metrics: Optional[object] = None
    trail: Optional[object] = None

    @property
    def atoms(self):
        """The result as a frozenset of ground atoms."""
        return self.database.freeze()

    def __contains__(self, atom):
        return atom in self.database

    def blocked_rules(self):
        """Distinct rules with at least one blocked instance, by description."""
        return sorted({g.rule.describe() for g in self.blocked})

    def __str__(self):
        return str(self.database)

    def summary(self):
        """A short human-readable account of the run."""
        return (
            "PARK result: %d atoms (%+d/-%d vs input); policy=%s; "
            "%d rounds, %d restarts, %d conflicts resolved, %d blocked instances"
            % (
                len(self.database),
                len(self.delta.inserts),
                len(self.delta.deletes),
                self.policy_name,
                self.stats.rounds,
                self.stats.restarts,
                self.stats.conflicts_resolved,
                self.stats.blocked_instances,
            )
        )
