"""The transition operator ``Θ_P`` on bi-structures (paper, Section 4.2).

::

    Θ_P(<B, I>) = <B, Γ_{P,B}(I)>                      if Γ_{P,B}(I) is consistent
                  <B ∪ blocked(D, P, I, SELECT), I∅>   otherwise

The conflict branch restarts from the unmarked part ``I∅`` (the original
database instance) — see DESIGN.md for why we read the paper's formula
this way.  ``Θ`` is growing w.r.t. the bi-structure order and reaches a
fixpoint ``Θ^ω`` in finitely many steps (Theorem 4.1); both facts are
property-tested.

This module exposes ``Θ`` as a *pure step function* for theory work and
tests.  The production engine (:mod:`repro.core.engine`) follows the same
case split but threads tracing, provenance and statistics through the
loop instead of rebuilding immutable bi-structures each step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import NonTerminationError
from ..obs import audit as _audit
from ..policies.base import as_policy
from .bistructure import BiStructure, initial_bistructure
from .blocking import BlockingMode, resolve_conflicts
from .conflicts import build_conflicts
from .consequence import gamma
from .provenance import Provenance


@dataclass
class ThetaStep:
    """What one application of ``Θ`` did.

    ``kind`` is ``"grow"`` (consistent ``Γ`` round applied), ``"resolve"``
    (conflicts blocked, interpretation reset to ``I∅``), or ``"fixpoint"``
    (``Θ(A) = A``).
    """

    kind: str
    before: BiStructure
    after: BiStructure
    gamma_result: object
    conflicts: Tuple = ()
    decisions: Tuple = ()
    blocked_added: frozenset = frozenset()


def theta(
    program,
    bistructure,
    policy,
    database,
    mode=BlockingMode.ALL,
    provenance=None,
):
    """One application of ``Θ_P`` — returns a :class:`ThetaStep`.

    *database* is the original instance ``D`` passed through to ``SELECT``.
    *provenance* (optional) enables stale-conflict completion across a
    sequence of steps; pass the same object to successive calls and it is
    maintained automatically.
    """
    policy = as_policy(policy)
    interpretation = bistructure.interpretation
    blocked = bistructure.blocked
    result = gamma(program, blocked, interpretation)

    if result.is_consistent:
        if provenance is not None:
            provenance.record(result.firings)
        if result.reached_fixpoint:
            return ThetaStep(
                kind="fixpoint",
                before=bistructure,
                after=bistructure,
                gamma_result=result,
            )
        after = BiStructure(blocked, result.apply())
        return ThetaStep(
            kind="grow", before=bistructure, after=after, gamma_result=result
        )

    conflicts = build_conflicts(result, blocked, provenance or Provenance())
    additions, decisions = resolve_conflicts(
        conflicts,
        policy,
        database,
        program,
        interpretation,
        blocked,
        restarts=0,
        mode=mode,
    )
    new_blocked = blocked | additions
    if new_blocked == blocked:
        raise NonTerminationError(
            "conflict resolution added no new blocked instances; the policy "
            "cannot make progress on conflicts: %s"
            % "; ".join(str(c) for c in conflicts)
        )
    trail = _audit.ACTIVE
    if trail is not None:
        # Mirror the engine's recording: the pure step function archives
        # the dying epoch's provenance and logs the restart, so theory
        # work gets the same decision trail as production runs.
        trail.blocked(additions - blocked)
        if provenance is not None:
            trail.archive_epoch(provenance)
        trail.restart(len(new_blocked))
    if provenance is not None:
        provenance.clear()
    after = BiStructure(new_blocked, interpretation.restarted())
    return ThetaStep(
        kind="resolve",
        before=bistructure,
        after=after,
        gamma_result=result,
        conflicts=tuple(conflicts),
        decisions=tuple(decisions),
        blocked_added=frozenset(additions),
    )


def theta_omega(
    program,
    database,
    policy,
    mode=BlockingMode.ALL,
    max_steps=None,
    collect=False,
):
    """Iterate ``Θ`` from ``<∅, D>`` to its fixpoint ``Θ^ω((∅, D))``.

    Returns ``(fixpoint_bistructure, steps)`` where *steps* is the list of
    :class:`ThetaStep` records when ``collect=True`` (else empty).  This is
    the literal construction of the paper; it is quadratic-ish in practice
    because each step snapshots a bi-structure — the engine avoids that.
    """
    current = initial_bistructure(database)
    provenance = Provenance()
    steps = []
    count = 0
    while True:
        count += 1
        if max_steps is not None and count > max_steps:
            raise NonTerminationError("Θ exceeded %d steps" % max_steps)
        step = theta(program, current, policy, database, mode, provenance)
        if collect:
            steps.append(step)
        if step.kind == "fixpoint":
            return current, steps
        current = step.after
