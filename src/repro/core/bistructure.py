"""Bi-structures ``<B, I>`` and their ordering (paper, Section 4.2).

A bi-structure pairs a set ``B`` of blocked rule instances with an
i-interpretation ``I``.  The strict order is lexicographic::

    <B, I> < <B', I'>   iff   B ⊂ B',  or  B = B' and I ⊂ I'

Theorem 4.1's "``Θ`` is growing" is stated against this order: a
consistent round grows ``I`` with ``B`` fixed; a conflict-resolution step
strictly grows ``B`` (and may shrink ``I`` back to ``I∅`` — allowed,
because the first disjunct does not look at ``I``).
"""

from __future__ import annotations

from .interpretation import IInterpretation


class BiStructure:
    """An immutable snapshot ``<B, I>``.

    The interpretation is captured by value (frozen triple), so
    bi-structures are hashable and safe to keep in fixpoint-detection sets
    even while the engine mutates its working interpretation.
    """

    __slots__ = ("_blocked", "_frozen", "_interpretation")

    def __init__(self, blocked, interpretation):
        self._blocked = frozenset(blocked)
        if isinstance(interpretation, IInterpretation):
            self._frozen = interpretation.freeze()
            self._interpretation = interpretation.copy()
        else:
            raise TypeError(
                "expected an IInterpretation, got %r" % (interpretation,)
            )

    @property
    def blocked(self):
        """The blocked set ``B``."""
        return self._blocked

    @property
    def interpretation(self):
        """A copy of the interpretation ``I`` (the paper's ``int(A)``)."""
        return self._interpretation.copy()

    @property
    def frozen_interpretation(self):
        """The canonical ``(I∅, I+, I-)`` frozenset triple."""
        return self._frozen

    # -- the paper's ordering ------------------------------------------------------

    def _interp_subset(self, other):
        return all(m <= t for m, t in zip(self._frozen, other._frozen))

    def precedes(self, other):
        """Strict ``<`` of Section 4.2."""
        if not isinstance(other, BiStructure):
            raise TypeError("cannot compare BiStructure with %r" % (other,))
        if self._blocked < other._blocked:
            return True
        if self._blocked == other._blocked:
            return self._interp_subset(other) and self._frozen != other._frozen
        return False

    def __lt__(self, other):
        return self.precedes(other)

    def __le__(self, other):
        """``A ≤ B`` iff ``A = B`` or ``A < B`` (the paper's ``≼``)."""
        return self == other or self.precedes(other)

    def __eq__(self, other):
        if not isinstance(other, BiStructure):
            return NotImplemented
        return self._blocked == other._blocked and self._frozen == other._frozen

    def __hash__(self):
        return hash((self._blocked, self._frozen))

    def __str__(self):
        from .groundings import sort_groundings

        blocked_text = ", ".join(str(g) for g in sort_groundings(self._blocked))
        return "<{%s}, %s>" % (blocked_text, self._interpretation)

    def __repr__(self):
        return "BiStructure(blocked=%d, interpretation=%r)" % (
            len(self._blocked),
            self._interpretation,
        )


def initial_bistructure(database):
    """The starting point of every PARK run: ``<∅, D>``."""
    return BiStructure(frozenset(), IInterpretation.from_database(database))
