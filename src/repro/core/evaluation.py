"""Per-epoch evaluation strategies for the engine's ``Γ`` rounds.

``Γ``'s definition quantifies over *all* valid unblocked instances every
round; the naive strategy recomputes that set from scratch.  The
semi-naive strategy exploits a monotonicity split:

* **monotone rules** — bodies made only of positive condition literals
  (including bodyless transaction rules).  Positive validity
  (``a ∈ I∅ ∪ I+``) can only switch off→on as ``I`` grows, so within one
  epoch the set of valid instances only accumulates: a full match in the
  epoch's first round, then per-round *delta* matching (an instance newly
  valid in round ``k`` must read at least one atom inserted in round
  ``k−1``), with results accumulated.
* **volatile rules** — anything with negation or event literals, whose
  instance validity can flip both ways; re-evaluated in full each round.

The union (accumulated monotone + current volatile) equals exactly the
naive round's firings, so ``GammaResult`` — and therefore conflicts,
blocking, traces and final states — are bit-identical between the two
strategies.  That equivalence is property-tested
(``tests/property/test_evaluation_modes.py``) and the speedup is measured
by the A4 ablation benchmarks.

Blocked sets only grow at restarts, so an evaluator is valid for exactly
one epoch; the engine constructs a fresh one after every restart.
"""

from __future__ import annotations

from ..engine.match import match_rule
from ..engine.views import FactsView
from ..lang.atoms import Atom
from ..lang.literals import Condition
from ..lang.rules import Rule
from .groundings import RuleGrounding
from .validity import InterpretationView

_DELTA_PREFIX = "__delta__"


def _is_monotone(rule):
    return all(
        isinstance(literal, Condition) and literal.positive
        for literal in rule.body
    )


class NaiveEvaluation:
    """The textbook strategy: full rematch of every rule, every round."""

    name = "naive"

    def __init__(self, program, blocked):
        self.program = program
        self.blocked = frozenset(blocked)

    def compute(self, interpretation, delta_updates=None):
        """All valid unblocked firings: ``{head Update: frozenset[RuleGrounding]}``."""
        from .consequence import compute_firings

        return compute_firings(self.program, interpretation, self.blocked)


class _DeltaView(FactsView):
    """Serves ``__delta__``-prefixed predicates from last round's inserts,
    everything else from the underlying interpretation view."""

    __slots__ = ("inner", "delta_db")

    def __init__(self, inner, delta_db):
        self.inner = inner
        self.delta_db = delta_db

    def _is_shadow(self, predicate):
        return predicate.startswith(_DELTA_PREFIX)

    def condition_candidates(self, predicate, arity, bound):
        if self._is_shadow(predicate):
            relation = self.delta_db.relation(predicate)
            if relation is None or relation.arity != arity:
                return ()
            return relation.candidates(bound)
        return self.inner.condition_candidates(predicate, arity, bound)

    def condition_holds(self, atom):
        if self._is_shadow(atom.predicate):
            return atom in self.delta_db
        return self.inner.condition_holds(atom)

    def negation_holds(self, atom):
        return self.inner.negation_holds(atom)

    def event_candidates(self, op, predicate, arity, bound):
        return self.inner.event_candidates(op, predicate, arity, bound)

    def event_holds(self, op, atom):
        return self.inner.event_holds(op, atom)

    def estimate(self, predicate):
        if self._is_shadow(predicate):
            return self.delta_db.count(predicate)
        return self.inner.estimate(predicate)


class SemiNaiveEvaluation:
    """Accumulating delta evaluation for the monotone fragment."""

    name = "seminaive"

    def __init__(self, program, blocked):
        self.blocked = frozenset(blocked)
        self.monotone_rules = []
        self.volatile_rules = []
        for rule in program:
            (self.monotone_rules if _is_monotone(rule) else self.volatile_rules).append(
                rule
            )
        # One delta variant per positive body literal of each monotone rule,
        # with that literal's predicate renamed into the shadow namespace.
        # The variant keeps the original rule for grounding identity.
        self._variants = []  # (original_rule, variant_rule)
        for rule in self.monotone_rules:
            for index, literal in enumerate(rule.body):
                shadow_atom = Atom(
                    _DELTA_PREFIX + literal.atom.predicate, literal.atom.terms
                )
                body = (
                    rule.body[:index]
                    + (Condition(shadow_atom, positive=True),)
                    + rule.body[index + 1 :]
                )
                self._variants.append(
                    (rule, Rule.__new_unchecked__(rule.head, body, None, None))
                )
        self._accumulated = {}  # Update -> set[RuleGrounding]
        self._first_round_done = False

    # -- internals -------------------------------------------------------------

    def _collect(self, rule, view, into):
        for substitution in match_rule(rule, view):
            instance = RuleGrounding(rule, substitution)
            if instance in self.blocked:
                continue
            head = instance.ground_head()
            into.setdefault(head, set()).add(instance)

    def _collect_variant(self, original_rule, variant_rule, view, into):
        for substitution in match_rule(variant_rule, view):
            instance = RuleGrounding(original_rule, substitution)
            if instance in self.blocked:
                continue
            head = instance.ground_head()
            into.setdefault(head, set()).add(instance)

    @staticmethod
    def _delta_database(delta_updates):
        from ..storage.database import Database

        delta_db = Database()
        for update in delta_updates:
            if update.is_insert:
                delta_db.add(
                    Atom(_DELTA_PREFIX + update.atom.predicate, update.atom.terms)
                )
        return delta_db

    # -- the strategy ---------------------------------------------------------------

    def compute(self, interpretation, delta_updates=None):
        view = InterpretationView(interpretation)

        if not self._first_round_done:
            # Epoch round 1: full match of the monotone fragment.
            for rule in self.monotone_rules:
                self._collect(rule, view, self._accumulated)
            self._first_round_done = True
        elif delta_updates:
            delta_db = self._delta_database(delta_updates)
            if delta_db:
                delta_view = _DeltaView(view, delta_db)
                for original_rule, variant_rule in self._variants:
                    self._collect_variant(
                        original_rule, variant_rule, delta_view, self._accumulated
                    )

        firings = {
            head: set(instances) for head, instances in self._accumulated.items()
        }
        for rule in self.volatile_rules:
            self._collect(rule, view, firings)
        return {head: frozenset(instances) for head, instances in firings.items()}


EVALUATION_STRATEGIES = {
    "naive": NaiveEvaluation,
    "seminaive": SemiNaiveEvaluation,
}


def make_evaluation(name, program, blocked):
    """Instantiate the strategy *name* for one epoch."""
    try:
        factory = EVALUATION_STRATEGIES[name]
    except KeyError:
        raise ValueError(
            "unknown evaluation strategy %r (known: %s)"
            % (name, ", ".join(sorted(EVALUATION_STRATEGIES)))
        )
    return factory(program, blocked)
