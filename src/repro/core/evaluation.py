"""Per-epoch evaluation strategies for the engine's ``Γ`` rounds.

``Γ``'s definition quantifies over *all* valid unblocked instances every
round; the naive strategy recomputes that set from scratch.  The other
strategies exploit how validity evolves *within one epoch*: ``I∅`` is
invariant and ``I+``/``I-`` only grow, so

* **positive condition literals** (``a`` valid iff ``a ∈ I∅ ∪ I+``) can
  only switch off→on;
* **event literals** (``+a`` valid iff ``+a ∈ I+``; ``-a`` iff
  ``-a ∈ I-``) can likewise only switch off→on — the Section 4.3 validity
  clauses read the marked sets directly, which grow inflationarily;
* **negated condition literals** can flip both ways (``not a`` loses
  validity when ``+a`` arrives, gains it when ``-a`` does).

The strategies:

* ``naive`` — textbook full rematch of every rule, every round.
* ``seminaive`` — rules whose bodies are purely positive conditions are
  *monotone*: full match in the epoch's first round, then per-round
  *delta* matching (a newly valid instance must read at least one atom
  inserted in round ``k-1``), with results accumulated.  Everything with
  negation or events is *volatile* and re-evaluated in full each round.
* ``incremental`` — widens the monotone fragment to include event
  literals (delta variants are generated for event literals just like
  condition literals, reading the round's new ``+``/``-`` marks), and
  adds **dirty-predicate scheduling** for the remaining negation-bearing
  rules: a volatile rule is only rematched when last round's new marks
  intersect the ``(predicate, op)`` marks its body reads; otherwise its
  previous firings are reused.  This is sound because every validity
  case for a literal over predicate ``p`` depends only on the atoms and
  marks over ``p`` — and each case reads specific polarities (see
  :func:`repro.engine.dependency.body_mark_index`) — while the blocked
  set is constant within an epoch.

Each strategy returns exactly the naive round's firings, so
``GammaResult`` — and therefore conflicts, blocking, traces and final
states — are bit-identical between the three.  That equivalence is
property-tested (``tests/property/test_evaluation_modes.py``) and the
speedup is measured by the A4 ablation benchmarks and
``benchmarks/run_benchmarks.py``.

All three strategies accept an optional certified **group schedule**
(``groups=``, built by :func:`repro.engine.planner.group_schedule` from
the commutativity analysis): rule batches whose members have pairwise
disjoint effect sets.  Collection then proceeds batch by batch — the
same firings in a rearranged order, so the fingerprint is untouched,
but each batch is a unit a parallel executor could hand out wholesale,
and the runtime independence sanitizer
(:mod:`repro.testing.sanitize`) cross-checks the certificate against
the atoms each batch actually touches.

Blocked sets only grow at restarts, so an evaluator is valid for exactly
one epoch; the engine constructs a fresh one after every restart.

Every strategy also maintains ``last_firing_count`` — the total number
of instances in the dict returned by the latest :meth:`compute` — so the
engine can track ``stats.firings_total`` without re-summing the firings
map each round when no listeners are attached.
"""

from __future__ import annotations

from time import perf_counter

from ..engine.dependency import body_mark_index, marks_touched
from ..engine.match import collect_rule_firings
from ..engine.views import FactsView
from ..lang.atoms import Atom
from ..lang.literals import Condition, Event
from ..lang.rules import Rule
from ..lang.updates import Update, UpdateOp
from ..obs import audit as _audit
from ..obs import metrics as _obs
from .groundings import RuleGrounding
from .validity import InterpretationView

_DELTA_PREFIX = "__delta__"


def _is_monotone(rule):
    """Purely positive condition body: the semi-naive monotone fragment."""
    return all(
        isinstance(literal, Condition) and literal.positive
        for literal in rule.body
    )


def _group_batches(rules, groups):
    """Partition *rules* into the certified batch order, or ``None``.

    *groups* is the engine's group schedule (tuples of rules with
    pairwise disjoint effects, see
    :func:`repro.engine.planner.group_schedule`); the result restricts
    each batch to the rules in *rules* (a strategy may batch only its
    monotone or only its volatile fragment), dropping empty batches.
    Rules absent from every group (possible only when dead-rule pruning
    is off: dead rules are not scheduled) are appended as a final batch —
    they never fire, so their position is unobservable.
    """
    if groups is None:
        return None
    batch_of = {}
    for position, group in enumerate(groups):
        for rule in group:
            batch_of.setdefault(rule, position)
    batches = [[] for _ in groups]
    unscheduled = []
    for rule in rules:
        position = batch_of.get(rule)
        if position is None:
            unscheduled.append(rule)
        else:
            batches[position].append(rule)
    result = [tuple(batch) for batch in batches if batch]
    if unscheduled:
        result.append(tuple(unscheduled))
    return tuple(result)


def _is_epoch_monotone(rule):
    """No negated conditions: valid instances only accumulate within an epoch.

    Positive conditions and event literals both read sets that grow
    inflationarily within one epoch (``I∅ ∪ I+`` and ``I+``/``I-``
    respectively), so their validity only switches off→on.
    """
    return not any(
        isinstance(literal, Condition) and not literal.positive
        for literal in rule.body
    )


def _shadow_atom(atom):
    return Atom(_DELTA_PREFIX + atom.predicate, atom.terms)


def _delta_variant(rule, index, literal):
    """*rule* with body literal *index* renamed into the delta namespace.

    The shadow literal keeps its kind: a positive condition reads the
    round's newly ``+``-marked atoms, an event literal ``±a`` reads the
    round's newly ``±``-marked atoms.  The variant bypasses safety
    re-validation (the original rule is safe and the variant only renames
    a predicate).
    """
    if isinstance(literal, Event):
        shadow = Event(Update(literal.op, _shadow_atom(literal.atom)))
    else:
        shadow = Condition(_shadow_atom(literal.atom), positive=True)
    body = rule.body[:index] + (shadow,) + rule.body[index + 1 :]
    return Rule.__new_unchecked__(rule.head, body, None, None)


class NaiveEvaluation:
    """The textbook strategy: full rematch of every rule, every round."""

    name = "naive"

    def __init__(self, program, blocked, groups=None, executor=None):
        self.program = program
        self.blocked = frozenset(blocked)
        self._batches = _group_batches(tuple(program), groups)
        self._executor = executor
        self._frozen = {}  # previous round's Update -> frozenset, for reuse
        self.last_firing_count = 0

    def compute(self, interpretation, delta_updates=None):
        """All valid unblocked firings: ``{head Update: frozenset[RuleGrounding]}``."""
        view = InterpretationView(interpretation)
        firings = {}
        count = _collect_all(
            self.program,
            self._batches,
            self.blocked,
            view,
            firings,
            self._executor,
            interpretation,
        )
        self.last_firing_count = count
        # Reuse last round's frozenset when a head's instance set did not
        # change — the common case in a converging fixpoint.  Downstream
        # consumers (provenance merging, result comparison) then get
        # identity fast paths instead of re-hashing every instance.
        previous = self._frozen
        frozen = {}
        for head, instances in firings.items():
            prior = previous.get(head)
            if prior is not None and prior == instances:
                frozen[head] = prior
            else:
                frozen[head] = frozenset(instances)
        self._frozen = frozen
        a = _audit.ACTIVE
        if a is not None:
            a.round(self.name, count)
        return dict(frozen)


class _DeltaView(FactsView):
    """Serves ``__delta__``-prefixed predicates from last round's new marks,
    everything else from the underlying interpretation view.

    *delta_plus* holds the newly ``+``-marked atoms (shadow-named) and
    backs shadow positive conditions and shadow ``+a`` event literals;
    *delta_minus* holds the newly ``-``-marked atoms and backs shadow
    ``-a`` event literals.  The semi-naive strategy only ever populates
    *delta_plus* (its monotone fragment has no event literals)."""

    __slots__ = ("inner", "delta_plus", "delta_minus")

    def __init__(self, inner, delta_plus, delta_minus=None):
        self.inner = inner
        self.delta_plus = delta_plus
        self.delta_minus = delta_minus

    def _is_shadow(self, predicate):
        return predicate.startswith(_DELTA_PREFIX)

    def condition_candidates(self, predicate, arity, bound):
        if self._is_shadow(predicate):
            relation = self.delta_plus.relation(predicate)
            if relation is None or relation.arity != arity:
                return ()
            return relation.candidates(bound)
        return self.inner.condition_candidates(predicate, arity, bound)

    def condition_holds(self, atom):
        if self._is_shadow(atom.predicate):
            return atom in self.delta_plus
        return self.inner.condition_holds(atom)

    def negation_holds(self, atom):
        return self.inner.negation_holds(atom)

    def _event_store(self, op):
        return self.delta_plus if op is UpdateOp.INSERT else self.delta_minus

    def event_candidates(self, op, predicate, arity, bound):
        if self._is_shadow(predicate):
            store = self._event_store(op)
            relation = store.relation(predicate) if store is not None else None
            if relation is None or relation.arity != arity:
                return ()
            return relation.candidates(bound)
        return self.inner.event_candidates(op, predicate, arity, bound)

    def event_holds(self, op, atom):
        if self._is_shadow(atom.predicate):
            store = self._event_store(op)
            return store is not None and atom in store
        return self.inner.event_holds(op, atom)

    def estimate(self, predicate):
        if self._is_shadow(predicate):
            total = self.delta_plus.count(predicate)
            if self.delta_minus is not None:
                total += self.delta_minus.count(predicate)
            return total
        return self.inner.estimate(predicate)

    # -- row-level fast paths (compiled matcher) ---------------------------------

    def condition_candidates_key(self, predicate, arity, columns, key):
        if self._is_shadow(predicate):
            relation = self.delta_plus.relation(predicate)
            if relation is None or relation.arity != arity:
                return ()
            return relation.candidates_key(columns, key)
        return self.inner.condition_candidates_key(predicate, arity, columns, key)

    def event_candidates_key(self, op, predicate, arity, columns, key):
        if self._is_shadow(predicate):
            store = self._event_store(op)
            relation = store.relation(predicate) if store is not None else None
            if relation is None or relation.arity != arity:
                return ()
            return relation.candidates_key(columns, key)
        return self.inner.event_candidates_key(op, predicate, arity, columns, key)

    def condition_holds_row(self, predicate, arity, row):
        if self._is_shadow(predicate):
            return self.delta_plus.has_row(predicate, arity, row)
        return self.inner.condition_holds_row(predicate, arity, row)

    def negation_holds_row(self, predicate, arity, row):
        return self.inner.negation_holds_row(predicate, arity, row)

    def event_holds_row(self, op, predicate, arity, row):
        if self._is_shadow(predicate):
            store = self._event_store(op)
            return store is not None and store.has_row(predicate, arity, row)
        return self.inner.event_holds_row(op, predicate, arity, row)

    def register_lookup(self, predicate, arity, columns):
        # Shadow relations hold one round's delta — too small and too
        # short-lived to be worth a composite index — so only forward
        # signatures over real predicates.
        if not self._is_shadow(predicate):
            self.inner.register_lookup(predicate, arity, columns)


def _instance_factory(rule, substitution):
    """Build the ``(RuleGrounding, ground head)`` pair for one match.

    Handed to :func:`collect_rule_firings`, whose compiled backend memoizes
    the result per slot tuple — so across rounds each distinct grounding
    pays this construction exactly once.
    """
    instance = RuleGrounding(rule, substitution)
    return instance, instance.ground_head()


def _collect_inner(rule, blocked, view, into):
    return collect_rule_firings(
        rule, rule, view, blocked, into, _instance_factory
    )


def _collect(rule, blocked, view, into):
    """Match *rule* against *view*, adding unblocked instances to *into*.

    Returns the number of instances that were actually new in *into*.
    With a metrics registry active, the pass is timed and attributed to
    the rule (the raw material of ``repro profile``); without one, the
    clocks are never read.
    """
    m = _obs.ACTIVE
    if m is None:
        return _collect_inner(rule, blocked, view, into)
    start = perf_counter()
    added = _collect_inner(rule, blocked, view, into)
    m.observe_rule(rule.describe(), perf_counter() - start, added)
    m.inc("eval.full_matches")
    return added


def _collect_all(rules, batches, blocked, view, into, executor=None, interpretation=None):
    """Full-match *rules* into *into*, group-batched when *batches* is set.

    *batches* is the strategy's :func:`_group_batches` restriction (or
    ``None`` for plain rule order).  Within a batch the rules' effect
    sets are certified disjoint, so the batch's internal order is
    unobservable; collection lands in one shared dict either way, which
    is what keeps the fast path fingerprint-identical.  Returns the
    number of instances actually new in *into*.

    With an *executor* (a :class:`repro.engine.parallel.ParallelExecutor`)
    and the backing *interpretation*, the whole collect is offered to the
    parallel workers first; the executor either returns the same
    added-count with identical dedup semantics, or declines (``None``)
    and the sequential oracle below runs instead.
    """
    if executor is not None and interpretation is not None:
        added = executor.collect_all(rules, blocked, interpretation, into)
        if added is not None:
            if batches is not None:
                m = _obs.ACTIVE
                if m is not None:
                    m.inc("eval.group_batches", len(batches))
            return added
    added = 0
    if batches is None:
        for rule in rules:
            added += _collect(rule, blocked, view, into)
        return added
    for batch in batches:
        for rule in batch:
            added += _collect(rule, blocked, view, into)
    m = _obs.ACTIVE
    if m is not None:
        m.inc("eval.group_batches", len(batches))
    return added


def _collect_variant_inner(original_rule, variant_rule, blocked, view, into, touched):
    return collect_rule_firings(
        variant_rule, original_rule, view, blocked, into, _instance_factory, touched
    )


def _collect_variant(original_rule, variant_rule, blocked, view, into, touched=None):
    """Like :func:`_collect`, but grounding identity uses *original_rule*.

    Timed under the *original* rule's description, so a rule's profile
    aggregates its full matches and all of its delta-variant matches.
    """
    m = _obs.ACTIVE
    if m is None:
        return _collect_variant_inner(
            original_rule, variant_rule, blocked, view, into, touched
        )
    start = perf_counter()
    added = _collect_variant_inner(
        original_rule, variant_rule, blocked, view, into, touched
    )
    m.observe_rule(original_rule.describe(), perf_counter() - start, added)
    m.inc("eval.delta_matches")
    return added


class SemiNaiveEvaluation:
    """Accumulating delta evaluation for the monotone fragment."""

    name = "seminaive"

    def __init__(self, program, blocked, groups=None, executor=None):
        self.blocked = frozenset(blocked)
        self._executor = executor
        self.monotone_rules = []
        self.volatile_rules = []
        for rule in program:
            (self.monotone_rules if _is_monotone(rule) else self.volatile_rules).append(
                rule
            )
        self._monotone_batches = _group_batches(self.monotone_rules, groups)
        self._volatile_batches = _group_batches(self.volatile_rules, groups)
        # One delta variant per positive body literal of each monotone rule,
        # with that literal's predicate renamed into the shadow namespace.
        # The variant keeps the original rule for grounding identity.
        self._variants = []  # (original_rule, variant_rule)
        for rule in self.monotone_rules:
            for index, literal in enumerate(rule.body):
                self._variants.append((rule, _delta_variant(rule, index, literal)))
        self._accumulated = {}  # Update -> set[RuleGrounding]
        self._frozen = {}  # Update -> frozenset[RuleGrounding], kept in sync
        self._monotone_total = 0
        self._first_round_done = False
        self.last_firing_count = 0

    @staticmethod
    def _delta_database(delta_updates):
        from ..storage.database import Database

        delta_db = Database()
        for update in delta_updates:
            if update.is_insert:
                delta_db.add(_shadow_atom(update.atom))
        return delta_db

    # -- the strategy ---------------------------------------------------------------

    def compute(self, interpretation, delta_updates=None):
        view = InterpretationView(interpretation)
        touched = set()

        if not self._first_round_done:
            # Epoch round 1: full match of the monotone fragment.
            self._monotone_total += _collect_all(
                self.monotone_rules,
                self._monotone_batches,
                self.blocked,
                view,
                self._accumulated,
                self._executor,
                interpretation,
            )
            self._first_round_done = True
            touched.update(self._accumulated)
        elif delta_updates:
            delta_db = self._delta_database(delta_updates)
            if delta_db:
                delta_view = _DeltaView(view, delta_db)
                for original_rule, variant_rule in self._variants:
                    self._monotone_total += _collect_variant(
                        original_rule,
                        variant_rule,
                        self.blocked,
                        delta_view,
                        self._accumulated,
                        touched=touched,
                    )

        # Re-freeze only the heads this round's matching touched; the
        # accumulated map is append-only, so every other head's frozenset
        # is still current and the round's result is a shallow dict copy —
        # O(#heads) instead of O(#instances) per round.
        accumulated = self._accumulated
        frozen = self._frozen
        for head in touched:
            frozen[head] = frozenset(accumulated[head])

        count = self._monotone_total
        a = _audit.ACTIVE
        if not self.volatile_rules:
            self.last_firing_count = count
            if a is not None:
                a.round(self.name, count)
            return dict(frozen)

        firings = {head: set(instances) for head, instances in accumulated.items()}
        count += _collect_all(
            self.volatile_rules,
            self._volatile_batches,
            self.blocked,
            view,
            firings,
            self._executor,
            interpretation,
        )
        self.last_firing_count = count
        if a is not None:
            a.round(self.name, count)
        return {head: frozenset(instances) for head, instances in firings.items()}


class IncrementalEvaluation:
    """Delta evaluation for the whole negation-free fragment plus
    dirty-predicate scheduling for the rest.

    Three refinements over :class:`SemiNaiveEvaluation`:

    * event literals join the monotone fragment (their validity is
      epoch-monotone too), with delta variants reading the round's new
      ``+``/``-`` marks;
    * the accumulated monotone firings are kept as ready frozensets that
      are re-frozen only for heads touched this round, so each round's
      result dict is a shallow copy instead of a deep one;
    * volatile (negation-bearing) rules cache their previous firings and
      are rematched only when last round's new marks touched one of the
      ``(predicate, op)`` marks their bodies read — a sound
      over-approximation since literal validity over ``p`` depends only on
      the marks over ``p`` (and positive conditions and events each read
      only one polarity; see
      :func:`repro.engine.dependency.body_mark_index`).
    """

    name = "incremental"

    def __init__(self, program, blocked, groups=None, executor=None):
        self.blocked = frozenset(blocked)
        self._executor = executor
        self.monotone_rules = []
        self.volatile_rules = []
        for rule in program:
            (
                self.monotone_rules
                if _is_epoch_monotone(rule)
                else self.volatile_rules
            ).append(rule)
        self._monotone_batches = _group_batches(self.monotone_rules, groups)
        self._volatile_batches = _group_batches(self.volatile_rules, groups)
        self._variants = []  # (original_rule, variant_rule)
        for rule in self.monotone_rules:
            for index, literal in enumerate(rule.body):
                self._variants.append((rule, _delta_variant(rule, index, literal)))
        self._body_marks = body_mark_index(self.volatile_rules)
        self._accumulated = {}  # Update -> set[RuleGrounding]
        self._frozen = {}  # Update -> frozenset[RuleGrounding], kept in sync
        self._monotone_total = 0
        self._volatile_cache = {}  # rule -> {Update: frozenset[RuleGrounding]}
        self._first_round_done = False
        self.last_firing_count = 0

    # -- internals -------------------------------------------------------------

    @staticmethod
    def _delta_databases(delta_updates):
        from ..storage.database import Database

        delta_plus = Database()
        delta_minus = Database()
        for update in delta_updates:
            shadow = _shadow_atom(update.atom)
            (delta_plus if update.is_insert else delta_minus).add(shadow)
        return delta_plus, delta_minus

    def _collect_volatile(self, rule, view):
        staged = {}
        _collect(rule, self.blocked, view, staged)
        return {head: frozenset(instances) for head, instances in staged.items()}

    # -- the strategy ---------------------------------------------------------------

    def compute(self, interpretation, delta_updates=None):
        view = InterpretationView(interpretation)
        dirty = None  # None means "everything": the epoch's first round.

        if not self._first_round_done:
            self._monotone_total += _collect_all(
                self.monotone_rules,
                self._monotone_batches,
                self.blocked,
                view,
                self._accumulated,
                self._executor,
                interpretation,
            )
            self._frozen = {
                head: frozenset(instances)
                for head, instances in self._accumulated.items()
            }
            self._first_round_done = True
        elif delta_updates:
            dirty = marks_touched(delta_updates)
            delta_plus, delta_minus = self._delta_databases(delta_updates)
            delta_view = _DeltaView(view, delta_plus, delta_minus)
            touched = set()
            for original_rule, variant_rule in self._variants:
                self._monotone_total += _collect_variant(
                    original_rule,
                    variant_rule,
                    self.blocked,
                    delta_view,
                    self._accumulated,
                    touched,
                )
            for head in touched:
                self._frozen[head] = frozenset(self._accumulated[head])
        else:
            dirty = frozenset()

        firings = dict(self._frozen)
        count = self._monotone_total
        m = _obs.ACTIVE
        if self._volatile_batches is None:
            volatile_order = self.volatile_rules
        else:
            # Group-batched order (certified-disjoint batches); the
            # per-rule caching below is order-independent, so only the
            # iteration order — and the batch counter — change.
            volatile_order = [
                rule for batch in self._volatile_batches for rule in batch
            ]
            if m is not None:
                m.inc("eval.group_batches", len(self._volatile_batches))
        for rule in volatile_order:
            cached = self._volatile_cache.get(rule)
            if (
                cached is None
                or dirty is None
                or not dirty.isdisjoint(self._body_marks[rule])
            ):
                cached = self._collect_volatile(rule, view)
                self._volatile_cache[rule] = cached
                if m is not None:
                    m.inc("eval.volatile_rematched")
            elif m is not None:
                m.inc("eval.volatile_skipped_clean")
            for head, instances in cached.items():
                existing = firings.get(head)
                firings[head] = (
                    instances if existing is None else existing | instances
                )
                # Volatile instances embed their own rule, so they never
                # collide with monotone instances or other rules' caches.
                count += len(instances)
        self.last_firing_count = count
        a = _audit.ACTIVE
        if a is not None:
            a.round(self.name, count)
        return firings


EVALUATION_STRATEGIES = {
    "naive": NaiveEvaluation,
    "seminaive": SemiNaiveEvaluation,
    "incremental": IncrementalEvaluation,
}


def make_evaluation(name, program, blocked, groups=None, executor=None):
    """Instantiate the strategy *name* for one epoch.

    *groups* is an optional certified group schedule
    (:func:`repro.engine.planner.group_schedule`): rule batches with
    pairwise disjoint effects that the strategy collects batch by batch
    — same firings, same fingerprint, but a schedule a parallel executor
    hands out wholesale.  *executor* is that executor (a
    :class:`repro.engine.parallel.ParallelExecutor`, already started for
    this run) or ``None`` for sequential collection; the full-match
    collects route through it, with sequential fallback whenever it
    declines.
    """
    try:
        factory = EVALUATION_STRATEGIES[name]
    except KeyError:
        raise ValueError(
            "unknown evaluation strategy %r (known: %s)"
            % (name, ", ".join(sorted(EVALUATION_STRATEGIES)))
        )
    return factory(program, blocked, groups=groups, executor=executor)
