"""The PARK semantics: the paper's primary contribution.

Exports the fixpoint machinery (interpretations, ``Γ``, conflicts,
blocking, bi-structures, ``Θ``), the production engine, and the ECA
transaction extension.
"""

from .bistructure import BiStructure, initial_bistructure
from .blocking import BlockingMode, blocked_set, resolve_conflicts
from .conflicts import Conflict, build_conflicts, find_conflicts
from .consequence import GammaResult, compute_firings, gamma, gamma_fixpoint
from .eca import extend_with_updates, is_transaction_rule, transaction_rules
from .engine import EngineListener, ParkEngine, park
from .evaluation import NaiveEvaluation, SemiNaiveEvaluation, make_evaluation
from .groundings import RuleGrounding, grounding, sort_groundings
from .incorporate import incorp, incorp_atoms
from .interpretation import IInterpretation
from .provenance import Provenance
from .result import ParkResult, RunStats
from .transition import ThetaStep, theta, theta_omega
from .validity import InterpretationView, rule_instance_valid, valid

__all__ = [
    "BiStructure",
    "BlockingMode",
    "Conflict",
    "EngineListener",
    "GammaResult",
    "IInterpretation",
    "NaiveEvaluation",
    "SemiNaiveEvaluation",
    "InterpretationView",
    "ParkEngine",
    "ParkResult",
    "Provenance",
    "RuleGrounding",
    "RunStats",
    "ThetaStep",
    "blocked_set",
    "build_conflicts",
    "compute_firings",
    "extend_with_updates",
    "find_conflicts",
    "gamma",
    "gamma_fixpoint",
    "grounding",
    "incorp",
    "incorp_atoms",
    "make_evaluation",
    "initial_bistructure",
    "is_transaction_rule",
    "park",
    "resolve_conflicts",
    "rule_instance_valid",
    "sort_groundings",
    "theta",
    "theta_omega",
    "transaction_rules",
    "valid",
]
