"""Intermediate interpretations (i-interpretations) over the extended
Herbrand base.

Section 4.2 of the paper: an i-interpretation consists of a set of positive
unmarked atoms plus sets of atoms marked ``+`` (to insert) and ``-`` (to
delete).  ``I∅`` denotes the unmarked part, ``I+`` the insertions, ``I-``
the deletions.  An i-interpretation is *consistent* iff no atom is marked
both ``+`` and ``-``.

We represent the three parts as indexed atom stores (one
:class:`~repro.storage.database.Database` each) so the matcher can retrieve
candidates through hash indexes; :meth:`freeze` produces the canonical
immutable triple used for fixpoint detection, hashing and golden tests.

Invariant maintained by the engine (and checked in tests): the unmarked
part never changes during a run — ``Γ`` only adds marked literals, so
``I∅ = D`` throughout, which is exactly why the paper can say "we resort to
the initial database instance (D = I∅)" on restart.
"""

from __future__ import annotations

from ..lang.updates import Update, UpdateOp
from ..storage.database import Database


class IInterpretation:
    """A mutable i-interpretation: unmarked atoms plus ``+``/``-`` marked atoms."""

    __slots__ = ("_unmarked", "_plus", "_minus", "_marked", "_marked_stamp")

    def __init__(self, unmarked=(), plus=(), minus=()):
        self._unmarked = unmarked if isinstance(unmarked, Database) else Database(unmarked)
        self._plus = plus if isinstance(plus, Database) else Database(plus)
        self._minus = minus if isinstance(minus, Database) else Database(minus)
        # Lazy memo of the marked literals as a set of Update objects, so
        # the per-round "which firings are new" scan is one set lookup per
        # firing (the Updates there are interned, so their hashes are warm)
        # instead of an atom-store probe.  Guarded by a count stamp: code
        # that mutates the ``plus``/``minus`` stores directly (bypassing
        # add_update) changes the count and forces a rebuild.
        self._marked = None
        self._marked_stamp = -1

    # -- constructors -------------------------------------------------------------

    @classmethod
    def from_database(cls, database):
        """The starting i-interpretation of a PARK run: ``D`` unmarked, no marks."""
        return cls(unmarked=database.copy())

    # -- the three parts ------------------------------------------------------------

    @property
    def unmarked(self):
        """``I∅`` — the unmarked atoms (the original database instance)."""
        return self._unmarked

    @property
    def plus(self):
        """``I+`` — atoms marked for insertion."""
        return self._plus

    @property
    def minus(self):
        """``I-`` — atoms marked for deletion."""
        return self._minus

    # -- membership -------------------------------------------------------------------

    def has_unmarked(self, atom):
        return atom in self._unmarked

    def has_plus(self, atom):
        return atom in self._plus

    def has_minus(self, atom):
        return atom in self._minus

    def marked_updates(self):
        """The marked literals as a set of Updates.  Treat as read-only.

        Validated against the store sizes and rebuilt when stale, so it
        stays correct even when code mutates ``plus``/``minus`` directly.
        Callers scanning many updates should fetch this once and use ``in``
        — the validation is per fetch, not per probe.
        """
        marked = self._marked
        if marked is None or self._marked_stamp != len(self._plus) + len(self._minus):
            marked = set()
            for atom in self._plus.atoms():
                marked.add(Update(UpdateOp.INSERT, atom))
            for atom in self._minus.atoms():
                marked.add(Update(UpdateOp.DELETE, atom))
            self._marked = marked
            self._marked_stamp = len(marked)
        return marked

    def has_update(self, update):
        """Whether the marked literal *update* (``+a``/``-a``) is in ``I``."""
        return update in self.marked_updates()

    # -- mutation ----------------------------------------------------------------------

    def add_update(self, update):
        """Add a marked literal; returns True if it was new.

        Adding may make the interpretation inconsistent — consistency is a
        property the engine checks, not an invariant of the container
        (the paper's ``Γ`` produces inconsistent interpretations, which is
        precisely what triggers conflict resolution).
        """
        if not isinstance(update, Update):
            raise TypeError("expected an Update, got %r" % (update,))
        added = (
            self._plus.add(update.atom)
            if update.is_insert
            else self._minus.add(update.atom)
        )
        if added and self._marked is not None:
            self._marked.add(update)
            self._marked_stamp += 1
        return added

    def add_updates(self, updates):
        """Add many marked literals; returns the number that were new."""
        added = 0
        for update in updates:
            if self.add_update(update):
                added += 1
        return added

    # -- consistency ----------------------------------------------------------------------

    def conflicting_atoms(self):
        """Atoms marked both ``+`` and ``-``, as a sorted list."""
        plus_atoms = set(self._plus.atoms())
        result = [a for a in plus_atoms if a in self._minus]
        result.sort(key=str)
        return result

    def is_consistent(self):
        """True iff no atom is marked both ``+`` and ``-``."""
        smaller, larger = self._plus, self._minus
        if len(smaller) > len(larger):
            smaller, larger = larger, smaller
        return all(atom not in larger for atom in smaller.atoms())

    def would_conflict(self, update):
        """Whether adding *update* would create an inconsistency."""
        if update.is_insert:
            return update.atom in self._minus
        return update.atom in self._plus

    # -- views ----------------------------------------------------------------------------

    def updates(self):
        """All marked literals, sorted (``+`` before ``-`` per atom text)."""
        result = [Update(UpdateOp.INSERT, a) for a in self._plus.atoms()]
        result += [Update(UpdateOp.DELETE, a) for a in self._minus.atoms()]
        result.sort(key=str)
        return result

    def marked_count(self):
        return len(self._plus) + len(self._minus)

    def __len__(self):
        return len(self._unmarked) + self.marked_count()

    def copy(self):
        # Carry the hash indexes: ``Γ``'s apply copies the interpretation
        # every round, and rebuilding indexes from scratch each time costs
        # more than the per-bucket set copies.
        clone = IInterpretation(
            self._unmarked.copy(with_indexes=True),
            self._plus.copy(with_indexes=True),
            self._minus.copy(with_indexes=True),
        )
        # Carry the marked-literal memo too: rebuilding it materializes an
        # Update per marked atom, which dwarfs a set copy once I+ grows.
        if self._marked is not None:
            clone._marked = set(self._marked)
            clone._marked_stamp = self._marked_stamp
        return clone

    def freeze(self):
        """Canonical immutable form: ``(frozenset I∅, frozenset I+, frozenset I-)``."""
        return (
            self._unmarked.freeze(),
            self._plus.freeze(),
            self._minus.freeze(),
        )

    def restarted(self):
        """A fresh interpretation keeping only ``I∅`` (the paper's restart).

        ``I∅`` is invariant during a run, so its indexes are still valid
        after a conflict restart — carry them instead of rebuilding.
        """
        return IInterpretation(unmarked=self._unmarked.copy(with_indexes=True))

    # -- comparisons ---------------------------------------------------------------------------

    def __eq__(self, other):
        if not isinstance(other, IInterpretation):
            return NotImplemented
        return self.freeze() == other.freeze()

    def __hash__(self):
        raise TypeError("IInterpretation is mutable; hash freeze() instead")

    def issubset(self, other):
        """Pointwise ``⊆`` on the three parts (the ordering used on I)."""
        mine = self.freeze()
        theirs = other.freeze()
        return all(m <= t for m, t in zip(mine, theirs))

    def __str__(self):
        from ..lang.pretty import render_atom

        parts = [render_atom(a) for a in self._unmarked.atoms()]
        parts += ["+%s" % render_atom(a) for a in self._plus.atoms()]
        parts += ["-%s" % render_atom(a) for a in self._minus.atoms()]
        return "{%s}" % ", ".join(sorted(parts, key=lambda s: s.lstrip("+-")))

    def __repr__(self):
        return "IInterpretation(unmarked=%d, plus=%d, minus=%d)" % (
            len(self._unmarked),
            len(self._plus),
            len(self._minus),
        )
