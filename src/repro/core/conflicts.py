"""Conflicts: ``(a, ins, del)`` triples (paper, Section 4.2).

``conflicts(P, I)`` is the set of maximal triples ``(a, ins, del)`` such
that some rule instance with a valid body derives ``+a`` and some other
derives ``-a``; ``ins`` and ``del`` collect *all* such instances.  The
definition "looks one step into the future": the conflicting marked
literals need not be in ``I`` yet.

Two deliberate engine refinements, both documented in DESIGN.md:

* instances already in the blocked set ``B`` are excluded from both sides
  (a blocked instance cannot fire, so it cannot be the reason to block
  anything else);
* **provenance completion** — when ``Γ(I)`` is inconsistent on ``a``
  because one marked literal entered ``I`` in an earlier round and its
  deriving instance is *no longer valid* (its body used negation that has
  since been defeated), the paper's two-sided definition yields no conflict
  triple and a literal implementation would loop.  We complete the empty
  side with the recorded historical derivers of the stale literal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

from ..errors import EngineError
from ..lang.atoms import Atom
from ..lang.updates import Update, UpdateOp
from ..obs import audit as _audit
from .consequence import compute_firings
from .groundings import RuleGrounding, sort_groundings


@dataclass(frozen=True)
class Conflict:
    """A conflict ``(a, ins, del)`` on ground atom ``a``.

    ``ins`` holds the rule groundings whose head is ``+a``; ``dels`` those
    whose head is ``-a`` (named ``dels`` because ``del`` is reserved in
    Python).  Both sides are non-empty frozensets.
    """

    atom: Atom
    ins: FrozenSet[RuleGrounding]
    dels: FrozenSet[RuleGrounding]

    def __post_init__(self):
        if not isinstance(self.atom, Atom) or not self.atom.is_ground():
            raise TypeError("conflict atom must be a ground Atom, got %r" % (self.atom,))
        object.__setattr__(self, "ins", frozenset(self.ins))
        object.__setattr__(self, "dels", frozenset(self.dels))
        if not self.ins or not self.dels:
            raise ValueError(
                "conflict on %s must have non-empty ins and del sides" % self.atom
            )

    def side(self, decision_is_insert):
        """The *winning* side for a decision: ins for insert, dels for delete."""
        return self.ins if decision_is_insert else self.dels

    def losing_side(self, decision_is_insert):
        """The side whose instances get blocked: the opposite of the winner."""
        return self.dels if decision_is_insert else self.ins

    def rules(self):
        """All distinct rules participating in this conflict."""
        return {g.rule for g in self.ins} | {g.rule for g in self.dels}

    def sort_key(self):
        return str(self.atom)

    def __str__(self):
        ins_text = ", ".join(str(g) for g in sort_groundings(self.ins))
        del_text = ", ".join(str(g) for g in sort_groundings(self.dels))
        return "(%s, {%s}, {%s})" % (self.atom, ins_text, del_text)


def find_conflicts(program, interpretation, blocked=frozenset(), firings=None):
    """The paper's ``conflicts(P, I)`` (restricted to unblocked instances).

    Returns a list of :class:`Conflict`, sorted by atom for determinism.
    *firings* may be supplied to reuse a matching pass already done by
    ``Γ``; otherwise one is computed.
    """
    if firings is None:
        firings = compute_firings(program, interpretation, blocked)
    ins_by_atom = {}
    del_by_atom = {}
    for update, instances in firings.items():
        target = ins_by_atom if update.is_insert else del_by_atom
        target.setdefault(update.atom, set()).update(instances)
    result = []
    for atom in set(ins_by_atom) & set(del_by_atom):
        result.append(
            Conflict(atom, frozenset(ins_by_atom[atom]), frozenset(del_by_atom[atom]))
        )
    result.sort(key=Conflict.sort_key)
    trail = _audit.ACTIVE
    if trail is not None:
        for conflict in result:
            trail.conflict(conflict)
    return result


def build_conflicts(gamma_result, blocked, provenance):
    """Conflicts for every atom on which ``Γ(I)`` is inconsistent.

    For each conflicting atom, each side is taken from the current firings
    when possible and completed from *provenance* (historical derivers,
    minus blocked instances) when the current side is empty — the stale
    case described in the module docstring.

    Raises :class:`EngineError` if a side cannot be completed at all, which
    only happens for hand-built interpretations containing marked literals
    the engine never derived.
    """
    firings = gamma_result.firings
    trail = _audit.ACTIVE
    conflicts = []
    stale_sides = {} if trail is not None else None
    for atom in gamma_result.conflict_atoms:
        plus_update = Update(UpdateOp.INSERT, atom)
        minus_update = Update(UpdateOp.DELETE, atom)
        ins = set(firings.get(plus_update, ()))
        dels = set(firings.get(minus_update, ()))
        stale_ins = not ins
        stale_dels = not dels
        if stale_ins:
            ins = set(provenance.derivers(plus_update)) - set(blocked)
        if stale_dels:
            dels = set(provenance.derivers(minus_update)) - set(blocked)
        if not ins or not dels:
            side = "+%s" % atom if not ins else "-%s" % atom
            raise EngineError(
                "conflict on %s has no deriving instances for %s; the marked "
                "literal was not derived by any rule this run" % (atom, side)
            )
        conflict = Conflict(atom, frozenset(ins), frozenset(dels))
        if stale_sides is not None:
            stale_sides[conflict] = (stale_ins, stale_dels)
        conflicts.append(conflict)
    conflicts.sort(key=Conflict.sort_key)
    if trail is not None:
        for conflict in conflicts:
            stale_ins, stale_dels = stale_sides[conflict]
            trail.conflict(conflict, stale_ins=stale_ins, stale_dels=stale_dels)
    return conflicts
