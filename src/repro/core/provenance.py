"""Provenance: which rule instances derived which marked literals.

The engine records, per restart epoch, every ``(rule, θ)`` whose firing
contributed a marked literal to the i-interpretation.  Provenance serves
two purposes:

* **stale-conflict completion** (see :mod:`repro.core.conflicts`): when the
  deriver of an established marked literal is no longer valid, the conflict
  side is reconstructed from history;
* **explanation** (:mod:`repro.analysis.explain`): derivation trees showing
  *why* an atom ended up inserted or deleted, built by chasing provenance
  edges through body literals.

Provenance is cleared on every conflict-resolution restart, because the
computation genuinely starts over from ``I∅`` and old derivations are
exactly the "obsolete facts" the paper's restart discards.
"""

from __future__ import annotations


class Provenance:
    """Per-epoch record of derivations: ``Update -> set[RuleGrounding]``."""

    __slots__ = ("_derivers", "_first_round")

    def __init__(self):
        self._derivers = {}
        self._first_round = {}

    def record(self, firings, round_number=None):
        """Merge one round's firings (``{Update: frozenset[RuleGrounding]}``).

        Stores the round's frozensets by reference and merges copy-on-write:
        the delta strategies hand back the *same* frozenset for heads a
        round did not touch, so the common case is an identity check rather
        than a set union.
        """
        derivers = self._derivers
        for update, instances in firings.items():
            existing = derivers.get(update)
            if existing is None:
                derivers[update] = instances
                if round_number is not None:
                    self._first_round[update] = round_number
            elif existing is not instances:
                if existing <= instances:
                    derivers[update] = instances
                else:
                    derivers[update] = frozenset(existing | instances)

    def derivers(self, update):
        """All recorded instances that derived *update* this epoch."""
        return frozenset(self._derivers.get(update, ()))

    def first_round(self, update):
        """The round in which *update* was first derived, or ``None``."""
        return self._first_round.get(update)

    def updates(self):
        """All updates with recorded derivations, sorted."""
        return sorted(self._derivers, key=str)

    def clear(self):
        """Forget everything (called on restart)."""
        self._derivers.clear()
        self._first_round.clear()

    def __len__(self):
        return len(self._derivers)

    def __contains__(self, update):
        return update in self._derivers

    def copy(self):
        clone = Provenance()
        clone._derivers = {u: set(g) for u, g in self._derivers.items()}
        clone._first_round = dict(self._first_round)
        return clone
