"""Full ECA support: transaction updates as bodyless rules (Section 4.3).

A user transaction produces a set ``U`` of ground updates.  The paper
models them as new rules ``-> ±a`` for each ``±a ∈ U``, forming the
modified program ``P_U = P ∪ { -> a | ±a ∈ U }``.  This solves both
problems the paper identifies:

1. a conflict-resolution restart goes back to ``I∅`` — the transaction's
   updates are re-derived by their rules rather than being lost;
2. conflicts between a transaction update and a rule (or between two
   transaction updates) are ordinary conflicts between rule instances and
   flow through ``SELECT`` like any other.

Transaction-update rules are named ``tx<i>`` (``tx1``, ``tx2``, ...) in a
deterministic order so traces, priorities and blocked-set reports can refer
to them.  They carry a ``priority`` of ``None`` by default; policies that
want "transaction updates always win" can be composed accordingly (see
``repro.policies``).
"""

from __future__ import annotations

from ..errors import EngineError
from ..lang.program import Program
from ..lang.rules import Rule
from ..lang.updates import Update


def transaction_rules(updates, name_prefix="tx", priority=None):
    """The bodyless rules ``-> ±a`` encoding transaction updates *updates*.

    Updates are sorted textually so rule names are stable across runs.
    Every update must be ground.
    """
    rules = []
    for index, update in enumerate(sorted(updates, key=str), start=1):
        if not isinstance(update, Update):
            raise TypeError("transaction update %r is not an Update" % (update,))
        if not update.is_ground():
            raise EngineError("transaction update %s is not ground" % update)
        rules.append(
            Rule(
                head=update,
                body=(),
                name="%s%d" % (name_prefix, index),
                priority=priority,
            )
        )
    return tuple(rules)


def extend_with_updates(program, updates, name_prefix="tx", priority=None):
    """The paper's ``P_U``: *program* extended with transaction-update rules.

    The prefix is bumped (``tx``, ``txx``, ...) if the program already uses
    a rule name that would collide.
    """
    if not updates:
        return program
    existing = {rule.name for rule in program if rule.name}
    prefix = name_prefix
    while any(name.startswith(prefix) and name[len(prefix):].isdigit()
              for name in existing):
        prefix += "x"
    new_rules = transaction_rules(updates, name_prefix=prefix, priority=priority)
    return Program(tuple(program) + new_rules)


def is_transaction_rule(rule):
    """Whether *rule* has the shape of a transaction-update rule (empty body)."""
    return rule.is_fact_rule()
