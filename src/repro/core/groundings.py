"""Rule groundings: the ``(rule, substitution)`` pairs of the paper.

A rule grounding identifies one ground instance of one rule.  Groundings
are the currency of conflict resolution: the ``ins``/``del`` sides of a
conflict are sets of groundings, and the blocked set ``B`` is a set of
groundings that :math:`Γ_{P,B}` must skip.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang.rules import Rule
from ..lang.substitution import Substitution


@dataclass(frozen=True)
class RuleGrounding:
    """One ground instance of a rule: ``(r, θ)``.

    The substitution covers exactly the rule's variables (enforced), so two
    groundings are equal iff they denote the same ground instance.
    """

    rule: Rule
    substitution: Substitution

    def __post_init__(self):
        if not isinstance(self.rule, Rule):
            raise TypeError("expected a Rule, got %r" % (self.rule,))
        if not isinstance(self.substitution, Substitution):
            object.__setattr__(self, "substitution", Substitution(self.substitution))
        rule_vars = self.rule.variables()
        bound_vars = self.substitution.variable_set()
        if bound_vars != rule_vars:
            bound_vars = set(bound_vars)
            extra = sorted(v.name for v in bound_vars - rule_vars)
            missing = sorted(v.name for v in rule_vars - bound_vars)
            problems = []
            if missing:
                problems.append("unbound: %s" % ", ".join(missing))
            if extra:
                problems.append("spurious: %s" % ", ".join(extra))
            raise ValueError(
                "substitution does not cover rule %s exactly (%s)"
                % (self.rule.describe(), "; ".join(problems))
            )

    def __hash__(self):
        # Cached: groundings populate the firings / ins / del / blocked
        # sets, and the dataclass-generated hash would re-hash the full rule
        # structure on every set operation.
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash((self.rule, self.substitution))
            object.__setattr__(self, "_hash", h)
        return h

    def ground_head(self):
        """The ground head update of this instance.

        Memoized per rule: the fixpoint re-derives the same instances every
        round, and the matcher serves interned substitutions, so the memo
        turns repeat head groundings into one dict hit returning a shared
        :class:`~repro.lang.updates.Update`.
        """
        rule = self.rule
        memo = rule.__dict__.get("_head_memo")
        if memo is None:
            memo = {}
            object.__setattr__(rule, "_head_memo", memo)
        head = memo.get(self.substitution)
        if head is None:
            head = rule.head.ground(self.substitution)
            memo[self.substitution] = head
        return head

    def ground_body(self):
        """The ground body literals of this instance, in rule order."""
        return tuple(l.ground(self.substitution) for l in self.rule.body)

    def sort_key(self):
        """Deterministic ordering key (rule text, then substitution text)."""
        return (self.rule.describe(), str(self.substitution))

    def __str__(self):
        if self.substitution:
            return "(%s, %s)" % (self.rule.describe(), self.substitution)
        return "(%s)" % self.rule.describe()


def grounding(rule, substitution=None):
    """Convenience constructor; ``substitution`` may be a plain mapping."""
    return RuleGrounding(rule, Substitution(substitution or {}))


def sort_groundings(groundings):
    """Sorted list of groundings in the canonical deterministic order."""
    return sorted(groundings, key=RuleGrounding.sort_key)
