"""Literal validity in an i-interpretation (paper, Sections 4.2 and 4.3).

For a ground literal and an i-interpretation ``I``:

* a positive condition ``a`` is valid iff ``a ∈ I`` or ``+a ∈ I``;
* a negated condition ``not a`` is valid iff ``-a ∈ I``, **or** neither
  ``a`` nor ``+a`` is in ``I`` (negation as failure);
* an event literal ``+a`` is valid iff ``+a ∈ I``; ``-a`` iff ``-a ∈ I``
  (the Section 4.3 extension).

:func:`valid` is the direct transcription for ground literals.
:class:`InterpretationView` exposes the same semantics through the
matcher's :class:`~repro.engine.views.FactsView` interface so rule bodies
with variables can be matched against ``I`` using indexes.
"""

from __future__ import annotations

import itertools

from ..errors import EngineError
from ..lang.literals import Condition, Event
from ..lang.updates import UpdateOp
from ..engine.views import FactsView


def valid(literal, interpretation):
    """Validity of a *ground* literal in *interpretation* (paper definition)."""
    if isinstance(literal, Condition):
        atom = literal.atom
        if not atom.is_ground():
            raise EngineError("validity requires a ground literal, got %s" % literal)
        if literal.positive:
            return interpretation.has_unmarked(atom) or interpretation.has_plus(atom)
        if interpretation.has_minus(atom):
            return True
        return not (
            interpretation.has_unmarked(atom) or interpretation.has_plus(atom)
        )
    if isinstance(literal, Event):
        atom = literal.atom
        if not atom.is_ground():
            raise EngineError("validity requires a ground literal, got %s" % literal)
        if literal.op is UpdateOp.INSERT:
            return interpretation.has_plus(atom)
        return interpretation.has_minus(atom)
    raise TypeError("not a literal: %r" % (literal,))


class InterpretationView(FactsView):
    """Matcher view implementing the paper's validity over an i-interpretation."""

    __slots__ = ("interpretation",)

    def __init__(self, interpretation):
        self.interpretation = interpretation

    # -- positive conditions: a ∈ I∅ or +a ∈ I+ ------------------------------------

    def condition_candidates(self, predicate, arity, bound):
        interpretation = self.interpretation
        unmarked = interpretation.unmarked.relation(predicate)
        if unmarked is not None and unmarked.arity != arity:
            unmarked = None
        plus = interpretation.plus.relation(predicate)
        if plus is not None and plus.arity != arity:
            plus = None
        if plus is None or not len(plus):
            return () if unmarked is None else unmarked.candidates(bound)
        if unmarked is None or not len(unmarked):
            return plus.candidates(bound)
        # An atom may sit in both I∅ and I+ (re-inserting an unmarked fact);
        # the matcher contract is one candidate per distinct row, so suppress
        # plus rows the unmarked store already yielded.
        return itertools.chain(
            unmarked.candidates(bound),
            (row for row in plus.candidates(bound) if row not in unmarked),
        )

    def condition_holds(self, atom):
        return self.interpretation.has_unmarked(atom) or self.interpretation.has_plus(
            atom
        )

    # -- negated conditions -----------------------------------------------------------

    def negation_holds(self, atom):
        if self.interpretation.has_minus(atom):
            return True
        return not (
            self.interpretation.has_unmarked(atom)
            or self.interpretation.has_plus(atom)
        )

    # -- event literals ------------------------------------------------------------------

    def event_candidates(self, op, predicate, arity, bound):
        store = (
            self.interpretation.plus
            if op is UpdateOp.INSERT
            else self.interpretation.minus
        )
        relation = store.relation(predicate)
        if relation is None or relation.arity != arity:
            return ()
        return relation.candidates(bound)

    def event_holds(self, op, atom):
        if op is UpdateOp.INSERT:
            return self.interpretation.has_plus(atom)
        return self.interpretation.has_minus(atom)

    # -- row-level fast paths (compiled matcher) --------------------------------------------

    def condition_candidates_key(self, predicate, arity, columns, key):
        interpretation = self.interpretation
        unmarked = interpretation.unmarked.relation(predicate)
        if unmarked is not None and unmarked.arity != arity:
            unmarked = None
        plus = interpretation.plus.relation(predicate)
        if plus is not None and plus.arity != arity:
            plus = None
        if plus is None or not len(plus):
            return () if unmarked is None else unmarked.candidates_key(columns, key)
        if unmarked is None or not len(unmarked):
            # The common shape for derived predicates: rows live only in
            # I+, so no dedup filter is needed.
            return plus.candidates_key(columns, key)
        # Same dedup as condition_candidates, in the storage-native dialect.
        has_native = unmarked.has_native
        return itertools.chain(
            unmarked.candidates_key(columns, key),
            (
                row
                for row in plus.candidates_key(columns, key)
                if not has_native(row)
            ),
        )

    def event_candidates_key(self, op, predicate, arity, columns, key):
        store = (
            self.interpretation.plus
            if op is UpdateOp.INSERT
            else self.interpretation.minus
        )
        relation = store.relation(predicate)
        if relation is None or relation.arity != arity:
            return ()
        return relation.candidates_key(columns, key)

    def condition_holds_row(self, predicate, arity, row):
        interpretation = self.interpretation
        return interpretation.unmarked.has_row(
            predicate, arity, row
        ) or interpretation.plus.has_row(predicate, arity, row)

    def negation_holds_row(self, predicate, arity, row):
        interpretation = self.interpretation
        if interpretation.minus.has_row(predicate, arity, row):
            return True
        return not (
            interpretation.unmarked.has_row(predicate, arity, row)
            or interpretation.plus.has_row(predicate, arity, row)
        )

    def event_holds_row(self, op, predicate, arity, row):
        store = (
            self.interpretation.plus
            if op is UpdateOp.INSERT
            else self.interpretation.minus
        )
        return store.has_row(predicate, arity, row)

    def register_lookup(self, predicate, arity, columns):
        # A condition probe reads I∅ and I+; an event probe reads I+ or I-.
        # Registration is schema-level and idempotent, so register the
        # signature with all three stores rather than threading the literal
        # kind through the handshake.
        self.interpretation.unmarked.register_lookup(predicate, arity, columns)
        self.interpretation.plus.register_lookup(predicate, arity, columns)
        self.interpretation.minus.register_lookup(predicate, arity, columns)

    # -- statistics -----------------------------------------------------------------------

    def estimate(self, predicate):
        return self.interpretation.unmarked.count(
            predicate
        ) + self.interpretation.plus.count(predicate)


def rule_instance_valid(rule, substitution, interpretation):
    """Whether every body literal of ``(rule, substitution)`` is valid in ``I``.

    This is the paper's ``valid(liθ, I) for all body literals`` condition,
    used by conflict bookkeeping and by tests; the matcher computes the same
    thing during search without materializing the ground rule.
    """
    for literal in rule.body:
        if not valid(literal.substitute(substitution), interpretation):
            return False
    return True
