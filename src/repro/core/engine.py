"""The PARK engine: ``PARK(D, P, U) = incorp(int(Θ^ω_{P_U}((∅, D))))``.

This is the production evaluation loop.  It implements exactly the ``Θ``
case split of :mod:`repro.core.transition` but works on one mutable
i-interpretation per epoch (instead of immutable bi-structures), records
provenance and statistics, and emits structured events to listeners so
the analysis layer can reproduce the paper's printed traces.

Termination needs no arbitrary cap: a consistent round either adds a
marked literal (``I`` strictly grows within the finite extended Herbrand
base) or is the fixpoint, and a resolution step strictly grows ``B``
within the finite set of rule groundings — the engine raises
:class:`NonTerminationError` only if a (buggy) policy configuration breaks
the latter invariant.  Optional ``max_rounds`` / ``max_restarts`` budgets
are available for defensive callers.
"""

from __future__ import annotations

from ..errors import NonTerminationError
from ..lang.program import Program
from ..policies.base import as_policy
from ..storage.database import Database
from ..storage.delta import Delta
from .blocking import BlockingMode, resolve_conflicts
from .conflicts import build_conflicts
from .consequence import GammaResult
from .eca import extend_with_updates
from .evaluation import EVALUATION_STRATEGIES, make_evaluation
from .incorporate import incorp
from .interpretation import IInterpretation
from .provenance import Provenance
from .result import ParkResult, RunStats


class EngineListener:
    """Receives structured events during a run.  All methods are no-ops here.

    Implementations: :class:`repro.analysis.trace.TraceRecorder` (records
    everything), or ad-hoc subclasses for progress reporting.
    """

    def on_start(self, program, database, policy_name):
        """A run begins; *program* already includes transaction rules."""

    def on_round(self, round_number, epoch, gamma_result):
        """``Γ`` was applied once; the result may be inconsistent."""

    def on_apply(self, round_number, epoch, interpretation):
        """A consistent round's updates were merged into ``I``."""

    def on_conflicts(self, round_number, epoch, conflicts, decisions, blocked_added):
        """Conflicts were detected and resolved; a restart follows."""

    def on_restart(self, epoch, blocked):
        """A new epoch begins from ``I∅`` with the enlarged blocked set."""

    def on_fixpoint(self, round_number, epoch, interpretation, blocked):
        """The final fixpoint was reached."""

    def on_finish(self, result):
        """The run is complete; *result* is the :class:`ParkResult`."""


def _coerce_program(program):
    if isinstance(program, Program):
        return program
    if isinstance(program, str):
        from ..lang.parser import parse_program

        return parse_program(program)
    return Program(tuple(program))


def _coerce_database(database):
    if isinstance(database, Database):
        return database
    if isinstance(database, str):
        return Database.from_text(database)
    return Database(database)


class ParkEngine:
    """A configured PARK evaluator: policy + blocking mode + listeners.

    Engines are reusable and stateless across runs; every :meth:`run` is
    independent.
    """

    def __init__(
        self,
        policy=None,
        blocking_mode=BlockingMode.ALL,
        max_rounds=None,
        max_restarts=None,
        listeners=(),
        evaluation="naive",
    ):
        if policy is None:
            from ..policies.inertia import InertiaPolicy

            policy = InertiaPolicy()
        self.policy = as_policy(policy)
        if not isinstance(blocking_mode, BlockingMode):
            raise TypeError("blocking_mode must be a BlockingMode")
        self.blocking_mode = blocking_mode
        self.max_rounds = max_rounds
        self.max_restarts = max_restarts
        self.listeners = tuple(listeners)
        if evaluation not in EVALUATION_STRATEGIES:
            raise ValueError(
                "evaluation must be one of %s, got %r"
                % (", ".join(sorted(EVALUATION_STRATEGIES)), evaluation)
            )
        self.evaluation = evaluation

    # -- events ----------------------------------------------------------------

    def _emit(self, method_name, *args):
        for listener in self.listeners:
            getattr(listener, method_name)(*args)

    # -- the run -----------------------------------------------------------------

    def run(self, program, database, updates=None):
        """Compute ``PARK(D, P, U)`` and return a :class:`ParkResult`.

        *program* may be a :class:`Program`, an iterable of rules, or rule
        source text; *database* a :class:`Database`, an iterable of ground
        atoms, or fact source text; *updates* an iterable of ground
        :class:`~repro.lang.updates.Update` (the transaction's updates
        ``U``), empty or ``None`` for plain condition-action semantics.
        """
        base_program = _coerce_program(program)
        original = _coerce_database(database)
        if updates:
            run_program = extend_with_updates(base_program, updates)
        else:
            run_program = base_program

        have_listeners = bool(self.listeners)
        self._emit("on_start", run_program, original, self.policy.name)

        stats = RunStats()
        blocked = set()
        provenance = Provenance()
        interpretation = IInterpretation.from_database(original)
        epoch = 1
        evaluator = make_evaluation(self.evaluation, run_program, blocked)
        last_new_updates = None

        while True:
            stats.rounds += 1
            if self.max_rounds is not None and stats.rounds > self.max_rounds:
                raise NonTerminationError(
                    "PARK exceeded max_rounds=%d" % self.max_rounds
                )
            firings = evaluator.compute(interpretation, last_new_updates)
            result = GammaResult(interpretation, firings)
            if have_listeners:
                stats.firings_total += result.firing_count
                self._emit("on_round", stats.rounds, epoch, result)
            else:
                # Strategies count firings as they collect them; skip the
                # per-round re-summation over the firings map.
                stats.firings_total += evaluator.last_firing_count

            if result.is_consistent:
                provenance.record(result.firings, round_number=stats.rounds)
                if result.reached_fixpoint:
                    break
                last_new_updates = result.new_updates
                interpretation = result.apply()
                self._emit("on_apply", stats.rounds, epoch, interpretation)
                continue

            # Conflict branch of Θ: resolve, block, restart from I∅.
            conflicts = build_conflicts(result, blocked, provenance)
            additions, decisions = resolve_conflicts(
                conflicts,
                self.policy,
                original,
                run_program,
                interpretation,
                blocked,
                restarts=stats.restarts,
                mode=self.blocking_mode,
            )
            new_instances = additions - blocked
            if not new_instances:
                raise NonTerminationError(
                    "conflict resolution added no new blocked instances "
                    "(policy %s cannot make progress)" % self.policy.name
                )
            if have_listeners:
                self._emit(
                    "on_conflicts",
                    stats.rounds,
                    epoch,
                    tuple(conflicts),
                    tuple(decisions),
                    frozenset(new_instances),
                )
            blocked |= new_instances
            stats.restarts += 1
            stats.conflicts_resolved += len(decisions)
            if (
                self.max_restarts is not None
                and stats.restarts > self.max_restarts
            ):
                raise NonTerminationError(
                    "PARK exceeded max_restarts=%d" % self.max_restarts
                )
            epoch += 1
            interpretation = interpretation.restarted()
            provenance.clear()
            evaluator = make_evaluation(self.evaluation, run_program, blocked)
            last_new_updates = None
            if have_listeners:
                self._emit("on_restart", epoch, frozenset(blocked))

        stats.blocked_instances = len(blocked)
        if have_listeners:
            self._emit(
                "on_fixpoint", stats.rounds, epoch, interpretation, frozenset(blocked)
            )

        final_database = incorp(interpretation)
        run_result = ParkResult(
            database=final_database,
            delta=Delta.diff(original, final_database),
            interpretation=interpretation,
            blocked=frozenset(blocked),
            stats=stats,
            policy_name=self.policy.name,
            provenance=provenance,
        )
        self._emit("on_finish", run_result)
        return run_result


def park(program, database, updates=None, policy=None, **engine_options):
    """One-shot convenience: ``park(P, D, U) -> ParkResult``.

    Equivalent to ``ParkEngine(policy=..., **engine_options).run(...)``.
    The default policy is the principle of inertia, matching the paper's
    running examples.

    >>> from repro.core.engine import park
    >>> park("p -> +q.", "p.").database == {"..."}  # doctest: +SKIP
    """
    engine = ParkEngine(policy=policy, **engine_options)
    return engine.run(program, database, updates=updates)
