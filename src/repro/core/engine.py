"""The PARK engine: ``PARK(D, P, U) = incorp(int(Θ^ω_{P_U}((∅, D))))``.

This is the production evaluation loop.  It implements exactly the ``Θ``
case split of :mod:`repro.core.transition` but works on one mutable
i-interpretation per epoch (instead of immutable bi-structures), records
provenance and statistics, and emits structured events to listeners so
the analysis layer can reproduce the paper's printed traces.

Termination needs no arbitrary cap: a consistent round either adds a
marked literal (``I`` strictly grows within the finite extended Herbrand
base) or is the fixpoint, and a resolution step strictly grows ``B``
within the finite set of rule groundings — the engine raises
:class:`NonTerminationError` only if a (buggy) policy configuration breaks
the latter invariant.  Optional ``max_rounds`` / ``max_restarts`` budgets
are available for defensive callers.

Telemetry follows the same opt-in pattern as listeners: construct with
``metrics=`` (a :class:`repro.obs.metrics.Metrics`) and/or ``tracer=``
(a :class:`repro.obs.tracing.Tracer`) and the run records phase timings,
counters, and nested engine/match/policy spans.  The metrics registry is
installed process-wide for the duration of the run so the matcher,
planner, and storage layers attribute their counters to it; with neither
option the loop takes the same null-telemetry fast path it always took
for listeners (one ``is None`` test per site — see DESIGN.md §7).

Static fast paths (DESIGN.md §8): construct with ``facts=True`` (analyze
at run start) or a precomputed :class:`~repro.lint.facts.ProgramFacts`,
and the run may (a) skip per-round conflict detection when the program is
statically conflict-free, (b) route a stratifiable program from the
``naive`` strategy onto ``seminaive``, (c) prune statically-dead
rules from matcher compilation, and (d) batch ``Γ`` collection per
certified independent rule group (the commutativity analysis's PARK043
certificate).  Each path is individually gated
(``facts_conflict_skip`` / ``facts_seminaive`` / ``facts_prune`` /
``facts_groups``) and semantics-preserving: the run's fingerprint
(atoms, blocked, rounds, restarts, firings) is bit-identical to the
ungated run.  Facts that do not describe the run program ``P_U``
(transaction rules change the emitters) are re-derived against it, with
the run's database sharpening liveness — soundness never rests on the
caller.  With the independence sanitizer active
(``REPRO_SANITIZE=independence``, see :mod:`repro.testing.sanitize`),
every consistent round's observed reads and writes are checked against
the group certificate and a violation raises
:class:`~repro.testing.sanitize.SanitizerError` (exit 2 via the CLI).
"""

from __future__ import annotations

import os
from time import perf_counter

from ..engine.planner import group_schedule
from ..errors import NonTerminationError
from ..lang.program import Program
from ..obs import audit as _audit
from ..obs import metrics as _obs
from ..testing import sanitize as _sanitize
from ..policies.base import as_policy
from ..storage.catalog import INTERNER
from ..storage.database import Database, ensure_storage
from ..storage.delta import Delta
from .blocking import BlockingMode, resolve_conflicts
from .conflicts import build_conflicts
from .consequence import GammaResult
from .eca import extend_with_updates
from .evaluation import EVALUATION_STRATEGIES, make_evaluation
from .incorporate import incorp
from .interpretation import IInterpretation
from .provenance import Provenance
from .result import ParkResult, RunStats


class EngineListener:
    """Receives structured events during a run.  All methods are no-ops here.

    Implementations: :class:`repro.analysis.trace.TraceRecorder` (records
    everything), :class:`repro.obs.tracing.TracingListener` (forwards the
    events into a span trace), or ad-hoc subclasses for progress reporting.
    """

    def on_start(self, program, database, policy_name):
        """A run begins; *program* already includes transaction rules."""

    def on_round(self, round_number, epoch, gamma_result):
        """``Γ`` was applied once; the result may be inconsistent."""

    def on_apply(self, round_number, epoch, interpretation):
        """A consistent round's updates were merged into ``I``."""

    def on_conflicts(self, round_number, epoch, conflicts, decisions, blocked_added):
        """Conflicts were detected and resolved; a restart follows."""

    def on_restart(self, epoch, blocked):
        """A new epoch begins from ``I∅`` with the enlarged blocked set."""

    def on_fixpoint(self, round_number, epoch, interpretation, blocked):
        """The final fixpoint was reached."""

    def on_finish(self, result):
        """The run is complete; *result* is the :class:`ParkResult`."""


def _coerce_program(program):
    if isinstance(program, Program):
        return program
    if isinstance(program, str):
        from ..lang.parser import parse_program

        return parse_program(program)
    return Program(tuple(program))


def _coerce_database(database):
    # A prebuilt Database may predate a storage-backend switch (tests and
    # benchmarks flip backends mid-process); converge it so a run never
    # mixes row and columnar relations.
    if isinstance(database, Database):
        return ensure_storage(database)
    if isinstance(database, str):
        return Database.from_text(database)
    return Database(database)


class ParkEngine:
    """A configured PARK evaluator: policy + blocking mode + telemetry.

    Engines are reusable and stateless across runs; every :meth:`run` is
    independent.
    """

    def __init__(
        self,
        policy=None,
        blocking_mode=BlockingMode.ALL,
        max_rounds=None,
        max_restarts=None,
        listeners=(),
        evaluation="naive",
        metrics=None,
        tracer=None,
        audit=None,
        facts=None,
        facts_conflict_skip=True,
        facts_seminaive=True,
        facts_prune=True,
        facts_groups=True,
        plan_cache=None,
        parallel=None,
    ):
        if policy is None:
            from ..policies.inertia import InertiaPolicy

            policy = InertiaPolicy()
        self.policy = as_policy(policy)
        if not isinstance(blocking_mode, BlockingMode):
            raise TypeError("blocking_mode must be a BlockingMode")
        self.blocking_mode = blocking_mode
        self.max_rounds = max_rounds
        self.max_restarts = max_restarts
        self.listeners = tuple(listeners)
        if evaluation not in EVALUATION_STRATEGIES:
            raise ValueError(
                "evaluation must be one of %s, got %r"
                % (", ".join(sorted(EVALUATION_STRATEGIES)), evaluation)
            )
        self.evaluation = evaluation
        self.metrics = metrics
        self.tracer = tracer
        # ``audit``: None (off), True (record a fresh DecisionTrail per
        # run), or a repro.obs.audit.DecisionTrail instance to record
        # into.  The trail rides on the result (``result.trail``).
        self.audit = audit
        # ``facts``: None (off), True (analyze at run start), or a
        # precomputed lint.facts.ProgramFacts for the program being run.
        self.facts = facts
        self.facts_conflict_skip = facts_conflict_skip
        self.facts_seminaive = facts_seminaive
        self.facts_prune = facts_prune
        self.facts_groups = facts_groups
        # ``plan_cache``: an optional engine.plancache.PlanCache consulted
        # whenever facts must be (re)derived, so repeated runs of the same
        # program (ActiveDatabase commits, benchmark reps) skip re-analysis.
        self.plan_cache = plan_cache
        # ``parallel``: worker count for sharded Γ collection (see
        # repro.engine.parallel); None reads REPRO_PARALLEL, and anything
        # below 2 keeps the sequential oracle.
        if parallel is None:
            parallel = os.environ.get("REPRO_PARALLEL") or 0
        self.parallel = int(parallel)

    # -- events ----------------------------------------------------------------

    def _emit(self, method_name, *args):
        for listener in self.listeners:
            getattr(listener, method_name)(*args)

    # -- static facts -----------------------------------------------------------

    def _resolve_facts(self, run_program, original):
        """The :class:`ProgramFacts` to run under, or ``None`` when off.

        Precomputed facts are only trusted when they describe exactly the
        run program (transaction rules of ``P_U`` change the emittable
        sets); otherwise — and for ``facts=True`` — they are re-derived
        against the run program with the run's database sharpening
        liveness.  Either way the result is sound for this run.

        Re-derivation goes through :attr:`plan_cache` when one is set, so
        a repeat run of an unchanged program is a validated cache hit
        instead of a fresh analysis.
        """
        if self.facts is None:
            return None
        from ..lint.facts import ProgramFacts

        if isinstance(self.facts, ProgramFacts) and self.facts.matches(run_program):
            return self.facts
        if self.plan_cache is not None:
            return self.plan_cache.facts_for(run_program, original)
        return ProgramFacts.analyze(run_program, database=original)

    # -- the run -----------------------------------------------------------------

    def run(self, program, database, updates=None):
        """Compute ``PARK(D, P, U)`` and return a :class:`ParkResult`.

        *program* may be a :class:`Program`, an iterable of rules, or rule
        source text; *database* a :class:`Database`, an iterable of ground
        atoms, or fact source text; *updates* an iterable of ground
        :class:`~repro.lang.updates.Update` (the transaction's updates
        ``U``), empty or ``None`` for plain condition-action semantics.
        """
        base_program = _coerce_program(program)
        original = _coerce_database(database)
        if updates:
            run_program = extend_with_updates(base_program, updates)
        else:
            run_program = base_program

        tracer = self.tracer
        if self.metrics is None and tracer is None and self.audit is None:
            return self._run_loop(run_program, original)

        # Install the registries process-wide for the run so the matcher,
        # planner, storage, and conflict-resolution layers record into
        # them; restore the previous ones (usually None) even if the run
        # raises.
        previous = _obs.set_active(self.metrics) if self.metrics is not None else None
        if self.audit is not None:
            trail = (
                self.audit
                if isinstance(self.audit, _audit.DecisionTrail)
                else _audit.DecisionTrail()
            )
            previous_trail = _audit.set_active(trail)
        run_span = (
            tracer.begin(
                "engine.run",
                policy=self.policy.name,
                evaluation=self.evaluation,
                rules=len(run_program),
                atoms=len(original),
            )
            if tracer is not None
            else None
        )
        try:
            return self._run_loop(run_program, original)
        finally:
            if tracer is not None:
                # Also closes any round/match/policy spans a mid-run error
                # left open, stamping them with the failure time.
                tracer.end(run_span)
            if self.audit is not None:
                _audit.set_active(previous_trail)
            if self.metrics is not None:
                _obs.set_active(previous)

    def _run_loop(self, run_program, original):
        have_listeners = bool(self.listeners)
        tracer = self.tracer
        # Record into whatever registries are active — our own (installed
        # by run()) or ones the caller activated around the whole run.
        metrics = _obs.ACTIVE
        trail = _audit.ACTIVE
        self._emit("on_start", run_program, original, self.policy.name)

        # Static fast paths: each one is individually gated and preserves
        # the run's semantic fingerprint bit-for-bit (see class docstring).
        facts = self._resolve_facts(run_program, original)
        skip_conflict_scan = False
        evaluation_name = self.evaluation
        matcher_program = run_program
        groups = None
        if facts is not None:
            skip_conflict_scan = self.facts_conflict_skip and facts.conflict_free
            if (
                self.facts_seminaive
                and facts.stratifiable
                and evaluation_name == "naive"
            ):
                # Any strategy computes the same rounds; stratifiable
                # programs are where the monotone split pays off.
                evaluation_name = "seminaive"
            if self.facts_prune and facts.dead:
                # Dead rules can never fire, so the matcher need not
                # compile or probe them; firings are unchanged.
                matcher_program = facts.live_program(run_program)
            if self.facts_groups and facts.parallel_groups:
                # Group-batched collection: the schedule covers exactly
                # the live rules, in certified-independent batches; the
                # strategies fold unscheduled (dead, when pruning is off)
                # rules into a trailing batch of their own.
                groups = group_schedule(run_program, facts)
            if metrics is not None:
                metrics.gauge(
                    "engine.facts_conflict_free", int(facts.conflict_free)
                )
                metrics.gauge("engine.facts_dead_rules", len(facts.dead))
                metrics.gauge(
                    "engine.facts_auto_seminaive",
                    int(evaluation_name != self.evaluation),
                )
                metrics.gauge(
                    "engine.facts_parallel_groups",
                    len(groups) if groups is not None else 0,
                )

        if trail is not None:
            trail.start(run_program, original, self.policy.name, evaluation_name)

        # Parallel Γ collection: spawn the worker pool once per run.  The
        # executor may decline (tiny input, <2 workers) in which case the
        # sequential oracle runs exactly as before.
        executor = None
        if self.parallel > 1:
            from ..engine.parallel import ParallelExecutor

            candidate = ParallelExecutor(self.parallel)
            if candidate.begin_run(tuple(matcher_program), original, groups=groups):
                executor = candidate

        stats = RunStats()
        blocked = set()
        provenance = Provenance()
        interpretation = IInterpretation.from_database(original)
        epoch = 1
        if executor is not None:
            executor.begin_epoch()
        evaluator = make_evaluation(
            evaluation_name, matcher_program, blocked, groups=groups, executor=executor
        )
        last_new_updates = None
        # The independence sanitizer (REPRO_SANITIZE=independence) checks
        # each consistent round's observed effects against the certified
        # parallel groups; one pointer test per round when disabled.
        sanitizer = _sanitize.ACTIVE if facts is not None else None
        if metrics is not None:
            metrics.inc("engine.runs")
            metrics.gauge("engine.input_atoms", len(original))
            metrics.gauge("engine.program_rules", len(run_program))
            metrics.gauge("storage.intern_table_size", len(INTERNER))

        try:
            while True:
                stats.rounds += 1
                if self.max_rounds is not None and stats.rounds > self.max_rounds:
                    raise NonTerminationError(
                        "PARK exceeded max_rounds=%d" % self.max_rounds
                    )
                round_span = (
                    tracer.begin("engine.round", round=stats.rounds, epoch=epoch)
                    if tracer is not None
                    else None
                )
                if metrics is not None:
                    metrics.inc("engine.rounds")
                    match_start = perf_counter()
                if tracer is not None:
                    match_span = tracer.begin("match.gamma")
                firings = evaluator.compute(interpretation, last_new_updates)
                if tracer is not None:
                    tracer.end(match_span)
                if metrics is not None:
                    metrics.observe("phase.match", perf_counter() - match_start)
                    metrics.inc("engine.firings", evaluator.last_firing_count)
                result = GammaResult(
                    interpretation, firings, assume_consistent=skip_conflict_scan
                )
                # Firings are counted by the strategies as they collect them,
                # so the total is free whether or not anyone is listening.
                stats.firings_total += evaluator.last_firing_count
                if have_listeners:
                    self._emit("on_round", stats.rounds, epoch, result)

                if result.is_consistent:
                    if sanitizer is not None:
                        sanitizer.check_round(facts, result.firings, stats.rounds)
                    provenance.record(result.firings, round_number=stats.rounds)
                    if result.reached_fixpoint:
                        if tracer is not None:
                            tracer.end(round_span)
                        break
                    last_new_updates = result.new_updates
                    if metrics is not None:
                        apply_start = perf_counter()
                    if tracer is not None:
                        apply_span = tracer.begin("engine.apply")
                    if have_listeners:
                        # Listeners may retain the round's GammaResult, whose
                        # interpretation must stay the pre-apply state.
                        interpretation = result.apply()
                    else:
                        # No outside observer: merge the round's updates in
                        # place instead of copying all three stores (indexes
                        # are maintained incrementally by the relations).
                        interpretation.add_updates(result.new_updates)
                    if tracer is not None:
                        tracer.end(apply_span)
                        tracer.end(round_span)
                    if metrics is not None:
                        metrics.observe("phase.apply", perf_counter() - apply_start)
                    self._emit("on_apply", stats.rounds, epoch, interpretation)
                    continue

                # Conflict branch of Θ: resolve, block, restart from I∅.
                if metrics is not None:
                    policy_start = perf_counter()
                if tracer is not None:
                    policy_span = tracer.begin(
                        "policy.resolve", round=stats.rounds, epoch=epoch
                    )
                conflicts = build_conflicts(result, blocked, provenance)
                additions, decisions = resolve_conflicts(
                    conflicts,
                    self.policy,
                    original,
                    run_program,
                    interpretation,
                    blocked,
                    restarts=stats.restarts,
                    mode=self.blocking_mode,
                )
                if tracer is not None:
                    tracer.end(policy_span)
                if metrics is not None:
                    metrics.observe("phase.policy", perf_counter() - policy_start)
                    metrics.inc("engine.conflicts_resolved", len(decisions))
                new_instances = additions - blocked
                if not new_instances:
                    raise NonTerminationError(
                        "conflict resolution added no new blocked instances "
                        "(policy %s cannot make progress)" % self.policy.name
                    )
                if have_listeners:
                    self._emit(
                        "on_conflicts",
                        stats.rounds,
                        epoch,
                        tuple(conflicts),
                        tuple(decisions),
                        frozenset(new_instances),
                    )
                blocked |= new_instances
                stats.restarts += 1
                stats.conflicts_resolved += len(decisions)
                if trail is not None:
                    # Archive the dying epoch's provenance *before* the restart
                    # clears it — the decision trail keeps what Θ discards.
                    trail.blocked(new_instances)
                    trail.archive_epoch(provenance)
                    trail.restart(len(blocked))
                if (
                    self.max_restarts is not None
                    and stats.restarts > self.max_restarts
                ):
                    raise NonTerminationError(
                        "PARK exceeded max_restarts=%d" % self.max_restarts
                    )
                epoch += 1
                interpretation = interpretation.restarted()
                provenance.clear()
                if executor is not None:
                    # The workers' replicas restart from I∅ exactly like the
                    # parent's interpretation just did.
                    executor.begin_epoch()
                evaluator = make_evaluation(
                    evaluation_name,
                    matcher_program,
                    blocked,
                    groups=groups,
                    executor=executor,
                )
                last_new_updates = None
                if metrics is not None:
                    metrics.inc("engine.restarts")
                if tracer is not None:
                    tracer.end(round_span)
                if have_listeners:
                    self._emit("on_restart", epoch, frozenset(blocked))
        finally:
            if executor is not None:
                executor.close()

        stats.blocked_instances = len(blocked)
        if trail is not None:
            trail.archive_epoch(provenance)
            trail.finish(stats)
        if metrics is not None:
            metrics.inc("engine.epochs", epoch)
            metrics.inc("engine.blocked_instances", len(blocked))
        if have_listeners:
            self._emit(
                "on_fixpoint", stats.rounds, epoch, interpretation, frozenset(blocked)
            )

        if metrics is not None:
            incorp_start = perf_counter()
        if tracer is not None:
            incorp_span = tracer.begin("engine.incorp")
        final_database = incorp(interpretation)
        if tracer is not None:
            tracer.end(incorp_span)
        if metrics is not None:
            metrics.observe("phase.incorp", perf_counter() - incorp_start)
            metrics.gauge("engine.result_atoms", len(final_database))
            # Re-stamped post-run: the run itself may have interned new
            # constants (transaction updates, derived heads).
            metrics.gauge("storage.intern_table_size", len(INTERNER))
        run_result = ParkResult(
            database=final_database,
            delta=Delta.diff(original, final_database),
            interpretation=interpretation,
            blocked=frozenset(blocked),
            stats=stats,
            policy_name=self.policy.name,
            provenance=provenance,
            metrics=metrics,
            trail=trail,
        )
        self._emit("on_finish", run_result)
        return run_result


def park(program, database, updates=None, policy=None, **engine_options):
    """One-shot convenience: ``park(P, D, U) -> ParkResult``.

    Equivalent to ``ParkEngine(policy=..., **engine_options).run(...)``.
    The default policy is the principle of inertia, matching the paper's
    running examples.

    >>> from repro.core.engine import park
    >>> park("p -> +q.", "p.").database == {"..."}  # doctest: +SKIP
    """
    engine = ParkEngine(policy=policy, **engine_options)
    return engine.run(program, database, updates=updates)
