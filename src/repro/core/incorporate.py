"""The ``incorp`` operator (paper, Section 4.2).

``incorp`` turns a *consistent* i-interpretation into an ordinary database
instance by executing the surviving marked actions::

    incorp(I) = (I∅ ∪ {a | +a ∈ I+}) − {a | -a ∈ I-}

Deleting an absent atom and inserting a present one are both no-ops, which
is exactly how the principle of inertia leaves a conflicting atom's status
untouched: after the conflicting pair is resolved away, no action on the
atom executes at all.
"""

from __future__ import annotations

from ..errors import EngineError


def incorp(interpretation, strict=True):
    """Materialize the result database of a consistent i-interpretation.

    With ``strict=True`` (default) an inconsistent interpretation raises
    :class:`EngineError` — ``incorp`` is undefined on inconsistent input,
    and the engine only ever calls it on fixpoints, which are consistent by
    construction.  ``strict=False`` applies deletes after inserts, which is
    what the flawed fixpoint-then-eliminate baseline needs to demonstrate
    the paper's Section 4.1 counterexamples.
    """
    if strict and not interpretation.is_consistent():
        conflicting = ", ".join(str(a) for a in interpretation.conflicting_atoms())
        raise EngineError(
            "incorp applied to inconsistent i-interpretation (conflicts on: %s)"
            % conflicting
        )
    result = interpretation.unmarked.copy()
    for atom in interpretation.plus.atoms():
        result.add(atom)
    for atom in interpretation.minus.atoms():
        result.remove(atom)
    return result


def incorp_atoms(interpretation, strict=True):
    """Like :func:`incorp` but returning a frozenset of atoms."""
    return incorp(interpretation, strict=strict).freeze()
