"""The immediate consequence operator ``Γ_{P,B}`` (paper, Section 4.2).

``Γ_{P,B}(I)`` is the smallest set containing ``I`` and, for every rule
``r ∈ P`` and ground substitution ``θ`` with ``(r, θ) ∉ B`` whose body
literals are all valid in ``I``, the ground head ``±l0θ``.

One evaluation round has to answer three questions at once — what is
``Γ(I)``, is it consistent, and which groundings derived which head — so
this module computes a single :class:`GammaResult` carrying all three.
The grounding→head map ("firings") is reused by conflict detection (which
"looks one step into the future" from the same ``I``) and by provenance.
"""

from __future__ import annotations

from ..engine.match import match_rule
from .groundings import RuleGrounding
from .validity import InterpretationView


class GammaResult:
    """The outcome of one application of ``Γ_{P,B}`` to an i-interpretation.

    Attributes:
        interpretation: the input ``I`` (not modified).
        firings: ``{ground head Update -> frozenset of RuleGroundings}`` for
            every valid, unblocked rule instance.
        new_updates: heads not already marked in ``I`` (sorted).
        conflict_atoms: atoms marked both ``+`` and ``-`` in ``Γ(I)``
            (sorted); empty iff ``Γ(I)`` is consistent, given consistent ``I``.
    """

    __slots__ = (
        "interpretation",
        "firings",
        "new_updates",
        "conflict_atoms",
        "_firing_count",
    )

    def __init__(self, interpretation, firings, assume_consistent=False):
        self.interpretation = interpretation
        self.firings = firings
        # One validated fetch of the marked set, then plain set probes —
        # per-head has_update calls would re-validate the memo each time.
        marked = interpretation.marked_updates()
        self.new_updates = sorted(
            (u for u in firings if u not in marked), key=str
        )
        # ``assume_consistent`` skips the conflict scan entirely.  Only
        # sound when the caller has a static proof that no atom can ever
        # be marked both + and - (ProgramFacts.conflict_free); the engine
        # asserts that proof before passing True.
        self.conflict_atoms = [] if assume_consistent else self._find_conflict_atoms()
        self._firing_count = None

    @property
    def firing_count(self):
        """Total rule-instance firings this round (computed once, cached)."""
        if self._firing_count is None:
            self._firing_count = sum(len(g) for g in self.firings.values())
        return self._firing_count

    def _find_conflict_atoms(self):
        interpretation = self.interpretation
        plus_atoms = set()
        minus_atoms = set()
        for update in self.firings:
            (plus_atoms if update.is_insert else minus_atoms).add(update.atom)
        # A conflict needs a - mark somewhere: no fired deletes and an
        # empty I- means none is possible, and the same holds mirrored.
        # Deductive workloads (insert-only programs) hit this every round.
        if not minus_atoms and not len(interpretation.minus):
            return []
        if not plus_atoms and not len(interpretation.plus):
            return []
        conflicts = set()
        # new + against (existing or new) -
        for atom in plus_atoms:
            if atom in minus_atoms or interpretation.has_minus(atom):
                conflicts.add(atom)
        for atom in minus_atoms:
            if interpretation.has_plus(atom):
                conflicts.add(atom)
        return sorted(conflicts, key=str)

    @property
    def is_consistent(self):
        """Whether ``Γ(I)`` is a consistent i-interpretation."""
        return not self.conflict_atoms

    @property
    def reached_fixpoint(self):
        """Whether ``Γ(I) = I`` (no new marked literals)."""
        return not self.new_updates

    def groundings_for(self, update):
        """The groundings that derive *update* this round (may be empty)."""
        return self.firings.get(update, frozenset())

    def apply(self):
        """Materialize ``Γ(I)`` as a new interpretation (``I`` unchanged).

        Only meaningful when consistent — the engine never applies an
        inconsistent result, mirroring ``Θ``'s case split.
        """
        result = self.interpretation.copy()
        result.add_updates(self.new_updates)
        return result


def compute_firings(program, interpretation, blocked=frozenset()):
    """All valid, unblocked rule instances of *program* in *interpretation*.

    Returns ``{ground head Update -> frozenset[RuleGrounding]}``.  This is
    the joint workhorse of ``Γ`` and ``conflicts``: both quantify over
    exactly these instances.
    """
    view = InterpretationView(interpretation)
    firings = {}
    for rule in program:
        for substitution in match_rule(rule, view):
            instance = RuleGrounding(rule, substitution)
            if instance in blocked:
                continue
            head = instance.ground_head()
            bucket = firings.get(head)
            if bucket is None:
                firings[head] = {instance}
            else:
                bucket.add(instance)
    return {head: frozenset(instances) for head, instances in firings.items()}


def gamma(program, blocked, interpretation):
    """One application of ``Γ_{P,B}`` — returns a :class:`GammaResult`."""
    firings = compute_firings(program, interpretation, blocked)
    return GammaResult(interpretation, firings)


def gamma_fixpoint(program, blocked, interpretation, max_rounds=None):
    """Iterate ``Γ_{P,B}`` from *interpretation* to its least fixpoint above it.

    Stops early and returns the offending :class:`GammaResult` if a round
    turns inconsistent; otherwise returns the final (fixpoint) result.
    Used directly by Theorem 4.1 tests; the engine drives rounds itself so
    it can trace them.
    """
    from ..errors import NonTerminationError

    current = interpretation
    rounds = 0
    while True:
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            raise NonTerminationError("Γ exceeded %d rounds" % max_rounds)
        result = gamma(program, blocked, current)
        if not result.is_consistent or result.reached_fixpoint:
            return result
        current = result.apply()
