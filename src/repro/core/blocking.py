"""Blocking: turning conflict decisions into blocked rule instances.

Paper, Section 4.2: given the conflicts of the current state and a policy
``SELECT``, the blocked set gains the *losing* side of each conflict — the
``del`` instances where ``SELECT`` said ``insert``, the ``ins`` instances
where it said ``delete``.

The paper itself notes (end of Section 4.2) that blocking the losing side
of *every* conflict can block instances "unnecessarily", and that the
definition may be relaxed to "include only (a non-empty) part of conflicts
into blocked".  :class:`BlockingMode` exposes both readings:

* ``ALL`` — the formal definition: resolve every detected conflict in this
  resolution step (fewest restarts; may block instances that could never
  fire again anyway);
* ``MINIMAL`` — resolve only the first conflict (canonical atom order) per
  resolution step, re-detecting after the restart (most restarts; blocks
  no instance that was not individually necessary at the moment it was
  blocked).

Both modes terminate — every resolution step strictly grows ``B`` — and
an ablation benchmark (``benchmarks/bench_blocking_modes.py``) compares
their cost.
"""

from __future__ import annotations

import enum

from ..errors import PolicyError
from ..obs import audit as _audit
from ..policies.base import ConflictContext, Decision, check_decision


class BlockingMode(enum.Enum):
    """How many of the detected conflicts one resolution step consumes."""

    ALL = "all"
    MINIMAL = "minimal"

    def __str__(self):
        return self.value


def resolve_conflicts(
    conflicts,
    policy,
    database,
    program,
    interpretation,
    blocked,
    restarts,
    mode=BlockingMode.ALL,
):
    """Ask *policy* to resolve *conflicts*; return ``(additions, decisions)``.

    ``additions`` is the set of rule groundings to add to ``B``;
    ``decisions`` is the list of ``(conflict, Decision)`` pairs actually
    made (one pair in ``MINIMAL`` mode, all conflicts in ``ALL`` mode).
    Conflicts are processed in canonical atom order, so runs are
    deterministic for deterministic policies.
    """
    if not conflicts:
        raise PolicyError("resolve_conflicts called with no conflicts")
    chosen = conflicts[:1] if mode is BlockingMode.MINIMAL else conflicts

    trail = _audit.ACTIVE
    additions = set()
    decisions = []
    for conflict in chosen:
        context = ConflictContext(
            database=database,
            program=program,
            interpretation=interpretation,
            conflict=conflict,
            blocked=frozenset(blocked),
            restarts=restarts,
        )
        decision = check_decision(policy.select(context), policy, conflict)
        decisions.append((conflict, decision))
        losers = conflict.losing_side(decision is Decision.INSERT)
        if trail is not None:
            trail.verdict(policy.name, conflict, decision, losers)
        additions |= losers
    return additions, decisions


def blocked_set(database, program, interpretation, policy, mode=BlockingMode.ALL):
    """The paper's ``blocked(D, P, I, SELECT)`` as a standalone function.

    Computes ``conflicts(P, I)`` fresh and returns only the grounding set
    (no decisions); the engine uses :func:`resolve_conflicts` instead so it
    can trace decisions and share the matcher pass.
    """
    from .conflicts import find_conflicts

    conflicts = find_conflicts(program, interpretation)
    if not conflicts:
        return frozenset()
    additions, _ = resolve_conflicts(
        conflicts,
        policy,
        database,
        program,
        interpretation,
        blocked=frozenset(),
        restarts=0,
        mode=mode,
    )
    return frozenset(additions)
