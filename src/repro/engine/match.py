"""The body-matching engine: find all valid groundings of a rule body.

Given a rule and a :class:`~repro.engine.views.FactsView`, the matcher
enumerates every ground substitution under which all body literals are
valid.  This single engine powers the immediate consequence operator ``Γ``,
conflict detection (both "look one step into the future"), and the baseline
deductive semantics.

Two interchangeable backends implement the search:

``compiled`` (the default)
    The slot compiler of :mod:`repro.engine.compiler`: the body is lowered
    once to a register-machine program (fixed variable slots, raw value
    tuples, an iterative cursor stack) and executed without recursion or
    dict copies.  It also registers its lookup signatures with the view so
    the storage layer can build composite indexes.

``interpreted``
    The original backtracking search below — the reference oracle.  It is
    deliberately simple and stays byte-for-byte in PARK-semantics lockstep
    with the compiled backend (property-tested).

Select with the ``REPRO_MATCHER`` environment variable or
:func:`set_matcher_backend`; both backends yield identical substitution
sets for every rule/view, so the choice is performance-only.

Evaluation in both backends follows the planner's literal order, with
candidate rows served from hash indexes.  Rules are compiled once and
cached, since the PARK fixpoint re-evaluates the same rules every round.
"""

from __future__ import annotations

import os

from ..lang.atoms import Atom
from ..lang.literals import Condition, Event
from ..lang.substitution import Substitution
from ..lang.terms import Constant, Variable
from ..obs import metrics as _obs
from .compiler import clear_program_cache, compile_program
from .planner import plan_body

_compiled_cache = {}

_VALID_BACKENDS = ("compiled", "interpreted")

_backend = "compiled"


def set_matcher_backend(name):
    """Select the matching backend: ``"compiled"`` or ``"interpreted"``.

    Returns the normalized name.  Affects all subsequent ``match_rule`` /
    ``fireable_heads`` / ``match_body_once`` calls process-wide.
    """
    global _backend
    normalized = str(name).strip().lower()
    if normalized not in _VALID_BACKENDS:
        raise ValueError(
            "unknown matcher backend %r (expected one of: %s)"
            % (name, ", ".join(_VALID_BACKENDS))
        )
    _backend = normalized
    return normalized


def get_matcher_backend():
    """The currently selected matching backend name."""
    return _backend


set_matcher_backend(os.environ.get("REPRO_MATCHER") or "compiled")


class _CompiledLiteral:
    """A literal preprocessed for fast interpreted matching."""

    __slots__ = ("literal", "kind", "predicate", "arity", "terms", "is_event", "op",
                 "positive", "const_bound", "const_items", "var_items")

    def __init__(self, literal, kind):
        self.literal = literal
        self.kind = kind
        self.predicate = literal.atom.predicate
        self.arity = literal.atom.arity
        self.terms = literal.atom.terms
        self.is_event = isinstance(literal, Event)
        self.op = literal.op if self.is_event else None
        self.positive = literal.positive if isinstance(literal, Condition) else True
        # Positions split once at compile time so the per-round hot paths
        # never re-test isinstance per term.  ``const_bound`` is shared with
        # the view layer and must never be mutated.
        const_bound = {}
        var_items = []
        for position, term in enumerate(self.terms):
            if isinstance(term, Constant):
                const_bound[position] = term.value
            else:
                var_items.append((position, term))
        self.const_bound = const_bound
        self.const_items = tuple(const_bound.items())
        self.var_items = tuple(var_items)


class CompiledRule:
    """A rule plus its compiled body plan; built once, reused every round."""

    __slots__ = ("rule", "steps", "head_vars")

    def __init__(self, rule):
        self.rule = rule
        self.steps = tuple(
            _CompiledLiteral(step.literal, step.kind) for step in plan_body(rule)
        )
        self.head_vars = tuple(sorted(rule.head.variables(), key=lambda v: v.name))


def compile_rule(rule):
    """Compile *rule* for the interpreted backend (cached)."""
    compiled = _compiled_cache.get(rule)
    if compiled is None:
        compiled = CompiledRule(rule)
        _compiled_cache[rule] = compiled
        m = _obs.ACTIVE
        if m is not None:
            m.inc("compiler.rules_compiled")
    return compiled


def clear_compile_cache():
    """Drop all cached compiled rules, both backends (tests and benchmarks)."""
    _compiled_cache.clear()
    clear_program_cache()


def _ground_atom(compiled_literal, bindings):
    """Instantiate the literal's atom under *bindings* (must be complete)."""
    terms = tuple(
        bindings[t] if isinstance(t, Variable) else t for t in compiled_literal.terms
    )
    return Atom(compiled_literal.predicate, terms)


def _check_holds(view, compiled_literal, bindings):
    atom = _ground_atom(compiled_literal, bindings)
    if compiled_literal.is_event:
        return view.event_holds(compiled_literal.op, atom)
    if compiled_literal.positive:
        return view.condition_holds(atom)
    return view.negation_holds(atom)


def _candidate_rows(view, compiled_literal, bindings):
    # Non-allocating path: the constant part of the binding pattern is
    # precompiled and shared; a fresh dict is built only when the current
    # bindings actually constrain one of the literal's variables.
    bound = compiled_literal.const_bound
    extended = None
    for position, term in compiled_literal.var_items:
        constant = bindings.get(term)
        if constant is not None:
            if extended is None:
                extended = dict(bound)
            extended[position] = constant.value
    if extended is not None:
        bound = extended
    if compiled_literal.is_event:
        return view.event_candidates(
            compiled_literal.op, compiled_literal.predicate, compiled_literal.arity, bound
        )
    return view.condition_candidates(
        compiled_literal.predicate, compiled_literal.arity, bound
    )


def _unify_row(compiled_literal, row, bindings):
    """Extend *bindings* to match *row*; returns the new dict or None.

    Handles repeated variables (``q(X, X)``) and re-checks columns that the
    view may have served unbound (views may return supersets).
    """
    for position, value in compiled_literal.const_items:
        if row[position] != value:
            return None
    extended = None
    for position, term in compiled_literal.var_items:
        value = row[position]
        current = (extended or bindings).get(term)
        if current is not None:
            if current.value != value:
                return None
            continue
        if extended is None:
            extended = dict(bindings)
        extended[term] = Constant(value)
    return extended if extended is not None else bindings


def _search(view, steps, index, bindings):
    if index == len(steps):
        yield bindings
        return
    step = steps[index]
    if step.kind == "check":
        if _check_holds(view, step, bindings):
            yield from _search(view, steps, index + 1, bindings)
        return
    for row in _candidate_rows(view, step, bindings):
        extended = _unify_row(step, row, bindings)
        if extended is not None:
            yield from _search(view, steps, index + 1, extended)


def match_rule(rule, view, freeze=True):
    """Yield every substitution making *rule*'s body valid in *view*.

    With ``freeze=True`` (the default) yields hashable
    :class:`~repro.lang.substitution.Substitution` objects covering all rule
    variables; with ``freeze=False`` yields raw ``{Variable: Constant}``
    dicts (cheaper; the dict must not be retained).

    A bodyless rule yields exactly one empty substitution.  Both backends
    yield identical substitution multisets up to order.
    """
    m = _obs.ACTIVE
    if m is not None:
        m.inc("match.rule_matches")
    if _backend == "compiled":
        yield from compile_program(rule, view).substitutions(view, freeze)
        return
    compiled = compile_rule(rule)
    for bindings in _search(view, compiled.steps, 0, {}):
        if freeze:
            yield Substitution(bindings)
        else:
            yield bindings


def collect_rule_firings(rule, owner, view, blocked, into, factory, touched=None):
    """Collect *rule*'s unblocked firings into ``into``, slots-first.

    The fixpoint's inner loop, shared by every evaluation strategy:
    ``factory(owner, substitution)`` builds the ``(instance, ground head)``
    pair for a grounding; new instances land in ``into`` (``{head Update:
    set of instances}``) and their heads in *touched* (when given).
    Returns the number of instances actually new in *into*.

    *owner* is the rule the instances belong to — the original rule when
    *rule* is a delta variant.  On the compiled backend the whole loop runs
    inside :meth:`CompiledProgram.collect_firings` with a per-owner
    instance memo keyed by slot tuples, so a re-enumerated grounding never
    rebuilds a Substitution, RuleGrounding, or Update; the interpreted
    backend is the straightforward reference loop.
    """
    m = _obs.ACTIVE
    if _backend == "compiled":
        if m is not None:
            m.inc("match.rule_matches")
        return compile_program(rule, view).collect_firings(
            view, owner, blocked, into, factory, touched
        )
    added = 0
    for substitution in match_rule(rule, view):
        instance, head = factory(owner, substitution)
        if instance in blocked:
            continue
        bucket = into.get(head)
        if bucket is None:
            into[head] = {instance}
        elif instance not in bucket:
            bucket.add(instance)
        else:
            continue
        added += 1
        if touched is not None:
            touched.add(head)
    return added


def match_body_once(rule, view):
    """True iff the rule body has at least one valid grounding in *view*."""
    m = _obs.ACTIVE
    if m is not None:
        m.inc("match.once_checks")
    if _backend == "compiled":
        return compile_program(rule, view).matches_once(view)
    for _ in match_rule(rule, view, freeze=False):
        return True
    return False


def fireable_heads(rule, view):
    """Yield the ground head updates of every valid grounding of *rule*.

    Deduplicates: distinct substitutions that ground the head identically
    yield one update.
    """
    m = _obs.ACTIVE
    if m is not None:
        m.inc("match.head_enumerations")
    if _backend == "compiled":
        yield from compile_program(rule, view).fireable_updates(view)
        return
    head = rule.head
    head_is_ground = head.atom.is_ground()
    seen = set()
    for bindings in match_rule(rule, view, freeze=False):
        update = head if head_is_ground else head.substitute(bindings)
        if update not in seen:
            seen.add(update)
            yield update
