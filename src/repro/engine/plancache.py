"""The cross-transaction plan cache: program facts keyed by program + stats.

Planning work in this engine is two-layered: per-rule join plans are
compiled once and memoized by the slot compiler
(:mod:`repro.engine.compiler`, keyed by rule value, so re-parsed but
identical rules hit), while the *program-level* static analysis
(:class:`repro.lint.facts.ProgramFacts` — conflict-freedom, stratifiability,
dead rules) was re-derived on every engine run that asked for it.  For an
:class:`~repro.active.activedb.ActiveDatabase` that re-runs the same rule
program on every commit, and for repeated CLI/benchmark invocations of one
program, that re-analysis is pure waste.

:class:`PlanCache` memoizes the analysis the way edgedb's compiled-query
cache memoizes query plans: the key is the run program's rule tuple (its
"fingerprint" — rules hash by value, so textually identical programs
collide correctly), and each entry is validated against

* a **stats signature** — per-predicate row counts bucketed by bit length
  (``count.bit_length()``), so plans survive small data drift but are
  re-derived when a relation changes magnitude.  Empty predicates are
  omitted entirely: ``Database.predicates()`` still lists a relation whose
  rows were all deleted, and the analysis cannot distinguish that from a
  predicate that never existed — the liveness sharpening only consumes
  empty-vs-non-empty, which "absent from the signature" encodes exactly
  as well as a ``(p, 0)`` pair, without spuriously invalidating on
  insert-then-delete-all histories;
* the :meth:`ProgramFacts.matches` staleness guard — the same check the
  engine applies to caller-supplied facts, so a cache entry can never be
  applied to a program it does not describe.

A stale entry counts as an **invalidation** and is re-derived in place; a
missing key is a **miss**; both are visible as ``plan_cache.*`` counters in
``repro profile``.  Entries are LRU-evicted beyond ``capacity``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..obs import metrics as _obs


class PlanCache:
    """An LRU cache of validated :class:`ProgramFacts` per run program.

    Thread-safe: lookups, LRU reordering, and evictions hold an internal
    lock, so concurrent readers of a shared cache (the parallel executor,
    the planned rule-server) cannot corrupt the ``OrderedDict``.  A miss
    re-derives the analysis outside the lock — two racing threads may both
    analyze, but the result is deterministic and last-write-wins is safe.
    """

    __slots__ = ("capacity", "_entries", "_lock")

    def __init__(self, capacity=128):
        self.capacity = capacity
        self._entries = OrderedDict()  # rule tuple -> (stats signature, facts)
        self._lock = threading.Lock()

    @staticmethod
    def stats_signature(database):
        """The database's shape, as ``(predicate, bit_length(count))`` pairs.

        Empty predicates are dropped: a relation whose rows were all
        deleted must sign identically to one that never existed, or
        identical re-runs would spuriously invalidate the cache.
        """
        return tuple(
            sorted(
                (predicate, count.bit_length())
                for predicate in database.predicates()
                for count in (database.count(predicate),)
                if count
            )
        )

    def facts_for(self, run_program, database):
        """Cached :class:`ProgramFacts` for *run_program*, re-derived on miss.

        *database* supplies both the stats signature and the liveness
        sharpening of a fresh analysis.
        """
        from ..lint.facts import ProgramFacts

        key = tuple(run_program)
        signature = self.stats_signature(database)
        entries = self._entries
        m = _obs.ACTIVE
        with self._lock:
            entry = entries.get(key)
            if entry is not None:
                cached_signature, facts = entry
                if cached_signature == signature and facts.matches(run_program):
                    entries.move_to_end(key)
                    if m is not None:
                        m.inc("plan_cache.hits")
                    return facts
                if m is not None:
                    m.inc("plan_cache.invalidations")
            elif m is not None:
                m.inc("plan_cache.misses")
        facts = ProgramFacts.analyze(run_program, database=database)
        with self._lock:
            entries[key] = (signature, facts)
            entries.move_to_end(key)
            while len(entries) > self.capacity:
                entries.popitem(last=False)
        return facts

    def __len__(self):
        return len(self._entries)

    def clear(self):
        with self._lock:
            self._entries.clear()

    def __repr__(self):
        return "PlanCache(%d entries, capacity=%d)" % (len(self), self.capacity)


#: Shared default instance for callers that want cross-run caching without
#: owning a cache object (the CLI and benchmark harness use this one).
DEFAULT_PLAN_CACHE = PlanCache()
