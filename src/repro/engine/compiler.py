"""Slot compiler: rule bodies lowered to flat register-machine programs.

The interpretive matcher in :mod:`repro.engine.match` walks the planner's
literal order with recursive generators, carrying ``{Variable: Constant}``
dicts that are copied at every extension.  That is the right reference
semantics, but every Γ round re-runs it for every rule, so the per-step
allocations dominate the fixpoint on deductive workloads.

This module compiles a rule once into a *slot program*:

* every rule variable gets a fixed integer **slot** in one flat register
  list — bindings become ``slots[i] = row[j]`` instead of dict copies;
* every planner ``bind`` step becomes a step descriptor holding its lookup
  signature (the sorted tuple of columns bound by constants or earlier
  slots), the constant-recheck columns, the slot-write columns, and the
  slot-equality columns (repeated variables, and columns the view may have
  served unbound — views are allowed to return supersets);
* every planner ``check`` step (negation, or a fully-bound binding
  literal) becomes a ground-row template instantiated from slots and
  tested through the view's ``*_holds_row`` methods — no
  :class:`~repro.lang.atoms.Atom` is constructed on the hot path;
* execution is an **iterative cursor stack** over the bind steps — no
  recursion, no generator nesting, raw value tuples end to end.

Substitutions are reconstructed from slots only when a consumer asks
(``match_rule(freeze=True)``); :func:`repro.engine.match.fireable_heads`
grounds heads straight from slots via a precompiled head template.

The compiler also collects the non-trivial lookup signatures its plan will
probe and registers them with the view (``register_lookup``), which lets
:class:`~repro.storage.relation.Relation` build one composite hash index
per signature and maintain it incrementally — the "lookup-signature
handshake" — instead of filtering single-column buckets per probe.

Compiled execution cannot change PARK semantics: it runs the *same* plan
(see :mod:`repro.engine.planner`) with the same validity checks against
the same views; only the mechanics of enumeration differ.  The
interpretive matcher remains the reference oracle, selected with
``REPRO_MATCHER=interpreted`` (see :mod:`repro.engine.match`), and the
two are property-tested bit-identical.
"""

from __future__ import annotations

from ..lang.atoms import Atom
from ..lang.literals import Condition, Event
from ..lang.substitution import Substitution
from ..lang.terms import Constant
from ..lang.updates import Update
from ..obs import metrics as _obs
from ..storage.catalog import INTERNER
from ..storage.relation import get_storage_backend
from .planner import plan_body

_const_intern = {}


def _intern_constant(value):
    """One shared :class:`Constant` per raw value.

    The compiled matcher re-materializes constants from raw storage values
    on every yield; the domain of values is small (the active domain of the
    database), so sharing the boxes removes the dominant allocation and
    keeps their cached hashes warm.
    """
    constant = _const_intern.get(value)
    m = _obs.ACTIVE
    if constant is None:
        constant = Constant(value)
        _const_intern[value] = constant
        if m is not None:
            m.inc("intern.const_misses")
    elif m is not None:
        m.inc("intern.const_hits")
    return constant


class _BindStep:
    """A ``bind`` plan step lowered to slot operations."""

    __slots__ = (
        "is_event",
        "op",
        "predicate",
        "arity",
        "key_cols",     # sorted tuple of bound column indexes (lookup signature)
        "key_fixed",    # tuple: constant values, None at slot-filled positions
        "key_slots",    # tuple of (index into key, source slot)
        "const_checks", # tuple of (row position, constant value) rechecks
        "writes",       # tuple of (row position, destination slot)
        "eq_checks",    # tuple of (row position, slot to compare against)
        "post_checks",  # _CheckSteps scheduled between this bind and the next
    )

    def __init__(self, literal, key_cols, key_fixed, key_slots, const_checks,
                 writes, eq_checks):
        self.is_event = isinstance(literal, Event)
        self.op = literal.op if self.is_event else None
        self.predicate = literal.atom.predicate
        self.arity = literal.atom.arity
        self.key_cols = key_cols
        self.key_fixed = key_fixed
        self.key_slots = key_slots
        self.const_checks = const_checks
        self.writes = writes
        self.eq_checks = eq_checks
        self.post_checks = []


class _CheckStep:
    """A ``check`` plan step: a ground-row template plus a holds-mode."""

    __slots__ = ("mode", "op", "predicate", "arity", "fixed", "slots")

    def __init__(self, literal, fixed, slots):
        if isinstance(literal, Event):
            self.mode = "event"
            self.op = literal.op
        else:
            self.mode = "pos" if literal.positive else "neg"
            self.op = None
        self.predicate = literal.atom.predicate
        self.arity = literal.atom.arity
        self.fixed = fixed  # complete row tuple when ``slots`` is empty
        self.slots = slots  # tuple of (row index, source slot)

    def holds(self, view, slots):
        if self.slots:
            row = list(self.fixed)
            for index, slot in self.slots:
                row[index] = slots[slot]
            row = tuple(row)
        else:
            row = self.fixed
        if self.mode == "pos":
            return view.condition_holds_row(self.predicate, self.arity, row)
        if self.mode == "neg":
            return view.negation_holds_row(self.predicate, self.arity, row)
        return view.event_holds_row(self.op, self.predicate, self.arity, row)


class CompiledProgram:
    """A rule's body compiled to a slot program, plus head/sub templates."""

    __slots__ = (
        "rule",
        "mode",           # storage layout compiled against: "row" | "columnar"
        "nslots",
        "prefix_checks",  # checks scheduled before the first bind step
        "bind_steps",
        "registrations",  # (predicate, arity, key_cols) lookup signatures
        "sub_items",      # (Variable, slot) sorted by name — Substitution order
        "head_ground",    # the ready Update when the head has no variables
        "head_op",
        "head_predicate",
        "head_value_fixed",  # native values, None at slot positions
        "head_term_fixed",   # Constant terms, None at slot positions
        "head_slots",        # tuple of (index, slot)
        "sub_cache",         # {slot value tuple: Substitution} memo
        "head_cache",        # {head value tuple: Update} memo
        "instance_cache",    # {owner rule: {slot value tuple: (instance, head)}}
        "_boxed",            # native slot value -> shared Constant
    )

    def __init__(self, rule, view=None, mode=None):
        self.rule = rule
        # The program speaks the storage-native dialect throughout: in
        # columnar mode every plan constant is encoded to its intern id at
        # compile time, slots hold ids, and Constants are reconstructed
        # through the intern table's shared boxes.  A program compiled for
        # one layout must never run against the other (compile_program
        # keys its cache by layout).
        if mode is None:
            mode = get_storage_backend()
        self.mode = mode
        if mode == "columnar":
            encode = INTERNER.intern
            self._boxed = INTERNER.constant_of
        else:
            encode = None
            self._boxed = _intern_constant
        slot_of = {}
        prefix_checks = []
        bind_steps = []
        registrations = []

        for step in plan_body(rule, view):
            literal = step.literal
            terms = literal.atom.terms
            if step.kind == "check":
                fixed = [None] * len(terms)
                check_slots = []
                for index, term in enumerate(terms):
                    if isinstance(term, Constant):
                        value = term.value
                        fixed[index] = encode(value) if encode else value
                    else:
                        check_slots.append((index, slot_of[term]))
                check = _CheckStep(literal, tuple(fixed), tuple(check_slots))
                if bind_steps:
                    bind_steps[-1].post_checks.append(check)
                else:
                    prefix_checks.append(check)
                continue

            key_pairs = []  # (position, const value or None, slot or None)
            const_checks = []
            writes = []
            eq_checks = []
            new_this_step = set()
            for index, term in enumerate(terms):
                if isinstance(term, Constant):
                    value = encode(term.value) if encode else term.value
                    key_pairs.append((index, value, None))
                    const_checks.append((index, value))
                    continue
                slot = slot_of.get(term)
                if slot is None:
                    slot = len(slot_of)
                    slot_of[term] = slot
                    new_this_step.add(term)
                    writes.append((index, slot))
                elif term in new_this_step:
                    # Repeated fresh variable (q(X, X)): first occurrence
                    # writes the slot, later ones compare against it.
                    eq_checks.append((index, slot))
                else:
                    # Bound by an earlier step: part of the lookup key, and
                    # re-checked because views may serve supersets.
                    key_pairs.append((index, None, slot))
                    eq_checks.append((index, slot))
            key_cols = tuple(pair[0] for pair in key_pairs)
            key_fixed = tuple(pair[1] for pair in key_pairs)
            key_slots = tuple(
                (key_index, pair[2])
                for key_index, pair in enumerate(key_pairs)
                if pair[2] is not None
            )
            if 2 <= len(key_cols) < len(terms):
                registrations.append(
                    (literal.atom.predicate, len(terms), key_cols)
                )
            bind_steps.append(
                _BindStep(
                    literal,
                    key_cols,
                    key_fixed,
                    key_slots,
                    tuple(const_checks),
                    tuple(writes),
                    tuple(eq_checks),
                )
            )

        for bind in bind_steps:
            bind.post_checks = tuple(bind.post_checks)
        self.nslots = len(slot_of)
        self.prefix_checks = tuple(prefix_checks)
        self.bind_steps = tuple(bind_steps)
        self.registrations = tuple(dict.fromkeys(registrations))
        self.sub_items = tuple(
            sorted(slot_of.items(), key=lambda item: item[0].name)
        )

        head = rule.head
        head_terms = head.atom.terms
        self.head_op = head.op
        self.head_predicate = head.atom.predicate
        value_fixed = [None] * len(head_terms)
        term_fixed = [None] * len(head_terms)
        head_slots = []
        for index, term in enumerate(head_terms):
            if isinstance(term, Constant):
                # Native dialect: the value feeds the head dedup key, which
                # mixes with slot values, so it must match the slot encoding.
                value_fixed[index] = encode(term.value) if encode else term.value
                term_fixed[index] = term
            else:
                head_slots.append((index, slot_of[term]))
        self.head_value_fixed = tuple(value_fixed)
        self.head_term_fixed = tuple(term_fixed)
        self.head_slots = tuple(head_slots)
        self.head_ground = head if not head_slots else None
        # Per-program memos: the fixpoint re-enumerates the same groundings
        # every round, so identical slot values should yield the *same*
        # Substitution / Update objects (their hashes are computed once and
        # downstream set operations get identity fast paths).  Bounded by
        # the number of distinct groundings; dropped with the program cache.
        # instance_cache additionally memoizes (RuleGrounding, ground head)
        # pairs, keyed per *owner* rule: delta variants strip rule names, so
        # structurally equal variants of different originals can share one
        # program while their groundings must keep distinct rule identity.
        self.sub_cache = {}
        self.head_cache = {}
        self.instance_cache = {}

    # -- the register machine -----------------------------------------------------

    def register_with(self, view):
        """Hand the plan's lookup signatures to the view (idempotent)."""
        for predicate, arity, columns in self.registrations:
            view.register_lookup(predicate, arity, columns)

    def solutions(self, view):
        """Yield the slot register list once per valid grounding.

        The **same list object** is yielded every time and overwritten in
        place by further search; callers must extract what they need before
        advancing (the public wrappers below do).
        """
        slots = [None] * self.nslots
        for check in self.prefix_checks:
            if not check.holds(view, slots):
                return
        binds = self.bind_steps
        depth_limit = len(binds) - 1
        if depth_limit < 0:
            yield slots
            return

        cursors = [None] * len(binds)
        depth = 0
        cursors[0] = self._probe(binds[0], view, slots)
        while depth >= 0:
            step = binds[depth]
            const_checks = step.const_checks
            writes = step.writes
            eq_checks = step.eq_checks
            post_checks = step.post_checks
            matched = False
            for row in cursors[depth]:
                if const_checks:
                    ok = True
                    for position, value in const_checks:
                        if row[position] != value:
                            ok = False
                            break
                    if not ok:
                        continue
                for position, slot in writes:
                    slots[slot] = row[position]
                if eq_checks:
                    ok = True
                    for position, slot in eq_checks:
                        if row[position] != slots[slot]:
                            ok = False
                            break
                    if not ok:
                        continue
                if post_checks:
                    ok = True
                    for check in post_checks:
                        if not check.holds(view, slots):
                            ok = False
                            break
                    if not ok:
                        continue
                matched = True
                break
            if not matched:
                depth -= 1
            elif depth == depth_limit:
                yield slots
            else:
                depth += 1
                cursors[depth] = self._probe(binds[depth], view, slots)

    @staticmethod
    def _probe(step, view, slots):
        key_fixed = step.key_fixed
        if step.key_slots:
            key = list(key_fixed)
            for key_index, slot in step.key_slots:
                key[key_index] = slots[slot]
            key = tuple(key)
        else:
            key = key_fixed
        if step.is_event:
            rows = view.event_candidates_key(
                step.op, step.predicate, step.arity, step.key_cols, key
            )
        else:
            rows = view.condition_candidates_key(
                step.predicate, step.arity, step.key_cols, key
            )
        return iter(rows)

    # -- consumer-facing wrappers ----------------------------------------------------

    def substitutions(self, view, freeze=True):
        """Yield groundings as :class:`Substitution` (or raw dicts)."""
        self.register_with(view)
        sub_items = self.sub_items
        boxed = self._boxed
        if freeze:
            cache = self.sub_cache
            m = _obs.ACTIVE
            for slots in self.solutions(view):
                key = tuple(slots)
                sub = cache.get(key)
                if sub is None:
                    sub = Substitution._from_sorted(
                        tuple(
                            (variable, boxed(slots[slot]))
                            for variable, slot in sub_items
                        )
                    )
                    cache[key] = sub
                    if m is not None:
                        m.inc("intern.sub_misses")
                elif m is not None:
                    m.inc("intern.sub_hits")
                yield sub
        else:
            for slots in self.solutions(view):
                yield {
                    variable: boxed(slots[slot])
                    for variable, slot in sub_items
                }

    def fireable_updates(self, view):
        """Yield deduplicated ground head updates of every valid grounding."""
        self.register_with(view)
        head_ground = self.head_ground
        if head_ground is not None:
            for _slots in self.solutions(view):
                yield head_ground
                return  # one body match suffices: every grounding yields it
            return
        seen = set()
        head_slots = self.head_slots
        value_fixed = self.head_value_fixed
        term_fixed = self.head_term_fixed
        cache = self.head_cache
        boxed = self._boxed
        m = _obs.ACTIVE
        for slots in self.solutions(view):
            values = list(value_fixed)
            for index, slot in head_slots:
                values[index] = slots[slot]
            values = tuple(values)
            if values in seen:
                continue
            seen.add(values)
            update = cache.get(values)
            if update is None:
                terms = list(term_fixed)
                for index, slot in head_slots:
                    terms[index] = boxed(slots[slot])
                update = Update(
                    self.head_op, Atom(self.head_predicate, tuple(terms))
                )
                cache[values] = update
                if m is not None:
                    m.inc("intern.head_misses")
            elif m is not None:
                m.inc("intern.head_hits")
            yield update

    def matches_once(self, view):
        """True iff the body has at least one valid grounding in *view*."""
        self.register_with(view)
        for _slots in self.solutions(view):
            return True
        return False

    def collect_firings(self, view, owner, blocked, into, factory, touched=None):
        """Enumerate groundings straight into a firings map, slots-first.

        The fixpoint's inner loop: for every valid grounding, memoize
        ``factory(owner, substitution) -> (instance, ground head)`` keyed
        by the raw slot tuple, skip blocked instances, and add new ones to
        ``into`` (``{head Update: set of instances}``).  Returns the number
        of instances actually new in *into*; *touched* (when given)
        collects the heads that gained one.  Because the memo key is the
        slot tuple, a re-enumerated grounding costs one dict hit — no
        Substitution, RuleGrounding, or head Update is rebuilt.

        *owner* is the rule the instances belong to — the original rule
        when executing a delta variant's program.
        """
        self.register_with(view)
        caches = self.instance_cache
        cache = caches.get(owner)
        if cache is None:
            cache = caches[owner] = {}
        cache_get = cache.get
        sub_cache = self.sub_cache
        sub_items = self.sub_items
        boxed = self._boxed
        check_blocked = bool(blocked)
        into_get = into.get
        added = 0
        for slots in self.solutions(view):
            key = tuple(slots)
            entry = cache_get(key)
            if entry is None:
                sub = sub_cache.get(key)
                if sub is None:
                    sub = Substitution._from_sorted(
                        tuple(
                            (variable, boxed(slots[slot]))
                            for variable, slot in sub_items
                        )
                    )
                    sub_cache[key] = sub
                entry = factory(owner, sub)
                cache[key] = entry
            instance, head = entry
            if check_blocked and instance in blocked:
                continue
            bucket = into_get(head)
            if bucket is None:
                into[head] = {instance}
            else:
                # Single-hash insert: compare sizes instead of a separate
                # membership probe (duplicates only arise across programs
                # that share an owner).
                before = len(bucket)
                bucket.add(instance)
                if len(bucket) == before:
                    continue
            added += 1
            if touched is not None:
                touched.add(head)
        return added


#: One cache per storage layout: a program bakes the layout's constant
#: encoding into its steps, so a layout switch must recompile, and
#: switching back must find the original programs again.
_program_caches = {"row": {}, "columnar": {}}


def compile_program(rule, view=None):
    """Compile *rule* to a :class:`CompiledProgram` (cached per rule and layout).

    The first compile may consult *view* statistics for the plan's
    tie-breaks; the cached program is reused for every later view, so the
    plan is a deterministic function of the rule and the statistics it was
    first compiled against (performance-only: any plan enumerates the same
    grounding set).
    """
    mode = get_storage_backend()
    cache = _program_caches[mode]
    program = cache.get(rule)
    m = _obs.ACTIVE
    if program is None:
        program = CompiledProgram(rule, view, mode)
        cache[rule] = program
        if m is not None:
            m.inc("compiler.programs_compiled")
    elif m is not None:
        m.inc("compiler.cache_hits")
    return program


def clear_program_cache():
    """Drop all cached compiled programs and interned constants."""
    for cache in _program_caches.values():
        cache.clear()
    _const_intern.clear()
