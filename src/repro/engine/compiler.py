"""Slot compiler: rule bodies lowered to flat register-machine programs.

The interpretive matcher in :mod:`repro.engine.match` walks the planner's
literal order with recursive generators, carrying ``{Variable: Constant}``
dicts that are copied at every extension.  That is the right reference
semantics, but every Γ round re-runs it for every rule, so the per-step
allocations dominate the fixpoint on deductive workloads.

This module compiles a rule once into a *slot program*:

* every rule variable gets a fixed integer **slot** in one flat register
  list — bindings become ``slots[i] = row[j]`` instead of dict copies;
* every planner ``bind`` step becomes a step descriptor holding its lookup
  signature (the sorted tuple of columns bound by constants or earlier
  slots), the constant-recheck columns, the slot-write columns, and the
  slot-equality columns (repeated variables, and columns the view may have
  served unbound — views are allowed to return supersets);
* every planner ``check`` step (negation, or a fully-bound binding
  literal) becomes a ground-row template instantiated from slots and
  tested through the view's ``*_holds_row`` methods — no
  :class:`~repro.lang.atoms.Atom` is constructed on the hot path;
* execution is an **iterative cursor stack** over the bind steps — no
  recursion, no generator nesting, raw value tuples end to end.

Substitutions are reconstructed from slots only when a consumer asks
(``match_rule(freeze=True)``); :func:`repro.engine.match.fireable_heads`
grounds heads straight from slots via a precompiled head template.

The compiler also collects the non-trivial lookup signatures its plan will
probe and registers them with the view (``register_lookup``), which lets
:class:`~repro.storage.relation.Relation` build one composite hash index
per signature and maintain it incrementally — the "lookup-signature
handshake" — instead of filtering single-column buckets per probe.

Compiled execution cannot change PARK semantics: it runs the *same* plan
(see :mod:`repro.engine.planner`) with the same validity checks against
the same views; only the mechanics of enumeration differ.  The
interpretive matcher remains the reference oracle, selected with
``REPRO_MATCHER=interpreted`` (see :mod:`repro.engine.match`), and the
two are property-tested bit-identical.
"""

from __future__ import annotations

from ..lang.atoms import Atom
from ..lang.literals import Condition, Event
from ..lang.substitution import Substitution
from ..lang.terms import Constant
from ..lang.updates import Update
from ..obs import metrics as _obs
from .planner import plan_body

_const_intern = {}


def _intern_constant(value):
    """One shared :class:`Constant` per raw value.

    The compiled matcher re-materializes constants from raw storage values
    on every yield; the domain of values is small (the active domain of the
    database), so sharing the boxes removes the dominant allocation and
    keeps their cached hashes warm.
    """
    constant = _const_intern.get(value)
    m = _obs.ACTIVE
    if constant is None:
        constant = Constant(value)
        _const_intern[value] = constant
        if m is not None:
            m.inc("intern.const_misses")
    elif m is not None:
        m.inc("intern.const_hits")
    return constant


class _BindStep:
    """A ``bind`` plan step lowered to slot operations."""

    __slots__ = (
        "is_event",
        "op",
        "predicate",
        "arity",
        "key_cols",     # sorted tuple of bound column indexes (lookup signature)
        "key_fixed",    # tuple: constant values, None at slot-filled positions
        "key_slots",    # tuple of (index into key, source slot)
        "const_checks", # tuple of (row position, constant value) rechecks
        "writes",       # tuple of (row position, destination slot)
        "eq_checks",    # tuple of (row position, slot to compare against)
        "post_checks",  # _CheckSteps scheduled between this bind and the next
    )

    def __init__(self, literal, key_cols, key_fixed, key_slots, const_checks,
                 writes, eq_checks):
        self.is_event = isinstance(literal, Event)
        self.op = literal.op if self.is_event else None
        self.predicate = literal.atom.predicate
        self.arity = literal.atom.arity
        self.key_cols = key_cols
        self.key_fixed = key_fixed
        self.key_slots = key_slots
        self.const_checks = const_checks
        self.writes = writes
        self.eq_checks = eq_checks
        self.post_checks = []


class _CheckStep:
    """A ``check`` plan step: a ground-row template plus a holds-mode."""

    __slots__ = ("mode", "op", "predicate", "arity", "fixed", "slots")

    def __init__(self, literal, fixed, slots):
        if isinstance(literal, Event):
            self.mode = "event"
            self.op = literal.op
        else:
            self.mode = "pos" if literal.positive else "neg"
            self.op = None
        self.predicate = literal.atom.predicate
        self.arity = literal.atom.arity
        self.fixed = fixed  # complete row tuple when ``slots`` is empty
        self.slots = slots  # tuple of (row index, source slot)

    def holds(self, view, slots):
        if self.slots:
            row = list(self.fixed)
            for index, slot in self.slots:
                row[index] = slots[slot]
            row = tuple(row)
        else:
            row = self.fixed
        if self.mode == "pos":
            return view.condition_holds_row(self.predicate, self.arity, row)
        if self.mode == "neg":
            return view.negation_holds_row(self.predicate, self.arity, row)
        return view.event_holds_row(self.op, self.predicate, self.arity, row)


class CompiledProgram:
    """A rule's body compiled to a slot program, plus head/sub templates."""

    __slots__ = (
        "rule",
        "nslots",
        "prefix_checks",  # checks scheduled before the first bind step
        "bind_steps",
        "registrations",  # (predicate, arity, key_cols) lookup signatures
        "sub_items",      # (Variable, slot) sorted by name — Substitution order
        "head_ground",    # the ready Update when the head has no variables
        "head_op",
        "head_predicate",
        "head_value_fixed",  # raw values, None at slot positions
        "head_term_fixed",   # Constant terms, None at slot positions
        "head_slots",        # tuple of (index, slot)
        "sub_cache",         # {slot value tuple: Substitution} memo
        "head_cache",        # {head value tuple: Update} memo
    )

    def __init__(self, rule, view=None):
        self.rule = rule
        slot_of = {}
        prefix_checks = []
        bind_steps = []
        registrations = []

        for step in plan_body(rule, view):
            literal = step.literal
            terms = literal.atom.terms
            if step.kind == "check":
                fixed = [None] * len(terms)
                check_slots = []
                for index, term in enumerate(terms):
                    if isinstance(term, Constant):
                        fixed[index] = term.value
                    else:
                        check_slots.append((index, slot_of[term]))
                check = _CheckStep(literal, tuple(fixed), tuple(check_slots))
                if bind_steps:
                    bind_steps[-1].post_checks.append(check)
                else:
                    prefix_checks.append(check)
                continue

            key_pairs = []  # (position, const value or None, slot or None)
            const_checks = []
            writes = []
            eq_checks = []
            new_this_step = set()
            for index, term in enumerate(terms):
                if isinstance(term, Constant):
                    key_pairs.append((index, term.value, None))
                    const_checks.append((index, term.value))
                    continue
                slot = slot_of.get(term)
                if slot is None:
                    slot = len(slot_of)
                    slot_of[term] = slot
                    new_this_step.add(term)
                    writes.append((index, slot))
                elif term in new_this_step:
                    # Repeated fresh variable (q(X, X)): first occurrence
                    # writes the slot, later ones compare against it.
                    eq_checks.append((index, slot))
                else:
                    # Bound by an earlier step: part of the lookup key, and
                    # re-checked because views may serve supersets.
                    key_pairs.append((index, None, slot))
                    eq_checks.append((index, slot))
            key_cols = tuple(pair[0] for pair in key_pairs)
            key_fixed = tuple(pair[1] for pair in key_pairs)
            key_slots = tuple(
                (key_index, pair[2])
                for key_index, pair in enumerate(key_pairs)
                if pair[2] is not None
            )
            if 2 <= len(key_cols) < len(terms):
                registrations.append(
                    (literal.atom.predicate, len(terms), key_cols)
                )
            bind_steps.append(
                _BindStep(
                    literal,
                    key_cols,
                    key_fixed,
                    key_slots,
                    tuple(const_checks),
                    tuple(writes),
                    tuple(eq_checks),
                )
            )

        for bind in bind_steps:
            bind.post_checks = tuple(bind.post_checks)
        self.nslots = len(slot_of)
        self.prefix_checks = tuple(prefix_checks)
        self.bind_steps = tuple(bind_steps)
        self.registrations = tuple(dict.fromkeys(registrations))
        self.sub_items = tuple(
            sorted(slot_of.items(), key=lambda item: item[0].name)
        )

        head = rule.head
        head_terms = head.atom.terms
        self.head_op = head.op
        self.head_predicate = head.atom.predicate
        value_fixed = [None] * len(head_terms)
        term_fixed = [None] * len(head_terms)
        head_slots = []
        for index, term in enumerate(head_terms):
            if isinstance(term, Constant):
                value_fixed[index] = term.value
                term_fixed[index] = term
            else:
                head_slots.append((index, slot_of[term]))
        self.head_value_fixed = tuple(value_fixed)
        self.head_term_fixed = tuple(term_fixed)
        self.head_slots = tuple(head_slots)
        self.head_ground = head if not head_slots else None
        # Per-program memos: the fixpoint re-enumerates the same groundings
        # every round, so identical slot values should yield the *same*
        # Substitution / Update objects (their hashes are computed once and
        # downstream set operations get identity fast paths).  Bounded by
        # the number of distinct groundings; dropped with the program cache.
        self.sub_cache = {}
        self.head_cache = {}

    # -- the register machine -----------------------------------------------------

    def register_with(self, view):
        """Hand the plan's lookup signatures to the view (idempotent)."""
        for predicate, arity, columns in self.registrations:
            view.register_lookup(predicate, arity, columns)

    def solutions(self, view):
        """Yield the slot register list once per valid grounding.

        The **same list object** is yielded every time and overwritten in
        place by further search; callers must extract what they need before
        advancing (the public wrappers below do).
        """
        slots = [None] * self.nslots
        for check in self.prefix_checks:
            if not check.holds(view, slots):
                return
        binds = self.bind_steps
        depth_limit = len(binds) - 1
        if depth_limit < 0:
            yield slots
            return

        cursors = [None] * len(binds)
        depth = 0
        cursors[0] = self._probe(binds[0], view, slots)
        while depth >= 0:
            step = binds[depth]
            const_checks = step.const_checks
            writes = step.writes
            eq_checks = step.eq_checks
            post_checks = step.post_checks
            matched = False
            for row in cursors[depth]:
                if const_checks:
                    ok = True
                    for position, value in const_checks:
                        if row[position] != value:
                            ok = False
                            break
                    if not ok:
                        continue
                for position, slot in writes:
                    slots[slot] = row[position]
                if eq_checks:
                    ok = True
                    for position, slot in eq_checks:
                        if row[position] != slots[slot]:
                            ok = False
                            break
                    if not ok:
                        continue
                if post_checks:
                    ok = True
                    for check in post_checks:
                        if not check.holds(view, slots):
                            ok = False
                            break
                    if not ok:
                        continue
                matched = True
                break
            if not matched:
                depth -= 1
            elif depth == depth_limit:
                yield slots
            else:
                depth += 1
                cursors[depth] = self._probe(binds[depth], view, slots)

    @staticmethod
    def _probe(step, view, slots):
        key_fixed = step.key_fixed
        if step.key_slots:
            key = list(key_fixed)
            for key_index, slot in step.key_slots:
                key[key_index] = slots[slot]
            key = tuple(key)
        else:
            key = key_fixed
        if step.is_event:
            rows = view.event_candidates_key(
                step.op, step.predicate, step.arity, step.key_cols, key
            )
        else:
            rows = view.condition_candidates_key(
                step.predicate, step.arity, step.key_cols, key
            )
        return iter(rows)

    # -- consumer-facing wrappers ----------------------------------------------------

    def substitutions(self, view, freeze=True):
        """Yield groundings as :class:`Substitution` (or raw dicts)."""
        self.register_with(view)
        sub_items = self.sub_items
        if freeze:
            cache = self.sub_cache
            m = _obs.ACTIVE
            for slots in self.solutions(view):
                key = tuple(slots)
                sub = cache.get(key)
                if sub is None:
                    sub = Substitution._from_sorted(
                        tuple(
                            (variable, _intern_constant(slots[slot]))
                            for variable, slot in sub_items
                        )
                    )
                    cache[key] = sub
                    if m is not None:
                        m.inc("intern.sub_misses")
                elif m is not None:
                    m.inc("intern.sub_hits")
                yield sub
        else:
            for slots in self.solutions(view):
                yield {
                    variable: _intern_constant(slots[slot])
                    for variable, slot in sub_items
                }

    def fireable_updates(self, view):
        """Yield deduplicated ground head updates of every valid grounding."""
        self.register_with(view)
        head_ground = self.head_ground
        if head_ground is not None:
            for _slots in self.solutions(view):
                yield head_ground
                return  # one body match suffices: every grounding yields it
            return
        seen = set()
        head_slots = self.head_slots
        value_fixed = self.head_value_fixed
        term_fixed = self.head_term_fixed
        cache = self.head_cache
        m = _obs.ACTIVE
        for slots in self.solutions(view):
            values = list(value_fixed)
            for index, slot in head_slots:
                values[index] = slots[slot]
            values = tuple(values)
            if values in seen:
                continue
            seen.add(values)
            update = cache.get(values)
            if update is None:
                terms = list(term_fixed)
                for index, slot in head_slots:
                    terms[index] = _intern_constant(slots[slot])
                update = Update(
                    self.head_op, Atom(self.head_predicate, tuple(terms))
                )
                cache[values] = update
                if m is not None:
                    m.inc("intern.head_misses")
            elif m is not None:
                m.inc("intern.head_hits")
            yield update

    def matches_once(self, view):
        """True iff the body has at least one valid grounding in *view*."""
        self.register_with(view)
        for _slots in self.solutions(view):
            return True
        return False


_program_cache = {}


def compile_program(rule, view=None):
    """Compile *rule* to a :class:`CompiledProgram` (cached per rule).

    The first compile may consult *view* statistics for the plan's
    tie-breaks; the cached program is reused for every later view, so the
    plan is a deterministic function of the rule and the statistics it was
    first compiled against (performance-only: any plan enumerates the same
    grounding set).
    """
    program = _program_cache.get(rule)
    m = _obs.ACTIVE
    if program is None:
        program = CompiledProgram(rule, view)
        _program_cache[rule] = program
        if m is not None:
            m.inc("compiler.programs_compiled")
    elif m is not None:
        m.inc("compiler.cache_hits")
    return program


def clear_program_cache():
    """Drop all cached compiled programs and interned constants."""
    _program_cache.clear()
    _const_intern.clear()
