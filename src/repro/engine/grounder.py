"""Grounding utilities: Herbrand universe/base and brute-force grounding.

The matcher (:mod:`repro.engine.match`) enumerates *valid* groundings
directly from indexes; this module provides the textbook constructions —
the Herbrand universe (all constants), the Herbrand base (all ground
atoms), and exhaustive enumeration of *all* ground instances of a rule —
used by the semantics' definitions, by property-based tests (which compare
the matcher against brute force), and by small worked examples.

Exhaustive grounding is exponential in the number of rule variables; it is
a specification tool, not the evaluation path.
"""

from __future__ import annotations

import itertools

from ..lang.atoms import Atom
from ..lang.substitution import Substitution
from ..lang.terms import Constant


def herbrand_universe(program, database):
    """All constants occurring in *program* or *database*, sorted.

    This is the universe over which rule variables range; it is finite
    because the language has no function symbols.
    """
    constants = set(program.constants())
    constants |= set(database.constants() if hasattr(database, "constants") else ())
    if not hasattr(database, "constants"):
        for atom in database:
            constants |= atom.constants()
    return sorted(constants, key=lambda c: (isinstance(c.value, int), str(c.value)))


def herbrand_base(program, database):
    """All ground atoms over the program's predicates and the universe.

    The extended Herbrand base ``H*`` of the paper is this set together
    with its ``+``/``-`` marked variants; see
    :meth:`repro.core.interpretation.IInterpretation` for how marks are
    represented.
    """
    universe = herbrand_universe(program, database)
    signatures = set(program.predicates())
    for atom in database.atoms() if hasattr(database, "atoms") else database:
        signatures.add(atom.signature())
    base = set()
    for predicate, arity in sorted(signatures):
        if arity == 0:
            base.add(Atom(predicate))
            continue
        for values in itertools.product(universe, repeat=arity):
            base.add(Atom(predicate, tuple(values)))
    return base


def ground_substitutions(rule, universe):
    """Yield every ground substitution for *rule* over *universe*.

    Substitutions cover exactly the rule's variables.  A rule with no
    variables yields the single empty substitution.
    """
    variables = sorted(rule.variables(), key=lambda v: v.name)
    if not variables:
        yield Substitution()
        return
    constants = [
        c if isinstance(c, Constant) else Constant(c) for c in universe
    ]
    for values in itertools.product(constants, repeat=len(variables)):
        yield Substitution(dict(zip(variables, values)))


def ground_instances(rule, universe):
    """Yield ``(substitution, ground_rule)`` for every grounding of *rule*."""
    for substitution in ground_substitutions(rule, universe):
        yield substitution, rule.substitute(substitution)


def ground_program(program, database):
    """Fully ground *program* over the joint Herbrand universe.

    Returns a list of ``(rule, substitution, ground_rule)`` triples.  Small
    inputs only — this is the brute-force reference used by tests.
    """
    universe = herbrand_universe(program, database)
    result = []
    for rule in program:
        for substitution, ground_rule in ground_instances(rule, universe):
            result.append((rule, substitution, ground_rule))
    return result
