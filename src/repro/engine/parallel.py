"""Parallel ``Γ`` collection over hash-sharded partitions.

PARK's ``Γ`` operator matches every rule against one *fixed*
i-interpretation and only then incorporates the collected firings, so the
collect phase is embarrassingly parallel: the set of valid substitutions
is a pure function of ``(rule, I)``.  This module fans that work out
across persistent OS processes:

* each worker holds a full **replica** of the epoch's interpretation
  (``I∅`` shipped once per run, ``I+``/``I-`` marks streamed per round —
  both only grow within an epoch, so streaming the difference is exact);
* a worker matches each requested rule against the replica through a
  :class:`_ShardView` that restricts the rule's *outer* candidate scan to
  the rows owned by its shard (``stable_row_shard``, process-stable), so
  the workers partition the match space without partitioning the data —
  inner probes still see every row (a broadcast join);
* workers return **binding payloads** — tuples of raw constant values in
  sorted-variable order — not engine objects; the parent reconstructs
  :class:`~repro.core.groundings.RuleGrounding` instances itself (memoized),
  so no ``lang`` object is ever pickled.

**Determinism.**  Every firing's outer-loop row lives in exactly one
shard, so the shard-disjoint union over workers recovers exactly the
sequential match set (rules whose plans open with a ground check — or
bodyless rules — are matched identically by every worker and deduplicated
by the payload set).  The parent merges per-rule payload unions in sorted
order and the downstream consumers (``GammaResult``, conflicts, traces)
are order-insensitive, so a parallel run is fingerprint-identical to the
sequential engine — property-tested in
``tests/property/test_parallel.py`` and gated in CI by the independence
sanitizer running *on top of* parallel execution.

Workers are spawn-safe: the process-global intern table is re-seeded from
the parent's id→value prefix (:meth:`InternTable.load_prefix`) and later
values are interned in an identical deterministic order on every worker
(the base database and mark stream are sorted before shipping), which is
what makes native columnar id rows — and therefore shard assignment —
agree across workers.

Enable with ``REPRO_PARALLEL=N`` / ``--parallel N`` (N ≥ 2 workers); the
sequential path remains the oracle and is used whenever the executor
declines (tiny databases below ``REPRO_PARALLEL_THRESHOLD``, unknown
rules, or N < 2).
"""

from __future__ import annotations

import multiprocessing
import os
from time import perf_counter

from ..errors import EngineError
from ..lang.atoms import Atom
from ..lang.literals import Condition, Event
from ..lang.rules import Rule
from ..lang.substitution import Substitution
from ..lang.terms import Constant, Variable
from ..lang.updates import Update, UpdateOp
from ..obs import metrics as _obs
from .planner import shard_plan


#: Databases smaller than this keep the sequential path: process fan-out
#: costs more than it saves on toy inputs.  Deliberately 0 by default so
#: the test suites exercise the parallel path everywhere; benchmarks and
#: production callers can raise it.
DEFAULT_THRESHOLD = 0


# -- wire codecs ---------------------------------------------------------------
#
# Rules, atoms, and marks cross the pipe as plain tuples of raw values —
# never as lang objects.  Rule/Atom/Substitution cache their hashes in
# instance state; pickling those caches into a spawn-started worker would
# ship hashes computed under the parent's string seed.  Raw values are
# also simply smaller.


def _encode_term(term):
    if isinstance(term, Variable):
        return ("v", term.name)
    return ("c", term.value)


def _decode_term(payload):
    kind, value = payload
    return Variable(value) if kind == "v" else Constant(value)


def _encode_atom(atom):
    return (atom.predicate, tuple(_encode_term(term) for term in atom.terms))


def _decode_atom(payload):
    predicate, terms = payload
    return Atom(predicate, tuple(_decode_term(term) for term in terms))


def _encode_literal(literal):
    if isinstance(literal, Event):
        return ("e", literal.op is UpdateOp.INSERT, _encode_atom(literal.atom))
    return ("k", literal.positive, _encode_atom(literal.atom))


def _decode_literal(payload):
    kind, flag, atom_payload = payload
    atom = _decode_atom(atom_payload)
    if kind == "e":
        op = UpdateOp.INSERT if flag else UpdateOp.DELETE
        return Event(Update(op, atom))
    return Condition(atom, positive=flag)


def _encode_rule(rule):
    head = rule.head
    return (
        rule.name,
        rule.priority,
        (head.is_insert, _encode_atom(head.atom)),
        tuple(_encode_literal(literal) for literal in rule.body),
    )


def _decode_rule(payload):
    name, priority, (is_insert, head_atom), body = payload
    op = UpdateOp.INSERT if is_insert else UpdateOp.DELETE
    head = Update(op, _decode_atom(head_atom))
    # The rule was validated when the parent built it; skip re-validation.
    return Rule.__new_unchecked__(
        head, tuple(_decode_literal(literal) for literal in body), name, priority
    )


def _encode_database(database):
    """``[(predicate, sorted raw rows)]`` in deterministic order.

    Sorted (predicates alphabetically, rows by repr) so every worker
    interns the constants in the same order — the cross-process id
    agreement that sharding native columnar rows relies on.
    """
    payload = []
    for predicate in database.predicates():
        rows = [
            tuple(term.value for term in atom.terms)
            for atom in database.atoms(predicate)
        ]
        rows.sort(key=repr)
        payload.append((predicate, rows))
    return payload


def _decode_database(payload):
    from ..storage.database import Database

    database = Database()
    for predicate, rows in payload:
        for row in rows:
            database.add(Atom(predicate, tuple(Constant(v) for v in row)))
    return database


def _encode_mark(update):
    return (
        update.is_insert,
        update.atom.predicate,
        tuple(term.value for term in update.atom.terms),
    )


def _decode_mark(payload):
    is_insert, predicate, values = payload
    op = UpdateOp.INSERT if is_insert else UpdateOp.DELETE
    return Update(op, Atom(predicate, tuple(Constant(v) for v in values)))


def _sorted_binding_variables(rule):
    """The rule's binding variables, sorted by name.

    Exactly the variables a matcher substitution covers (check-only
    literals never bind — rule safety bounds their variables by earlier
    binding literals), in exactly the canonical Substitution order — so
    ``zip(svars, payload)`` is the sorted binding tuple
    :meth:`Substitution._from_sorted` expects.
    """
    seen = set()
    for literal in rule.body:
        if literal.binds:
            seen |= literal.variables()
    return tuple(sorted(seen, key=lambda variable: variable.name))


# -- the shard view ------------------------------------------------------------


class _ShardView:
    """A FactsView proxy restricting a rule's outer scan to one shard.

    Armed before each rule's match, the *first* candidates call filters
    its rows by :func:`stable_row_shard` ownership and disarms; every
    later call — inner joins, hold checks, negation probes — passes
    through untouched.  Both backends drive exactly one outer candidate
    stream per match (the compiled program probes ``binds[0]`` once; the
    interpreted search's step 0 is the first candidates call), so this
    partitions the *match space* by outer row while each worker keeps the
    full relation contents for inner probes.

    Rows are filtered in whatever dialect the call serves (raw values or
    native ids); :func:`stable_row_shard` is process-stable on both, and
    all workers run the same backend, so the shards tile the outer scan
    identically everywhere.
    """

    __slots__ = ("inner", "nshards", "shard", "armed")

    def __init__(self, inner, nshards, shard):
        self.inner = inner
        self.nshards = nshards
        self.shard = shard
        self.armed = False

    def arm(self):
        self.armed = True

    def disarm(self):
        self.armed = False

    def _filter(self, rows):
        from ..storage.relation import stable_row_shard

        nshards = self.nshards
        shard = self.shard
        return [row for row in rows if stable_row_shard(row, nshards) == shard]

    def condition_candidates(self, predicate, arity, bound):
        rows = self.inner.condition_candidates(predicate, arity, bound)
        if self.armed:
            self.armed = False
            return self._filter(rows)
        return rows

    def event_candidates(self, op, predicate, arity, bound):
        rows = self.inner.event_candidates(op, predicate, arity, bound)
        if self.armed:
            self.armed = False
            return self._filter(rows)
        return rows

    def condition_candidates_key(self, predicate, arity, columns, key):
        rows = self.inner.condition_candidates_key(predicate, arity, columns, key)
        if self.armed:
            self.armed = False
            return self._filter(rows)
        return rows

    def event_candidates_key(self, op, predicate, arity, columns, key):
        rows = self.inner.event_candidates_key(op, predicate, arity, columns, key)
        if self.armed:
            self.armed = False
            return self._filter(rows)
        return rows

    # Everything non-candidate passes straight through.

    def condition_holds(self, atom):
        return self.inner.condition_holds(atom)

    def negation_holds(self, atom):
        return self.inner.negation_holds(atom)

    def event_holds(self, op, atom):
        return self.inner.event_holds(op, atom)

    def condition_holds_row(self, predicate, arity, row):
        return self.inner.condition_holds_row(predicate, arity, row)

    def negation_holds_row(self, predicate, arity, row):
        return self.inner.negation_holds_row(predicate, arity, row)

    def event_holds_row(self, op, predicate, arity, row):
        return self.inner.event_holds_row(op, predicate, arity, row)

    def register_lookup(self, predicate, arity, columns):
        self.inner.register_lookup(predicate, arity, columns)

    def estimate(self, predicate):
        return self.inner.estimate(predicate)


# -- the worker ----------------------------------------------------------------


class _WorkerState:
    """One worker's replica: rules, base database, per-epoch interpretation.

    Responses are shipped as **payload deltas** so each firing crosses the
    pipe at most once per epoch: ``("f", full)`` on a rule's first collect,
    ``("d", added, removed)`` afterwards, or ``None`` when nothing changed.
    Monotone rules (purely positive condition bodies) additionally keep a
    standing payload set per epoch and only match their delta variants
    against this shard's slice of the round's new ``+`` marks — exact for
    ``Γ`` because the interpretation only grows within an epoch, so a
    monotone rule's firing set grows too and every new firing contains at
    least one new atom.
    """

    def __init__(self, payload):
        from ..core.evaluation import _delta_variant, _is_monotone
        from ..storage.catalog import INTERNER
        from ..storage.relation import set_storage_backend
        from .match import set_matcher_backend

        # Never record into an inherited registry (fork copies the parent's
        # active Metrics): either install a fresh worker-local registry —
        # whose counter deltas ship back with each collect response — or
        # run silent when the parent run is unmetered.
        self.metrics = _obs.Metrics() if payload["metered"] else None
        self._counters_shipped = {}
        _obs.set_active(self.metrics)
        set_storage_backend(payload["storage"])
        set_matcher_backend(payload["matcher"])
        INTERNER.load_prefix(payload["intern"])
        self.rules = tuple(_decode_rule(rule) for rule in payload["rules"])
        self.svars = tuple(_sorted_binding_variables(rule) for rule in self.rules)
        # One delta variant per body literal of each monotone rule; the
        # variant binds the same variables, so the original svars order
        # extracts its payloads too.  Non-monotone rules get None and take
        # the full-rematch path every round.
        self.variants = tuple(
            tuple(
                _delta_variant(rule, position, literal)
                for position, literal in enumerate(rule.body)
            )
            if _is_monotone(rule)
            else None
            for rule in self.rules
        )
        self.base = _decode_database(payload["db"])
        self.nshards = payload["nshards"]
        self.shard = payload["shard"]
        self.replica = None
        self._last = {}  # rule index -> last responded payload set
        self._synced = {}  # rule index -> _insert_log position reflected
        self._insert_log = []  # this shard's share of the epoch's + marks

    def begin_epoch(self):
        from ..core.interpretation import IInterpretation

        self.replica = IInterpretation.from_database(self.base)
        self._last = {}
        self._synced = {}
        self._insert_log = []

    def collect(self, marks, rule_indices):
        from ..core.evaluation import _DeltaView, _shadow_atom
        from ..core.validity import InterpretationView
        from ..storage.database import Database
        from ..storage.relation import stable_row_shard
        from .match import match_rule

        replica = self.replica
        nshards = self.nshards
        shard = self.shard
        for mark in marks:
            update = _decode_mark(mark)
            replica.add_update(update)
            # Delta matching shards the *delta* instead of the outer scan:
            # each new atom is owned by exactly one worker, whose variant
            # match finds every firing that atom introduces.  mark[2] is
            # the raw value row — the same dialect on every worker.
            if update.is_insert and stable_row_shard(mark[2], nshards) == shard:
                self._insert_log.append(_shadow_atom(update.atom))
        view = _ShardView(InterpretationView(replica), nshards, shard)
        response = {}
        delta_views = {}  # log position -> _DeltaView over the unsharded view
        log = self._insert_log
        for index in rule_indices:
            rule = self.rules[index]
            svars = self.svars[index]
            variants = self.variants[index]
            synced = self._synced.get(index)
            if variants is not None and synced is not None:
                # Monotone rule with standing state: only the new marks
                # since this rule's last sync can introduce firings.
                standing = self._last[index]
                added = set()
                if synced < len(log):
                    delta_view = delta_views.get(synced)
                    if delta_view is None:
                        delta_db = Database()
                        for shadow in log[synced:]:
                            delta_db.add(shadow)
                        # Unsharded inner view: the delta rows themselves
                        # are this shard's slice, which partitions the
                        # new-match space across workers already.
                        delta_view = _DeltaView(view.inner, delta_db)
                        delta_views[synced] = delta_view
                    for variant in variants:
                        for bindings in match_rule(
                            variant, delta_view, freeze=False
                        ):
                            payload = tuple(
                                bindings[v].value for v in svars
                            )
                            if payload not in standing:
                                standing.add(payload)
                                added.add(payload)
                self._synced[index] = len(log)
                response[index] = (
                    ("d", sorted(added, key=repr), ()) if added else None
                )
                continue
            payloads = set()
            view.arm()
            for bindings in match_rule(rule, view, freeze=False):
                payloads.add(tuple(bindings[v].value for v in svars))
            view.disarm()  # zero-candidate matches never fired the filter
            previous = self._last.get(index)
            if variants is not None:
                # A monotone rule's first collect this epoch: the sharded
                # full match seeds the standing set.
                self._last[index] = payloads
                self._synced[index] = len(log)
                response[index] = ("f", sorted(payloads, key=repr))
            elif previous == payloads:
                # Unchanged since our previous response for this rule: the
                # parent keeps its per-worker set, so ship a "same" marker.
                response[index] = None
            elif previous is None:
                self._last[index] = payloads
                response[index] = ("f", sorted(payloads, key=repr))
            else:
                self._last[index] = payloads
                response[index] = (
                    "d",
                    sorted(payloads - previous, key=repr),
                    sorted(previous - payloads, key=repr),
                )
        return response, self._counter_deltas()

    def _counter_deltas(self):
        """Counter growth since the last response (parent merges these)."""
        if self.metrics is None:
            return None
        shipped = self._counters_shipped
        deltas = {}
        for name, value in self.metrics.counters.items():
            delta = value - shipped.get(name, 0)
            if delta:
                deltas[name] = delta
                shipped[name] = value
        return deltas


def _worker_main(conn):
    """Worker process entry point: serve requests until stop/EOF."""
    state = None
    try:
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "init":
                state = _WorkerState(message[1])
                conn.send(("ok",))
            elif kind == "epoch":
                state.begin_epoch()
                conn.send(("ok",))
            elif kind == "collect":
                firings, deltas = state.collect(message[1], message[2])
                conn.send(("firings", firings, deltas))
            elif kind == "stop":
                conn.send(("ok",))
                return
            else:
                conn.send(("error", "unknown request %r" % (kind,)))
                return
    except EOFError:
        return
    except BaseException as error:  # ship the failure, don't hang the parent
        try:
            conn.send(("error", "%s: %s" % (type(error).__name__, error)))
        except Exception:
            pass
        return


def _mp_context():
    # fork is cheapest (the child inherits compiled-rule caches and the
    # intern table, and load_prefix degenerates to a consistency check);
    # spawn-only platforms go through the full init payload instead.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context("spawn")


# -- the executor --------------------------------------------------------------


class ParallelExecutor:
    """Fans ``Γ`` collect-firings across persistent worker processes.

    Lifecycle: :meth:`begin_run` once per engine run (spawns workers,
    ships the program / intern prefix / base database; may decline),
    :meth:`begin_epoch` after every restart (workers rebuild their
    replica from ``I∅`` — the paper's restart, distributed), then
    :meth:`collect_all` per evaluation-strategy collect, and
    :meth:`close` in the engine's run teardown.
    """

    def __init__(self, nworkers, threshold=None):
        self.nworkers = int(nworkers)
        if threshold is None:
            threshold = int(os.environ.get("REPRO_PARALLEL_THRESHOLD") or DEFAULT_THRESHOLD)
        self.threshold = threshold
        self._procs = []
        self._conns = []
        self._running = False
        self._rules = ()
        self._index_of = {}
        self._svars = ()
        self._heads = ()
        self._instance_memo = {}
        self._worker_sets = []  # per worker: rule index -> payload set
        self._merged = {}  # rule index -> payload -> worker refcount
        self._sorted = {}  # rule index -> payloads sorted by repr
        self._shipped = set()
        self._shipped_stamp = -1
        self.plan = None

    # -- lifecycle --------------------------------------------------------------

    def begin_run(self, program_rules, database, groups=None):
        """Start workers for one run.  Returns False to decline (stay sequential)."""
        from ..storage.catalog import INTERNER
        from ..storage.relation import get_storage_backend
        from .match import get_matcher_backend

        rules = tuple(program_rules)
        if self.nworkers < 2 or not rules or len(database) < self.threshold:
            return False
        self._rules = rules
        self._index_of = {}
        for position, rule in enumerate(rules):
            self._index_of.setdefault(rule, position)
        self._svars = tuple(_sorted_binding_variables(rule) for rule in rules)
        self._instance_memo = {}
        self.plan = shard_plan(rules, groups, self.nworkers)
        init = {
            "storage": get_storage_backend(),
            "matcher": get_matcher_backend(),
            "intern": INTERNER.snapshot_values(),
            "rules": tuple(_encode_rule(rule) for rule in rules),
            "db": _encode_database(database),
            "nshards": self.plan.nshards,
            # Metered runs get worker-local registries whose counter deltas
            # ride back on every collect; unmetered runs keep the workers on
            # the null-telemetry fast path.
            "metered": _obs.ACTIVE is not None,
        }
        context = _mp_context()
        for shard in range(self.nworkers):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(child_conn,),
                daemon=True,
                name="repro-gamma-%d" % shard,
            )
            process.start()
            child_conn.close()
            payload = dict(init)
            payload["shard"] = shard
            parent_conn.send(("init", payload))
            self._procs.append(process)
            self._conns.append(parent_conn)
        for conn in self._conns:
            self._recv(conn)
        self._running = True
        m = _obs.ACTIVE
        if m is not None:
            m.gauge("parallel.workers", self.nworkers)
            m.gauge("parallel.shards", self.plan.nshards)
            m.gauge("parallel.batches", len(self.plan.batches))
        return True

    def begin_epoch(self):
        """Reset every worker's replica to ``I∅`` (run start and each restart)."""
        if not self._running:
            return
        self._shipped = set()
        self._shipped_stamp = -1
        self._worker_sets = [dict() for _ in self._conns]
        self._merged = {}
        self._sorted = {}
        for conn in self._conns:
            conn.send(("epoch",))
        for conn in self._conns:
            self._recv(conn)

    def close(self):
        """Stop all workers.  Idempotent; safe mid-failure."""
        self._running = False
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for process in self._procs:
            process.join(timeout=2)
            if process.is_alive():
                process.terminate()
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._procs = []
        self._conns = []

    # -- the collect ------------------------------------------------------------

    def collect_all(self, rules, blocked, interpretation, into):
        """Parallel twin of the strategies' ``_collect_all``.

        Matches *rules* against *interpretation* on the workers, merges
        the shard-disjoint payload unions deterministically (sorted per
        rule), reconstructs instances parent-side, and adds unblocked
        ones to *into* with the sequential path's exact dedup-and-count
        semantics.  Returns the number of instances new in *into*, or
        ``None`` to decline (caller falls back to sequential).
        """
        if not self._running:
            return None
        indices = []
        seen = set()
        for rule in rules:
            index = self._index_of.get(rule)
            if index is None:
                return None  # not a run-program rule: let the oracle handle it
            if index not in seen:
                # A program may list one rule twice; duplicates add nothing
                # (identical instances dedup in *into*) and must not reach
                # the worker, whose same-as-last marker would trigger on
                # the second pass within one request.
                seen.add(index)
                indices.append(index)
        if not indices:
            return 0
        marks = self._pending_marks(interpretation)
        message = ("collect", marks, tuple(indices))
        for conn in self._conns:
            conn.send(message)
        m = _obs.ACTIVE
        responses = []
        for conn in self._conns:
            reply = self._recv(conn)
            responses.append(reply[1])
            deltas = reply[2]
            if m is not None and deltas:
                # Fold the workers' match/storage/compiler counters into
                # the run's registry; timers stay worker-local (wall time
                # across processes does not sum meaningfully).
                for name, amount in deltas.items():
                    m.inc(name, amount)
        start = perf_counter() if m is not None else 0.0
        added = 0
        memo = self._instance_memo
        for index in indices:
            rule_start = perf_counter() if m is not None else 0.0
            self._apply_responses(index, responses)
            rule = self._rules[index]
            svars = self._svars[index]
            rule_added = 0
            for payload in self._sorted.get(index, ()):
                entry = memo.get((index, payload))
                if entry is None:
                    entry = self._build_instance(rule, svars, payload)
                    memo[(index, payload)] = entry
                instance, head = entry
                if instance in blocked:
                    continue
                bucket = into.get(head)
                if bucket is None:
                    into[head] = {instance}
                elif instance not in bucket:
                    bucket.add(instance)
                else:
                    continue
                rule_added += 1
            added += rule_added
            if m is not None:
                # Per-rule attribution so ``repro profile`` keeps working
                # under --parallel: firing counts are exact; the time is
                # the parent's merge share (match time lives on workers).
                m.observe_rule(
                    rule.describe(), perf_counter() - rule_start, rule_added
                )
                m.inc("eval.full_matches")
        if m is not None:
            m.inc("parallel.collects")
            m.observe("parallel.merge", perf_counter() - start)
        return added

    # -- internals --------------------------------------------------------------

    def _apply_responses(self, index, responses):
        """Fold one rule's worker responses into the merged payload state.

        Workers ship deltas (``None`` unchanged, ``("f", full)`` first
        response, ``("d", added, removed)`` after), so each payload is
        processed once per epoch instead of once per round.  The merged
        view refcounts payloads per worker (delta-sharded matches can be
        found by more than one worker) and keeps a repr-sorted list per
        rule incrementally — the deterministic iteration order the
        sequential oracle's fingerprint is compared against.
        """
        from bisect import bisect_left, insort

        merged = self._merged.get(index)
        if merged is None:
            merged = self._merged[index] = {}
            cache = self._sorted[index] = []
        else:
            cache = self._sorted[index]
        bulk = []
        for worker, response in enumerate(responses):
            payloads = response[index]
            if payloads is None:
                continue
            worker_set = self._worker_sets[worker].setdefault(index, set())
            if payloads[0] == "f":
                full = payloads[1]
                added = [p for p in full if p not in worker_set]
                removed = worker_set.difference(full)
            else:
                _, added, removed = payloads
            for payload in added:
                if payload in worker_set:
                    continue
                worker_set.add(payload)
                count = merged.get(payload, 0)
                merged[payload] = count + 1
                if count == 0:
                    bulk.append(payload)
            for payload in removed:
                if payload not in worker_set:
                    continue
                worker_set.discard(payload)
                count = merged[payload] - 1
                if count:
                    merged[payload] = count
                else:
                    del merged[payload]
                    # repr keys can collide only between equal payloads
                    # within one rule (raw value tuples), but scan forward
                    # defensively: equal keys are contiguous when sorted.
                    position = bisect_left(cache, repr(payload), key=repr)
                    while cache[position] != payload:
                        position += 1
                    del cache[position]
        if bulk:
            # Large influxes (a rule's first round) re-sort outright;
            # steady-state trickles insert in place.
            if len(bulk) > max(64, len(cache) // 4):
                cache.extend(bulk)
                cache.sort(key=repr)
            else:
                for payload in bulk:
                    insort(cache, payload, key=repr)

    @staticmethod
    def _build_instance(rule, svars, payload):
        from ..core.groundings import RuleGrounding

        substitution = Substitution._from_sorted(
            tuple(
                (variable, Constant(value))
                for variable, value in zip(svars, payload)
            )
        )
        instance = RuleGrounding(rule, substitution)
        return instance, instance.ground_head()

    def _pending_marks(self, interpretation):
        """The marks added since the last ship, sorted — exact within an epoch
        because ``I+``/``I-`` only grow between restarts."""
        count = interpretation.marked_count()
        if count == self._shipped_stamp:
            return ()
        marked = interpretation.marked_updates()
        shipped = self._shipped
        pending = [update for update in marked if update not in shipped]
        pending.sort(key=str)
        shipped.update(pending)
        self._shipped_stamp = count
        return tuple(_encode_mark(update) for update in pending)

    def _recv(self, conn):
        try:
            response = conn.recv()
        except EOFError:
            self.close()
            raise EngineError("parallel worker died unexpectedly")
        if response[0] == "error":
            self.close()
            raise EngineError("parallel worker failed: %s" % response[1])
        return response

    def __repr__(self):
        return "ParallelExecutor(nworkers=%d, running=%s)" % (
            self.nworkers,
            self._running,
        )
