"""The evaluation engine: fact views, join planning, matching, grounding.

The matcher is semantics-agnostic: it enumerates valid groundings of a
rule body against any :class:`FactsView`.  The PARK core plugs in the
paper's i-interpretation validity; the deductive baselines plug in plain
closed-world databases.
"""

from .compiler import CompiledProgram, clear_program_cache, compile_program
from .datalog import naive_least_fixpoint, query, seminaive_least_fixpoint
from .dependency import (
    DependencyEdge,
    DependencyGraph,
    ProgramClass,
    classify_program,
)
from .grounder import (
    ground_instances,
    ground_program,
    ground_substitutions,
    herbrand_base,
    herbrand_universe,
)
from .match import (
    CompiledRule,
    clear_compile_cache,
    compile_rule,
    fireable_heads,
    get_matcher_backend,
    match_body_once,
    match_rule,
    set_matcher_backend,
)
from .planner import PlanStep, explain_plan, plan_body
from .query import conjunctive_query, holds, query_rows
from .views import AtomSetView, DatabaseView, FactsView

__all__ = [
    "AtomSetView",
    "CompiledProgram",
    "CompiledRule",
    "DatabaseView",
    "DependencyEdge",
    "DependencyGraph",
    "ProgramClass",
    "classify_program",
    "FactsView",
    "PlanStep",
    "clear_compile_cache",
    "clear_program_cache",
    "compile_program",
    "compile_rule",
    "explain_plan",
    "fireable_heads",
    "get_matcher_backend",
    "set_matcher_backend",
    "ground_instances",
    "ground_program",
    "ground_substitutions",
    "herbrand_base",
    "herbrand_universe",
    "match_body_once",
    "match_rule",
    "conjunctive_query",
    "holds",
    "query_rows",
    "naive_least_fixpoint",
    "plan_body",
    "query",
    "seminaive_least_fixpoint",
]
