"""Ad-hoc conjunctive queries with negation.

A query is a rule body without a head: ``payroll(X, S), not active(X)``.
Evaluation builds a *probe rule* whose head collects the query's
variables — which re-uses the rule-safety validation (negated literals
must be range-restricted) and the full indexed matcher — and returns the
answer substitutions.

Queries run against any :class:`~repro.engine.views.FactsView`: a plain
database (closed-world; event literals never hold), or an
i-interpretation view (the paper's validity, where ``+p(X)`` / ``-p(X)``
query the pending updates).
"""

from __future__ import annotations

from ..errors import LanguageError
from ..lang.atoms import Atom
from ..lang.literals import Condition, Event
from ..lang.rules import Rule
from ..lang.updates import insert
from .match import match_rule
from .views import DatabaseView, FactsView

_PROBE = "__query_probe__"


def _coerce_literals(query):
    if isinstance(query, str):
        from ..lang.parser import parse_body

        return parse_body(query)
    literals = tuple(query)
    for literal in literals:
        if not isinstance(literal, (Condition, Event)):
            raise LanguageError("query element %r is not a body literal" % (literal,))
    if not literals:
        raise LanguageError("empty query")
    return literals


def _probe_rule(literals):
    variables = set()
    for literal in literals:
        variables |= literal.variables()
    ordered = tuple(sorted(variables, key=lambda v: v.name))
    # Rule construction enforces the safety conditions for the query.
    return Rule(head=insert(Atom(_PROBE, ordered)), body=literals), ordered


def _coerce_view(source):
    if isinstance(source, FactsView):
        return source
    from ..core.interpretation import IInterpretation
    from ..core.validity import InterpretationView
    from ..storage.database import Database

    if isinstance(source, Database):
        return DatabaseView(source)
    if isinstance(source, IInterpretation):
        return InterpretationView(source)
    raise TypeError(
        "cannot query %r; expected a Database, IInterpretation or FactsView"
        % (source,)
    )


def conjunctive_query(query, source):
    """All answer substitutions of *query* against *source*, sorted.

    *query* is body-literal text or an iterable of literals; *source* a
    database, i-interpretation, or raw view.  Returns a list of
    :class:`~repro.lang.substitution.Substitution` (one empty
    substitution for a satisfied ground query, an empty list for an
    unsatisfied one).
    """
    literals = _coerce_literals(query)
    rule, _ = _probe_rule(literals)
    view = _coerce_view(source)
    return sorted(set(match_rule(rule, view)), key=str)


def query_rows(query, source):
    """Answers as plain ``{variable name: value}`` dicts, sorted.

    >>> from repro.storage.database import Database
    >>> db = Database.from_text("payroll(joe, 10). payroll(ann, 20). active(ann).")
    >>> query_rows("payroll(X, S), not active(X)", db)
    [{'S': 10, 'X': 'joe'}]
    """
    answers = conjunctive_query(query, source)
    return [
        {variable.name: term.value for variable, term in substitution.items()}
        for substitution in answers
    ]


def holds(query, source):
    """Whether the query has at least one answer."""
    literals = _coerce_literals(query)
    rule, _ = _probe_rule(literals)
    view = _coerce_view(source)
    for _ in match_rule(rule, view, freeze=False):
        return True
    return False
