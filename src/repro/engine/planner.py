"""Join planner: choose an evaluation order for a rule body.

The matcher evaluates body literals left-to-right with backtracking, so the
order matters:

* **negated literals** are pure filters — they cannot bind variables and,
  by safety condition 2, all their variables are bound by positive
  literals.  The planner schedules each one at the earliest point where all
  its variables are bound (cheap early pruning).
* **binding literals** (positive conditions and events) are ordered
  greedily: at each step pick the literal with the most already-bound
  argument positions (most selective index lookup), breaking ties by
  fewest free variables, then — when a :class:`~repro.engine.views.FactsView`
  is supplied — by its :meth:`estimate` of the literal's predicate size
  (smaller relations first), and finally by original body position
  (determinism).

The resulting plan is a static property of the rule (plus, optionally,
the statistics of the view it is first compiled against), computed once
and cached on the compiled rule.  Without a view the estimate tie-break
contributes nothing and plans depend on the rule alone, which keeps the
planner's behaviour reproducible across runs and engines; with a view
the estimates are read once at planning time, so the plan is still a
deterministic function of (rule, view statistics).
"""

from __future__ import annotations

from dataclasses import dataclass
from ..lang.literals import Condition
from ..lang.rules import Rule
from ..obs import metrics as _obs


@dataclass(frozen=True)
class PlanStep:
    """One step of a body plan: a literal plus its role.

    ``kind`` is ``"bind"`` for literals matched against candidate rows
    (positive conditions and events) and ``"check"`` for ground tests
    (negated conditions, and binding literals whose variables happen to be
    fully bound already).
    """

    literal: object
    kind: str


def _is_negative(literal):
    return isinstance(literal, Condition) and not literal.positive


def plan_body(rule, view=None):
    """Compute the evaluation order for *rule*'s body as a tuple of PlanSteps.

    With *view* supplied, its :meth:`~repro.engine.views.FactsView.estimate`
    is consulted as a tie-break between equally-bound literals (smaller
    predicates make cheaper outer loops); without one, the tie-break falls
    straight through to body position.
    """
    if not isinstance(rule, Rule):
        raise TypeError("expected a Rule, got %r" % (rule,))

    m = _obs.ACTIVE
    if m is not None:
        m.inc("planner.plans")
        if view is not None:
            m.inc("planner.plans_with_stats")

    estimate = view.estimate if view is not None else None
    pending = list(enumerate(rule.body))
    bound_vars = set()
    steps = []

    def schedule_eligible_checks():
        remaining = []
        for position, literal in pending:
            if _is_negative(literal) and literal.variables() <= bound_vars:
                steps.append(PlanStep(literal, "check"))
            else:
                remaining.append((position, literal))
        pending[:] = remaining

    schedule_eligible_checks()
    while pending:
        best = None
        best_key = None
        for position, literal in pending:
            if _is_negative(literal):
                continue
            literal_vars = literal.variables()
            bound_count = len(literal_vars & bound_vars) + (
                literal.atom.arity - len(literal_vars)
            )
            free_count = len(literal_vars - bound_vars)
            size = estimate(literal.atom.predicate) if estimate is not None else 0
            key = (-bound_count, free_count, size, position)
            if best_key is None or key < best_key:
                best, best_key = (position, literal), key
        if best is None:
            # Only negative literals left but with unbound variables: the
            # rule-safety check makes this unreachable.
            raise AssertionError("unschedulable body: %s" % rule)
        position, literal = best
        pending.remove(best)
        if literal.variables() <= bound_vars:
            steps.append(PlanStep(literal, "check"))
        else:
            steps.append(PlanStep(literal, "bind"))
            bound_vars |= literal.variables()
        schedule_eligible_checks()

    return tuple(steps)


def group_schedule(program, facts):
    """The certified group-batched rule schedule for *program*.

    Maps the :class:`~repro.lint.facts.ProgramFacts` parallel groups
    (live rule indices) onto *program*'s rule objects: a tuple of rule
    batches, ordered by (stratum, color), covering exactly the live
    rules.  Rules within a batch have pairwise disjoint effect sets
    under unification (see :mod:`repro.lint.commutativity`), so the
    evaluation strategies may collect their firings in any order — or in
    parallel — without changing the round's result.

    Raises :class:`ValueError` when *facts* do not describe *program*:
    scheduling with a stale certificate would be unsound.
    """
    if not facts.matches(program):
        raise ValueError(
            "ProgramFacts were computed for a different program; "
            "re-run ProgramFacts.analyze on the program being scheduled"
        )
    rules = tuple(program)
    schedule = tuple(
        tuple(rules[index] for index in group.rules)
        for group in facts.parallel_groups
    )
    m = _obs.ACTIVE
    if m is not None:
        m.inc("planner.group_schedules")
    return schedule


@dataclass(frozen=True)
class ShardPlan:
    """A group schedule lowered to a shard execution plan.

    ``batches`` holds rule *indices* (into the run program) in certified
    batch order — the units a parallel executor hands out wholesale —
    and ``nshards`` is the data-partitioning width each batch fans out
    over.  Indices rather than rules: the plan crosses a process
    boundary, and workers address rules positionally.
    """

    batches: tuple
    nshards: int

    @property
    def rule_count(self):
        return sum(len(batch) for batch in self.batches)


def shard_plan(rules, groups, nshards):
    """Lower the certified group schedule for *rules* to a :class:`ShardPlan`.

    *groups* is a :func:`group_schedule` result (or ``None`` for plain
    program order — one batch of everything).  Mirrors the strategies'
    batching exactly: each batch keeps the schedule's rule order
    restricted to *rules*, and rules absent from every group trail in a
    final batch of their own.
    """
    rules = tuple(rules)
    index_of = {}
    for position, rule in enumerate(rules):
        index_of.setdefault(rule, position)
    if groups is None:
        batches = (tuple(range(len(rules))),) if rules else ()
    else:
        scheduled = set()
        built = []
        for group in groups:
            batch = []
            for rule in group:
                position = index_of.get(rule)
                if position is not None and position not in scheduled:
                    scheduled.add(position)
                    batch.append(position)
            if batch:
                built.append(tuple(batch))
        leftover = tuple(
            position for position in range(len(rules)) if position not in scheduled
        )
        if leftover:
            built.append(leftover)
        batches = tuple(built)
    m = _obs.ACTIVE
    if m is not None:
        m.inc("planner.shard_plans")
    return ShardPlan(batches=batches, nshards=int(nshards))


def explain_plan(rule):
    """Human-readable plan description, one line per step (for debugging)."""
    lines = []
    for index, step in enumerate(plan_body(rule)):
        lines.append("%2d. [%s] %s" % (index + 1, step.kind, step.literal))
    return "\n".join(lines)
