"""Predicate dependency graphs, SCCs, and stratification.

Classical datalog machinery used by the stratified-evaluation baseline
and by program analysis: the dependency graph has one node per predicate;
rule ``... b ... -> +h`` adds an edge ``b -> h``, labelled *negative*
when ``b`` occurs under ``not``.  A program is **stratifiable** iff no
cycle contains a negative edge; the strata are the SCC condensation
ordered topologically.

For active rules we extend the classification: an edge is also flagged
when the body literal is an *event* or the head is a *deletion* — those
features take a program outside the deductive fragment entirely, which
:func:`classify_program` reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..errors import EngineError
from ..lang.literals import Condition, Event


@dataclass(frozen=True)
class DependencyEdge:
    """An edge ``source -> target`` induced by one or more rules.

    Edges are deduplicated structurally (same endpoints, polarity, and
    event flag), so a single edge may be induced by several rules:
    ``rules`` lists the witnessing rule indices into the program, and
    ``span`` points at the first witnessing body literal in the source
    text when the graph was built with a source map (lint does this; the
    engine's uses don't need it and pass none).
    """

    source: str
    target: str
    negative: bool = False
    through_event: bool = False
    rules: Tuple[int, ...] = ()
    span: Optional[object] = None


class DependencyGraph:
    """The predicate dependency graph of a program.

    *spans* is an optional sequence of
    :class:`~repro.lang.source.RuleSpans` aligned with the program's rule
    order (the lenient parser produces one); when given, every edge
    carries the source span of its first witnessing body literal, so both
    the linter and stratification errors can point at the offending text.
    """

    def __init__(self, program, spans=None):
        self.program = program
        self._nodes: Set[str] = set()
        witnesses: Dict[Tuple[str, str, bool, bool], List[Tuple[int, int]]] = {}
        for rule_index, rule in enumerate(program):
            head = rule.head.atom.predicate
            self._nodes.add(head)
            for literal_index, literal in enumerate(rule.body):
                body_predicate = literal.atom.predicate
                self._nodes.add(body_predicate)
                negative = isinstance(literal, Condition) and not literal.positive
                through_event = isinstance(literal, Event)
                key = (body_predicate, head, negative, through_event)
                witnesses.setdefault(key, []).append((rule_index, literal_index))
        self._edges: Set[DependencyEdge] = set()
        for key, sites in witnesses.items():
            source, target, negative, through_event = key
            span = None
            if spans is not None:
                first_rule, first_literal = sites[0]
                if first_rule < len(spans):
                    span = spans[first_rule].literal(first_literal)
            self._edges.add(
                DependencyEdge(
                    source=source,
                    target=target,
                    negative=negative,
                    through_event=through_event,
                    rules=tuple(sorted({rule_index for rule_index, _ in sites})),
                    span=span,
                )
            )

    @property
    def nodes(self) -> FrozenSet[str]:
        return frozenset(self._nodes)

    @property
    def edges(self) -> FrozenSet[DependencyEdge]:
        return frozenset(self._edges)

    def successors(self, predicate):
        """Predicates depending on *predicate* (edge targets), sorted."""
        return sorted({e.target for e in self._edges if e.source == predicate})

    def predecessors(self, predicate):
        """Predicates *predicate* depends on (edge sources), sorted."""
        return sorted({e.source for e in self._edges if e.target == predicate})

    def negative_edges(self):
        return frozenset(e for e in self._edges if e.negative)

    def witnesses(self, source, target):
        """Rule indices inducing any edge ``source -> target``, sorted."""
        result = set()
        for edge in self._edges:
            if edge.source == source and edge.target == target:
                result.update(edge.rules)
        return sorted(result)

    def negative_cycle_edges(self):
        """Negative edges inside a strongly connected component, sorted.

        The program is stratifiable iff this is empty; each returned edge
        carries its witnessing rules (and span, when the graph was built
        with one), so callers can report *which* negation breaks
        stratifiability and where.
        """
        component_of: Dict[str, int] = {}
        for position, component in enumerate(self.sccs()):
            for predicate in component:
                component_of[predicate] = position
        return sorted(
            (
                edge
                for edge in self._edges
                if edge.negative
                and component_of[edge.source] == component_of[edge.target]
            ),
            key=lambda edge: (edge.source, edge.target),
        )

    # -- strongly connected components (Tarjan, iterative) ----------------------

    def sccs(self) -> List[FrozenSet[str]]:
        """SCCs in reverse topological order (callees before callers)."""
        adjacency: Dict[str, List[str]] = {n: [] for n in sorted(self._nodes)}
        for edge in self._edges:
            adjacency[edge.source].append(edge.target)
        for targets in adjacency.values():
            targets.sort()

        index_counter = [0]
        indexes: Dict[str, int] = {}
        lowlinks: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        result: List[FrozenSet[str]] = []

        for root in sorted(self._nodes):
            if root in indexes:
                continue
            work = [(root, iter(adjacency[root]))]
            indexes[root] = lowlinks[root] = index_counter[0]
            index_counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                advanced = False
                for successor in successors:
                    if successor not in indexes:
                        indexes[successor] = lowlinks[successor] = index_counter[0]
                        index_counter[0] += 1
                        stack.append(successor)
                        on_stack.add(successor)
                        work.append((successor, iter(adjacency[successor])))
                        advanced = True
                        break
                    if successor in on_stack:
                        lowlinks[node] = min(lowlinks[node], indexes[successor])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
                if lowlinks[node] == indexes[node]:
                    component = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    result.append(frozenset(component))
        return result

    def recursive_predicates(self):
        """Predicates on a cycle (including self-loops)."""
        cyclic = set()
        for component in self.sccs():
            if len(component) > 1:
                cyclic |= component
        for edge in self._edges:
            if edge.source == edge.target:
                cyclic.add(edge.source)
        return frozenset(cyclic)

    # -- stratification ------------------------------------------------------------

    def is_stratifiable(self):
        """No cycle through a negative edge."""
        try:
            self.stratification()
            return True
        except EngineError:
            return False

    def stratification(self) -> List[FrozenSet[str]]:
        """Strata (lowest first); raises :class:`EngineError` if impossible.

        Stratum assignment: predicates in the same SCC share a stratum; a
        negative edge must strictly increase the stratum; a positive edge
        must not decrease it.
        """
        components = self.sccs()
        component_of: Dict[str, int] = {}
        for position, component in enumerate(components):
            for predicate in component:
                component_of[predicate] = position

        for edge in self._edges:
            if edge.negative and component_of[edge.source] == component_of[edge.target]:
                raise EngineError(
                    "program is not stratifiable: negation from %r to %r "
                    "inside a recursive component" % (edge.source, edge.target)
                )

        # Longest-path stratum numbers over the (acyclic) condensation.
        level = [0] * len(components)
        # components are in reverse topological order: edges go from earlier
        # components (sources) to later ones... Tarjan emits callees first,
        # so edge.source's component index <= edge.target's — process in
        # condensation topological order (reversed emission order handles
        # the general case below by iterating until fixpoint).
        changed = True
        iterations = 0
        while changed:
            changed = False
            iterations += 1
            if iterations > 2 * len(components) + 2:
                raise EngineError("stratification failed to converge")
            for edge in self._edges:
                source_component = component_of[edge.source]
                target_component = component_of[edge.target]
                if source_component == target_component:
                    continue
                needed = level[source_component] + (1 if edge.negative else 0)
                if level[target_component] < needed:
                    level[target_component] = needed
                    changed = True

        stratum_count = max(level) + 1 if components else 0
        strata: List[Set[str]] = [set() for _ in range(stratum_count)]
        for position, component in enumerate(components):
            strata[level[position]] |= component
        return [frozenset(s) for s in strata if s]


def body_predicate_index(rules):
    """Map each rule to the frozenset of predicates its body reads.

    This is the rule-side of the dependency graph above, keyed by rule
    instead of by edge.  The incremental evaluator uses it for
    dirty-predicate scheduling: all three validity cases for a literal over
    predicate ``p`` (positive condition, negated condition, event) depend
    only on the unmarked atoms and marks over ``p``, so a rule's set of
    valid instances can change between two rounds of one epoch only if a
    body predicate acquired new marks in between.
    """
    return {
        rule: frozenset(literal.atom.predicate for literal in rule.body)
        for rule in rules
    }


def body_mark_index(rules):
    """Map each rule to the ``(predicate, op)`` marks its validity reads.

    A polarity-aware refinement of :func:`body_predicate_index`: within one
    epoch ``I∅`` is invariant, so a literal's validity can only change when
    specific marks arrive —

    * a positive condition on ``p`` (``p ∈ I∅ ∪ I+``) reads only ``+p``;
    * a negated condition on ``p`` reads both ``+p`` (can invalidate it)
      and ``-p`` (can validate it);
    * an event literal ``+p``/``-p`` reads only its own mark.

    A rule's valid-instance set is unchanged between rounds whose new marks
    are disjoint from this set.
    """
    from ..lang.updates import UpdateOp

    index = {}
    for rule in rules:
        marks = set()
        for literal in rule.body:
            predicate = literal.atom.predicate
            if isinstance(literal, Event):
                marks.add((predicate, literal.op))
            elif literal.positive:
                marks.add((predicate, UpdateOp.INSERT))
            else:
                marks.add((predicate, UpdateOp.INSERT))
                marks.add((predicate, UpdateOp.DELETE))
        index[rule] = frozenset(marks)
    return index


def marks_touched(updates):
    """The ``(predicate, op)`` marks dirtied by a batch of ground updates."""
    return frozenset((update.atom.predicate, update.op) for update in updates)


def predicates_touched(updates):
    """The predicates dirtied by a batch of ground updates (insert or delete)."""
    return frozenset(update.atom.predicate for update in updates)


@dataclass(frozen=True)
class ProgramClass:
    """What fragment a program belongs to."""

    positive: bool          # no negation, no events, insert-only
    semipositive: bool      # negation only on EDB predicates
    stratifiable: bool      # negation stratifiable
    uses_events: bool
    uses_deletion: bool
    recursive: bool

    @property
    def deductive(self):
        """Insert-only and event-free: a datalog¬ program."""
        return not self.uses_events and not self.uses_deletion


def classify_program(program) -> ProgramClass:
    """Syntactic classification of *program* (used by baselines and docs)."""
    graph = DependencyGraph(program)
    head_predicates = {rule.head.atom.predicate for rule in program}
    uses_events = any(rule.event_literals() for rule in program)
    uses_deletion = any(rule.head.is_delete for rule in program)
    has_negation = any(rule.negative_conditions() for rule in program)
    semipositive = all(
        literal.atom.predicate not in head_predicates
        for rule in program
        for literal in rule.negative_conditions()
    )
    return ProgramClass(
        positive=not has_negation and not uses_events and not uses_deletion,
        semipositive=semipositive,
        stratifiable=graph.is_stratifiable(),
        uses_events=uses_events,
        uses_deletion=uses_deletion,
        recursive=bool(graph.recursive_predicates() & head_predicates),
    )
