"""Fact views: the interface between the matcher and a fact source.

The body-matching engine is shared between the PARK semantics (matching
against an i-interpretation with the paper's validity rules) and the
baseline deductive engines (matching against a plain database under the
closed-world assumption).  A :class:`FactsView` abstracts the difference:

* ``condition_candidates`` / ``condition_holds`` realize validity of
  *positive* condition literals;
* ``negation_holds`` realizes validity of *negated* condition literals;
* ``event_candidates`` / ``event_holds`` realize validity of *event*
  literals (``+a`` / ``-a`` in rule bodies; Section 4.3).

Candidate methods return raw value tuples consistent with the bound columns
(a superset is permitted — the matcher re-checks bindings), which lets
implementations serve them straight from hash indexes.

The compiled matcher (:mod:`repro.engine.compiler`) additionally speaks a
*row-level* dialect of the same protocol — ``*_candidates_key`` lookups
taking a prebuilt ``(columns, key)`` pair instead of a dict, ``*_holds_row``
ground checks taking a raw value tuple instead of an :class:`Atom`, and
``register_lookup`` for the composite-index handshake.  Every row-level
method has a default implementation in terms of the atom-level one, so
existing :class:`FactsView` subclasses keep working unmodified; the
built-in views override them to stay allocation-free on the hot path.
"""

from __future__ import annotations

from ..lang.atoms import Atom
from ..lang.terms import Constant
from ..storage.catalog import INTERNER
from ..storage.relation import get_storage_backend


def _atom_from_row(predicate, row):
    """Reconstruct a ground :class:`Atom` from a *storage-native* row.

    Native rows are intern-id tuples under the columnar layout and raw
    value tuples under the row layout; the compiled matcher always hands
    this function whatever dialect the active layout speaks.
    """
    if get_storage_backend() == "columnar":
        constant_of = INTERNER.constant_of
        return Atom(predicate, tuple(constant_of(ident) for ident in row))
    return Atom(predicate, tuple(Constant(value) for value in row))


class FactsView:
    """Abstract fact source for the matcher.

    Subclasses must override the five atom-level methods; the row-level
    methods and ``register_lookup`` have working defaults.
    """

    def condition_candidates(self, predicate, arity, bound):
        """Rows that could make a positive condition on *predicate* valid.

        *bound* maps column index to a constant value; returned rows must
        include every row matching those bindings (supersets allowed).
        """
        raise NotImplementedError

    def condition_holds(self, atom):
        """Whether the positive condition literal on ground *atom* is valid."""
        raise NotImplementedError

    def negation_holds(self, atom):
        """Whether the negated condition literal ``not atom`` is valid."""
        raise NotImplementedError

    def event_candidates(self, op, predicate, arity, bound):
        """Rows that could make the event literal ``±predicate(...)`` valid."""
        raise NotImplementedError

    def event_holds(self, op, atom):
        """Whether the event literal ``±atom`` is valid for ground *atom*."""
        raise NotImplementedError

    def estimate(self, predicate):
        """A size estimate for *predicate*.

        Consulted by the join planner as a tie-break between equally-bound
        body literals when a view is passed to
        :func:`repro.engine.planner.plan_body` (the compiled matcher does
        this on first compile); smaller estimates are scheduled earlier.
        Only relative magnitudes matter, and ``0`` (the default) simply
        leaves the ordering to body position.
        """
        return 0

    # -- row-level dialect (compiled matcher) ----------------------------------

    def condition_candidates_key(self, predicate, arity, columns, key):
        """Rows whose *columns* equal *key* — positional twin of
        :meth:`condition_candidates` (same superset allowance).

        The row-level dialect is storage-native: under the columnar layout
        the default bridge decodes the id key into raw values for the
        atom-level method and re-encodes the returned rows, so subclasses
        that only implement the atom-level protocol stay correct (if slow —
        the built-in views override these with zero-copy paths).
        """
        if get_storage_backend() == "columnar":
            value_of = INTERNER.value_of
            bound = {c: value_of(k) for c, k in zip(columns, key)}
            encode = INTERNER.encode_row
            return (
                encode(row)
                for row in self.condition_candidates(predicate, arity, bound)
            )
        return self.condition_candidates(predicate, arity, dict(zip(columns, key)))

    def event_candidates_key(self, op, predicate, arity, columns, key):
        """Positional twin of :meth:`event_candidates` (same native bridge)."""
        if get_storage_backend() == "columnar":
            value_of = INTERNER.value_of
            bound = {c: value_of(k) for c, k in zip(columns, key)}
            encode = INTERNER.encode_row
            return (
                encode(row)
                for row in self.event_candidates(op, predicate, arity, bound)
            )
        return self.event_candidates(op, predicate, arity, dict(zip(columns, key)))

    def condition_holds_row(self, predicate, arity, row):
        """Row-tuple twin of :meth:`condition_holds` for ground literals."""
        return self.condition_holds(_atom_from_row(predicate, row))

    def negation_holds_row(self, predicate, arity, row):
        """Row-tuple twin of :meth:`negation_holds`."""
        return self.negation_holds(_atom_from_row(predicate, row))

    def event_holds_row(self, op, predicate, arity, row):
        """Row-tuple twin of :meth:`event_holds`."""
        return self.event_holds(op, _atom_from_row(predicate, row))

    def register_lookup(self, predicate, arity, columns):
        """Declare that compiled plans will probe *predicate* binding exactly
        *columns* (sorted tuple).  Views over indexed storage forward this
        to :meth:`repro.storage.database.Database.register_lookup` so the
        matching composite indexes are built once and maintained
        incrementally; the default is a no-op."""


class DatabaseView(FactsView):
    """Closed-world view over a plain :class:`~repro.storage.database.Database`.

    Positive conditions are membership, negation is absence, and event
    literals are never valid (a plain database has no pending updates).
    Used by the deductive baselines.
    """

    __slots__ = ("database",)

    def __init__(self, database):
        self.database = database

    def condition_candidates(self, predicate, arity, bound):
        relation = self.database.relation(predicate)
        if relation is None or relation.arity != arity:
            return ()
        return relation.candidates(bound)

    def condition_holds(self, atom):
        return atom in self.database

    def negation_holds(self, atom):
        return atom not in self.database

    def event_candidates(self, op, predicate, arity, bound):
        return ()

    def event_holds(self, op, atom):
        return False

    def estimate(self, predicate):
        return self.database.count(predicate)

    # -- row-level fast paths ----------------------------------------------------

    def condition_candidates_key(self, predicate, arity, columns, key):
        relation = self.database.relation(predicate)
        if relation is None or relation.arity != arity:
            return ()
        return relation.candidates_key(columns, key)

    def event_candidates_key(self, op, predicate, arity, columns, key):
        return ()

    def condition_holds_row(self, predicate, arity, row):
        return self.database.has_row(predicate, arity, row)

    def negation_holds_row(self, predicate, arity, row):
        return not self.database.has_row(predicate, arity, row)

    def event_holds_row(self, op, predicate, arity, row):
        return False

    def register_lookup(self, predicate, arity, columns):
        self.database.register_lookup(predicate, arity, columns)


class AtomSetView(FactsView):
    """Closed-world view over a plain set/frozenset of ground atoms.

    Convenient for tests and for one-shot queries where building a full
    :class:`Database` (with indexes) would cost more than the scan.
    """

    __slots__ = (
        "_atoms",
        "_by_predicate",
        "_row_sets",
        "_native_rows",
        "_native_sets",
        "_counts",
    )

    def __init__(self, atoms):
        self._atoms = frozenset(atoms)
        self._by_predicate = {}
        for atom in self._atoms:
            self._by_predicate.setdefault(atom.signature(), []).append(
                atom.value_tuple()
            )
        self._row_sets = {
            signature: frozenset(rows)
            for signature, rows in self._by_predicate.items()
        }
        # The row-level dialect serves storage-native rows: id-encoded
        # copies under the columnar layout, aliases of the raw structures
        # under the row layout.
        if get_storage_backend() == "columnar":
            encode = INTERNER.encode_row
            self._native_rows = {
                signature: [encode(row) for row in rows]
                for signature, rows in self._by_predicate.items()
            }
            self._native_sets = {
                signature: frozenset(rows)
                for signature, rows in self._native_rows.items()
            }
        else:
            self._native_rows = self._by_predicate
            self._native_sets = self._row_sets
        # Per-predicate-name totals, so estimate() is a dict hit instead of
        # an O(#signatures) scan per call (the planner may consult it once
        # per body literal per compile).
        self._counts = {}
        for (name, _arity), rows in self._by_predicate.items():
            self._counts[name] = self._counts.get(name, 0) + len(rows)

    def condition_candidates(self, predicate, arity, bound):
        rows = self._by_predicate.get((predicate, arity), ())
        if not bound:
            return rows
        if len(bound) == arity:
            # Fully bound: answer with one membership test instead of a scan.
            row = tuple(bound[column] for column in range(arity))
            row_set = self._row_sets.get((predicate, arity), frozenset())
            return (row,) if row in row_set else ()
        return (
            row for row in rows if all(row[c] == v for c, v in bound.items())
        )

    def condition_holds(self, atom):
        return atom in self._atoms

    def negation_holds(self, atom):
        return atom not in self._atoms

    def event_candidates(self, op, predicate, arity, bound):
        return ()

    def event_holds(self, op, atom):
        return False

    def estimate(self, predicate):
        return self._counts.get(predicate, 0)

    # -- row-level fast paths ----------------------------------------------------

    def condition_candidates_key(self, predicate, arity, columns, key):
        rows = self._native_rows.get((predicate, arity), ())
        if not columns:
            return rows
        if len(columns) == arity:
            # columns is sorted and distinct, so key is the row itself.
            row_set = self._native_sets.get((predicate, arity), frozenset())
            return (key,) if key in row_set else ()
        pairs = tuple(zip(columns, key))
        return (
            row for row in rows if all(row[c] == v for c, v in pairs)
        )

    def condition_holds_row(self, predicate, arity, row):
        return row in self._native_sets.get((predicate, arity), frozenset())

    def negation_holds_row(self, predicate, arity, row):
        return row not in self._native_sets.get((predicate, arity), frozenset())

    def event_candidates_key(self, op, predicate, arity, columns, key):
        return ()

    def event_holds_row(self, op, predicate, arity, row):
        return False
