"""Fact views: the interface between the matcher and a fact source.

The body-matching engine is shared between the PARK semantics (matching
against an i-interpretation with the paper's validity rules) and the
baseline deductive engines (matching against a plain database under the
closed-world assumption).  A :class:`FactsView` abstracts the difference:

* ``condition_candidates`` / ``condition_holds`` realize validity of
  *positive* condition literals;
* ``negation_holds`` realizes validity of *negated* condition literals;
* ``event_candidates`` / ``event_holds`` realize validity of *event*
  literals (``+a`` / ``-a`` in rule bodies; Section 4.3).

Candidate methods return raw value tuples consistent with the bound columns
(a superset is permitted — the matcher re-checks bindings), which lets
implementations serve them straight from hash indexes.
"""

from __future__ import annotations



class FactsView:
    """Abstract fact source for the matcher.  Subclasses override all methods."""

    def condition_candidates(self, predicate, arity, bound):
        """Rows that could make a positive condition on *predicate* valid.

        *bound* maps column index to a constant value; returned rows must
        include every row matching those bindings (supersets allowed).
        """
        raise NotImplementedError

    def condition_holds(self, atom):
        """Whether the positive condition literal on ground *atom* is valid."""
        raise NotImplementedError

    def negation_holds(self, atom):
        """Whether the negated condition literal ``not atom`` is valid."""
        raise NotImplementedError

    def event_candidates(self, op, predicate, arity, bound):
        """Rows that could make the event literal ``±predicate(...)`` valid."""
        raise NotImplementedError

    def event_holds(self, op, atom):
        """Whether the event literal ``±atom`` is valid for ground *atom*."""
        raise NotImplementedError

    def estimate(self, predicate):
        """A size estimate for *predicate*, used by the join planner."""
        return 0


class DatabaseView(FactsView):
    """Closed-world view over a plain :class:`~repro.storage.database.Database`.

    Positive conditions are membership, negation is absence, and event
    literals are never valid (a plain database has no pending updates).
    Used by the deductive baselines.
    """

    __slots__ = ("database",)

    def __init__(self, database):
        self.database = database

    def condition_candidates(self, predicate, arity, bound):
        relation = self.database.relation(predicate)
        if relation is None or relation.arity != arity:
            return ()
        return relation.candidates(bound)

    def condition_holds(self, atom):
        return atom in self.database

    def negation_holds(self, atom):
        return atom not in self.database

    def event_candidates(self, op, predicate, arity, bound):
        return ()

    def event_holds(self, op, atom):
        return False

    def estimate(self, predicate):
        return self.database.count(predicate)


class AtomSetView(FactsView):
    """Closed-world view over a plain set/frozenset of ground atoms.

    Convenient for tests and for one-shot queries where building a full
    :class:`Database` (with indexes) would cost more than the scan.
    """

    __slots__ = ("_atoms", "_by_predicate", "_row_sets")

    def __init__(self, atoms):
        self._atoms = frozenset(atoms)
        self._by_predicate = {}
        for atom in self._atoms:
            self._by_predicate.setdefault(atom.signature(), []).append(
                atom.value_tuple()
            )
        self._row_sets = {
            signature: frozenset(rows)
            for signature, rows in self._by_predicate.items()
        }

    def condition_candidates(self, predicate, arity, bound):
        rows = self._by_predicate.get((predicate, arity), ())
        if not bound:
            return rows
        if len(bound) == arity:
            # Fully bound: answer with one membership test instead of a scan.
            row = tuple(bound[column] for column in range(arity))
            row_set = self._row_sets.get((predicate, arity), frozenset())
            return (row,) if row in row_set else ()
        return (
            row for row in rows if all(row[c] == v for c, v in bound.items())
        )

    def condition_holds(self, atom):
        return atom in self._atoms

    def negation_holds(self, atom):
        return atom not in self._atoms

    def event_candidates(self, op, predicate, arity, bound):
        return ()

    def event_holds(self, op, atom):
        return False

    def estimate(self, predicate):
        total = 0
        for (name, _arity), rows in self._by_predicate.items():
            if name == predicate:
                total += len(rows)
        return total
