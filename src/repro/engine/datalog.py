"""Positive-datalog least-fixpoint evaluation (naive and semi-naive).

This is the classical deductive substrate the paper builds on: for a
program whose rules are insert-only with positive bodies, the PARK
semantics, the inflationary semantics, and the minimal-model (least
fixpoint) semantics all agree.  We implement both the naive strategy
(re-derive everything each round) and the semi-naive strategy (each round
requires at least one body literal to match a newly derived fact), used as
an evaluation ablation (`benchmarks/bench_matching.py`) and as the engine
behind the stratified and well-founded baselines.
"""

from __future__ import annotations

from ..errors import EngineError
from ..lang.literals import Condition
from .match import fireable_heads, match_rule
from .views import DatabaseView


def _require_positive_insert_only(program):
    for rule in program:
        if not rule.head.is_insert:
            raise EngineError(
                "datalog evaluation requires insert-only heads; rule %s deletes"
                % rule.describe()
            )
        for literal in rule.body:
            if not isinstance(literal, Condition) or not literal.positive:
                raise EngineError(
                    "datalog evaluation requires positive bodies; rule %s has %s"
                    % (rule.describe(), literal)
                )


def naive_least_fixpoint(program, database, max_rounds=None):
    """Least fixpoint of a positive insert-only program by naive iteration.

    Returns a new :class:`Database`; the input is not modified.
    """
    _require_positive_insert_only(program)
    current = database.copy()
    view = DatabaseView(current)
    rounds = 0
    while True:
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            raise EngineError("naive evaluation exceeded %d rounds" % max_rounds)
        new_atoms = []
        for rule in program:
            for update in fireable_heads(rule, view):
                if update.atom not in current:
                    new_atoms.append(update.atom)
        if not new_atoms:
            return current
        for atom in new_atoms:
            current.add(atom)


def seminaive_least_fixpoint(program, database, max_rounds=None):
    """Least fixpoint by semi-naive iteration.

    Each round only fires rule instances in which at least one body literal
    matches a fact that is *new* as of the previous round.  We realize the
    standard rewriting — for a rule with ``k`` positive literals, evaluate
    ``k`` variants, the *i*-th serving literal ``i`` from the delta — by
    rebuilding each variant rule with the delta literal's predicate renamed
    into a shadow relation.
    """
    _require_positive_insert_only(program)
    from ..lang.atoms import Atom
    from ..lang.program import Program
    from ..lang.rules import Rule

    delta_prefix = "__delta__"
    current = database.copy()
    delta_atoms = set(current.atoms())
    rounds = 0

    # Precompute the rewritten variants of each rule.
    variants = []  # (variant_rule, original_rule)
    for rule in program:
        body = rule.body
        for index, literal in enumerate(body):
            shadow_atom = Atom(delta_prefix + literal.atom.predicate, literal.atom.terms)
            shadow_literal = Condition(shadow_atom, positive=True)
            new_body = body[:index] + (shadow_literal,) + body[index + 1 :]
            variants.append(Rule(head=rule.head, body=new_body, name=None))

    while True:
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            raise EngineError("semi-naive evaluation exceeded %d rounds" % max_rounds)

        # Stage the delta into shadow relations alongside the full data.
        staging = current.copy()
        for atom in delta_atoms:
            staging.add(Atom(delta_prefix + atom.predicate, atom.terms))
        view = DatabaseView(staging)

        new_atoms = set()
        for variant in variants:
            for update in fireable_heads(variant, view):
                if update.atom not in current and update.atom not in new_atoms:
                    new_atoms.add(update.atom)

        if not new_atoms:
            return current
        for atom in new_atoms:
            current.add(atom)
        delta_atoms = new_atoms


def query(program, database, goal_atom):
    """All substitutions answering *goal_atom* in the least fixpoint.

    Convenience helper: evaluates the program, then matches the goal.
    """
    from ..lang.rules import Rule
    from ..lang.updates import Update, UpdateOp

    fixpoint = seminaive_least_fixpoint(program, database)
    probe = Rule(
        head=Update(UpdateOp.INSERT, goal_atom),
        body=(Condition(goal_atom, positive=True),),
    )
    return sorted(match_rule(probe, DatabaseView(fixpoint)), key=str)
