"""Lexer for the textual rule language.

Token kinds::

    IDENT     lower-case identifier:  emp, payroll, q
    VAR       variable:               X, Salary, _tmp
    INT       integer literal:        42, -7 is MINUS INT
    STRING    quoted constant:        "New York", 'a b'
              escapes: \" \' \\ \n \r \t (raw newlines are rejected)
    LPAREN RPAREN COMMA PERIOD ARROW PLUS MINUS AT NOT
    EOF

Comments run from ``#`` or ``%`` to end of line.  Both comment leaders are
accepted because datalog corpora conventionally use ``%`` while Python users
expect ``#``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParseError

IDENT = "IDENT"
VAR = "VAR"
INT = "INT"
STRING = "STRING"
LPAREN = "LPAREN"
RPAREN = "RPAREN"
COMMA = "COMMA"
PERIOD = "PERIOD"
ARROW = "ARROW"
PLUS = "PLUS"
MINUS = "MINUS"
AT = "AT"
NOT = "NOT"
EOF = "EOF"

_SINGLE_CHAR_TOKENS = {
    "(": LPAREN,
    ")": RPAREN,
    ",": COMMA,
    ".": PERIOD,
    "+": PLUS,
    "@": AT,
}


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position (1-based)."""

    kind: str
    text: str
    line: int
    column: int

    def __str__(self):
        return "%s(%r)" % (self.kind, self.text)


class Lexer:
    """Converts rule-language source text into a list of tokens."""

    def __init__(self, text):
        self._text = text
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokens(self):
        """Tokenize the entire input, ending with an EOF token."""
        result = []
        while True:
            token = self._next_token()
            result.append(token)
            if token.kind == EOF:
                return result

    # -- internals -----------------------------------------------------------

    def _error(self, message):
        raise ParseError(message, self._line, self._column)

    def _peek(self, offset=0):
        index = self._pos + offset
        if index < len(self._text):
            return self._text[index]
        return ""

    def _advance(self, count=1):
        for _ in range(count):
            if self._pos >= len(self._text):
                return
            if self._text[self._pos] == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
            self._pos += 1

    def _skip_trivia(self):
        while self._pos < len(self._text):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char in "#%":
                while self._pos < len(self._text) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _next_token(self):
        self._skip_trivia()
        line, column = self._line, self._column
        char = self._peek()

        if not char:
            return Token(EOF, "", line, column)

        if char == "-":
            if self._peek(1) == ">":
                self._advance(2)
                return Token(ARROW, "->", line, column)
            self._advance()
            return Token(MINUS, "-", line, column)

        if char in _SINGLE_CHAR_TOKENS:
            self._advance()
            return Token(_SINGLE_CHAR_TOKENS[char], char, line, column)

        if char in "\"'":
            return self._string(char, line, column)

        if char.isdigit():
            return self._integer(line, column)

        if char.isalpha() or char == "_":
            return self._word(line, column)

        self._error("unexpected character %r" % char)

    _STRING_ESCAPES = {"n": "\n", "r": "\r", "t": "\t"}

    def _string(self, quote, line, column):
        self._advance()  # opening quote
        chars = []
        while True:
            char = self._peek()
            if not char or char == "\n":
                raise ParseError("unterminated string literal", line, column)
            if char == quote:
                self._advance()
                return Token(STRING, "".join(chars), line, column)
            if char == "\\":
                escaped = self._peek(1)
                if escaped in (quote, "\\"):
                    chars.append(escaped)
                    self._advance(2)
                    continue
                if escaped in self._STRING_ESCAPES:
                    chars.append(self._STRING_ESCAPES[escaped])
                    self._advance(2)
                    continue
            chars.append(char)
            self._advance()

    def _integer(self, line, column):
        chars = []
        while self._peek().isdigit():
            chars.append(self._peek())
            self._advance()
        if self._peek().isalpha() or self._peek() == "_":
            self._error("identifier cannot start with a digit")
        return Token(INT, "".join(chars), line, column)

    def _word(self, line, column):
        chars = []
        while self._peek().isalnum() or self._peek() == "_":
            chars.append(self._peek())
            self._advance()
        text = "".join(chars)
        if text == "not":
            return Token(NOT, text, line, column)
        if text[0].isupper() or text[0] == "_":
            return Token(VAR, text, line, column)
        return Token(IDENT, text, line, column)


def tokenize(text):
    """Tokenize *text*, returning a list of :class:`Token` ending with EOF."""
    return Lexer(text).tokens()
