"""Atoms: a predicate symbol applied to a tuple of terms.

A *ground* atom (one without variables) is the unit of storage: a database
instance ``D`` is a set of ground atoms, and the extended Herbrand base of
the PARK semantics consists of ground atoms together with their ``+``/``-``
marked variants (see :mod:`repro.core.interpretation`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .terms import Constant, Term, Variable, make_term


@dataclass(frozen=True, order=True)
class Atom:
    """An atom ``predicate(t1, ..., tn)``.

    ``terms`` may mix variables and constants.  Atoms are immutable and
    hashable; equality is structural.  A zero-ary atom (``n == 0``) is a
    propositional symbol such as ``p`` in the paper's Section 5 examples.
    """

    predicate: str
    terms: Tuple[Term, ...] = ()

    def __post_init__(self):
        if not self.predicate:
            raise ValueError("predicate name must be non-empty")
        if not isinstance(self.terms, tuple):
            object.__setattr__(self, "terms", tuple(self.terms))
        for term in self.terms:
            if not isinstance(term, (Variable, Constant)):
                raise TypeError("atom argument %r is not a term" % (term,))

    def __hash__(self):
        # Cached: ground atoms live in the database sets and the blocked-set
        # machinery, so they are hashed far more often than constructed.
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash((self.predicate, self.terms))
            object.__setattr__(self, "_hash", h)
        return h

    @property
    def arity(self):
        """Number of argument positions."""
        return len(self.terms)

    def is_ground(self):
        """True iff the atom contains no variables."""
        return not any(isinstance(t, Variable) for t in self.terms)

    def variables(self):
        """The set of variables occurring in this atom."""
        return {t for t in self.terms if isinstance(t, Variable)}

    def constants(self):
        """The set of constants occurring in this atom."""
        return {t for t in self.terms if isinstance(t, Constant)}

    def substitute(self, substitution):
        """Apply *substitution* (a mapping ``Variable -> Term``) to this atom.

        Unbound variables are left in place, so partial substitutions are
        allowed; :meth:`ground` is the strict variant.
        """
        if not self.terms:
            return self
        new_terms = tuple(
            substitution.get(t, t) if isinstance(t, Variable) else t for t in self.terms
        )
        if new_terms == self.terms:
            return self
        return Atom(self.predicate, new_terms)

    def ground(self, substitution):
        """Apply *substitution* and verify the result is ground.

        Raises :class:`ValueError` if any variable remains unbound — the
        safety conditions guarantee this never happens for valid rule bodies.
        """
        grounded = self.substitute(substitution)
        if not grounded.is_ground():
            unbound = sorted(v.name for v in grounded.variables())
            raise ValueError(
                "atom %s not ground after substitution; unbound: %s"
                % (grounded, ", ".join(unbound))
            )
        return grounded

    def signature(self):
        """The ``(predicate, arity)`` pair identifying this atom's relation."""
        return (self.predicate, len(self.terms))

    def value_tuple(self):
        """The tuple of raw constant values; requires the atom to be ground.

        Used by the storage layer, which stores plain value tuples rather
        than :class:`Constant` wrappers.  Cached: membership tests convert
        the same atoms every Γ round.
        """
        row = self.__dict__.get("_row")
        if row is None:
            values = []
            for term in self.terms:
                if isinstance(term, Variable):
                    raise ValueError(
                        "value_tuple() requires a ground atom, got %s" % self
                    )
                values.append(term.value)
            row = tuple(values)
            object.__setattr__(self, "_row", row)
        return row

    def __str__(self):
        if not self.terms:
            return self.predicate
        return "%s(%s)" % (self.predicate, ", ".join(str(t) for t in self.terms))


def atom(predicate, *args):
    """Convenience constructor coercing raw Python values into terms.

    >>> str(atom("edge", "X", "b"))
    'edge(X, b)'
    >>> atom("p").arity
    0
    """
    return Atom(predicate, tuple(make_term(a) for a in args))
