"""Recursive-descent parser for the textual rule language.

Grammar (EBNF)::

    program    := statement* EOF
    statement  := annotation* rule
    annotation := '@' 'name'     '(' IDENT ')'
                | '@' 'priority' '(' ['-'] INT ')'
    rule       := [ body ] '->' head '.'
    body       := literal ( ',' literal )*
    literal    := 'not' atom            (negated condition)
                | '+' atom              (insert event)
                | '-' atom              (delete event)
                | atom                  (positive condition)
    head       := ('+' | '-') atom
    atom       := IDENT [ '(' term ( ',' term )* ')' ]
    term       := IDENT | VAR | INT | '-' INT | STRING

    database   := fact* EOF
    fact       := atom '.'              (must be ground)

Examples::

    # delete stale payroll records (paper, Section 2)
    @name(cleanup)
    emp(X), not active(X), payroll(X, Salary) -> -payroll(X, Salary).

    # a transaction update, as a bodyless rule (paper, Section 4.3)
    -> +q(b).

Every error raised while parsing carries a source position: syntax errors
are :class:`~repro.errors.ParseError` as before, and rule-safety,
duplicate-name, and arity errors (which the language objects raise
without location) are re-raised with a ``line L, column C:`` prefix and
``.line``/``.column`` attributes pointing at the offending statement.

For analysis tools, :func:`parse_source` parses *leniently*: instead of
raising it collects every problem as a located
:class:`~repro.lang.source.SourceIssue`, resynchronises after syntax
errors at the next ``.``, builds safety-violating rules unchecked so
later passes can still inspect them, and returns a
:class:`~repro.lang.source.ParsedSource` with per-rule
:class:`~repro.lang.source.RuleSpans`.
"""

from __future__ import annotations

from ..errors import ArityError, LanguageError, ParseError, SafetyError
from . import lexer as lex
from .atoms import Atom
from .literals import Condition, Event
from .program import Program
from .rules import Rule
from .source import (
    ARITY,
    DUPLICATE_NAME,
    SAFETY,
    SYNTAX,
    ParsedSource,
    RuleSpans,
    SourceIssue,
    Span,
)
from .terms import Constant, Variable
from .updates import Update, UpdateOp


def _token_span(token):
    return Span(
        token.line,
        token.column,
        token.line,
        token.column + max(len(token.text), 1),
    )


def _located(error, span):
    """Re-raise helper: the same error class with a source-position prefix."""
    relocated = type(error)("%s: %s" % (span, error))
    relocated.line = span.line
    relocated.column = span.column
    return relocated


class Parser:
    """Parses tokens produced by :mod:`repro.lang.lexer`."""

    def __init__(self, text):
        self._tokens = lex.tokenize(text)
        self._index = 0

    # -- token plumbing ------------------------------------------------------

    def _peek(self):
        return self._tokens[self._index]

    def _previous(self):
        return self._tokens[max(self._index - 1, 0)]

    def _advance(self):
        token = self._tokens[self._index]
        if token.kind != lex.EOF:
            self._index += 1
        return token

    def _expect(self, kind, what=None):
        token = self._peek()
        if token.kind != kind:
            wanted = what or kind
            raise ParseError(
                "expected %s, found %s" % (wanted, token), token.line, token.column
            )
        return self._advance()

    def _at(self, kind):
        return self._peek().kind == kind

    def _span_from(self, start_token):
        """The span from *start_token* through the last consumed token."""
        end = self._previous()
        if end.line < start_token.line or (
            end.line == start_token.line and end.column < start_token.column
        ):
            end = start_token
        return Span(
            start_token.line,
            start_token.column,
            end.line,
            end.column + max(len(end.text), 1),
        )

    # -- entry points ----------------------------------------------------------

    def parse_program(self):
        """Parse a whole rule program.

        Safety, duplicate-name, and arity errors are raised with the
        offending statement's source position attached.
        """
        rules = []
        schema = _SchemaTracker()
        while not self._at(lex.EOF):
            rule, spans = self._statement()
            schema.check(rule, spans)
            rules.append(rule)
        return Program(tuple(rules))

    def parse_source(self):
        """Parse leniently, collecting issues instead of raising.

        Returns a :class:`~repro.lang.source.ParsedSource`.  Statements
        with syntax errors are skipped (parsing resumes after the next
        ``.``); unsafe rules are built unchecked and reported as
        ``safety`` issues; duplicate names and arity clashes become
        ``duplicate-name`` / ``arity`` issues.
        """
        from dataclasses import replace

        rules = []
        spans = []
        issues = []
        schema = _SchemaTracker(issues=issues)
        while not self._at(lex.EOF):
            before = len(issues)
            try:
                rule, rule_spans = self._statement(issues=issues)
            except ParseError as error:
                issues.append(
                    SourceIssue(
                        kind=SYNTAX,
                        message=str(error),
                        span=_token_span(self._peek())
                        if error.line is None
                        else Span(error.line, error.column, error.line, error.column + 1),
                    )
                )
                self._synchronize()
                continue
            index = len(rules)
            for position in range(before, len(issues)):
                if issues[position].rule_index is None:
                    issues[position] = replace(issues[position], rule_index=index)
            schema.check(rule, rule_spans, rule_index=index)
            rules.append(rule)
            spans.append(rule_spans)
        return ParsedSource(
            rules=tuple(rules), spans=tuple(spans), issues=tuple(issues)
        )

    def _synchronize(self):
        """Skip past the next ``.`` so lenient parsing can resume."""
        while not self._at(lex.EOF):
            token = self._advance()
            if token.kind == lex.PERIOD:
                return

    def parse_rule(self):
        """Parse exactly one rule (annotations allowed); reject trailing input."""
        parsed, _spans = self._statement()
        token = self._peek()
        if token.kind != lex.EOF:
            raise ParseError(
                "unexpected input after rule: %s" % token, token.line, token.column
            )
        return parsed

    def parse_database(self):
        """Parse a list of ground facts into a set of atoms."""
        facts = set()
        while not self._at(lex.EOF):
            fact = self._atom()
            token = self._expect(lex.PERIOD, "'.' after fact")
            if not fact.is_ground():
                raise ParseError(
                    "database fact %s contains variables" % fact,
                    token.line,
                    token.column,
                )
            facts.add(fact)
        return facts

    # -- grammar productions -----------------------------------------------------

    def _statement(self, issues=None):
        start = self._peek()
        name = None
        priority = None
        while self._at(lex.AT):
            key, value = self._annotation()
            if key == "name":
                name = value
            else:
                priority = value

        body = ()
        body_spans = ()
        if not self._at(lex.ARROW):
            body, body_spans = self._body()
        self._expect(lex.ARROW, "'->'")
        head_start = self._peek()
        head = self._head()
        head_span = self._span_from(head_start)
        self._expect(lex.PERIOD, "'.' at end of rule")
        spans = RuleSpans(
            rule=self._span_from(start), head=head_span, body=body_spans
        )
        try:
            rule = Rule(head=head, body=body, name=name, priority=priority)
        except SafetyError as error:
            if issues is None:
                raise _located(error, spans.rule) from error
            issues.append(
                SourceIssue(
                    kind=SAFETY,
                    message=str(error),
                    span=spans.rule,
                    rule_index=None,  # filled by caller ordering; index == len(rules)
                )
            )
            rule = Rule.__new_unchecked__(head, body, name, priority)
        return rule, spans

    def _annotation(self):
        self._expect(lex.AT)
        key_token = self._expect(lex.IDENT, "annotation name")
        if key_token.text not in ("name", "priority"):
            raise ParseError(
                "unknown annotation @%s (expected @name or @priority)"
                % key_token.text,
                key_token.line,
                key_token.column,
            )
        self._expect(lex.LPAREN)
        if key_token.text == "name":
            value_token = self._expect(lex.IDENT, "rule name")
            value = value_token.text
        else:
            negative = False
            if self._at(lex.MINUS):
                self._advance()
                negative = True
            value_token = self._expect(lex.INT, "integer priority")
            value = int(value_token.text)
            if negative:
                value = -value
        self._expect(lex.RPAREN)
        return key_token.text, value

    def _body(self):
        start = self._peek()
        literals = [self._literal()]
        spans = [self._span_from(start)]
        while self._at(lex.COMMA):
            self._advance()
            start = self._peek()
            literals.append(self._literal())
            spans.append(self._span_from(start))
        return tuple(literals), tuple(spans)

    def _literal(self):
        if self._at(lex.NOT):
            self._advance()
            return Condition(self._atom(), positive=False)
        if self._at(lex.PLUS):
            self._advance()
            return Event(Update(UpdateOp.INSERT, self._atom()))
        if self._at(lex.MINUS):
            token = self._peek()
            self._advance()
            if not self._at(lex.IDENT):
                raise ParseError(
                    "expected atom after '-' event marker", token.line, token.column
                )
            return Event(Update(UpdateOp.DELETE, self._atom()))
        return Condition(self._atom(), positive=True)

    def _head(self):
        if self._at(lex.PLUS):
            self._advance()
            return Update(UpdateOp.INSERT, self._atom())
        if self._at(lex.MINUS):
            self._advance()
            return Update(UpdateOp.DELETE, self._atom())
        token = self._peek()
        raise ParseError(
            "rule head must start with '+' or '-'", token.line, token.column
        )

    def _atom(self):
        predicate = self._expect(lex.IDENT, "predicate name").text
        if not self._at(lex.LPAREN):
            return Atom(predicate)
        self._advance()
        terms = [self._term()]
        while self._at(lex.COMMA):
            self._advance()
            terms.append(self._term())
        self._expect(lex.RPAREN, "')'")
        return Atom(predicate, tuple(terms))

    def _term(self):
        token = self._peek()
        if token.kind == lex.IDENT:
            self._advance()
            return Constant(token.text)
        if token.kind == lex.VAR:
            self._advance()
            return Variable(token.text)
        if token.kind == lex.STRING:
            self._advance()
            return Constant(token.text)
        if token.kind == lex.INT:
            self._advance()
            return Constant(int(token.text))
        if token.kind == lex.MINUS:
            self._advance()
            number = self._expect(lex.INT, "integer after '-'")
            return Constant(-int(number.text))
        raise ParseError("expected a term, found %s" % token, token.line, token.column)


class _SchemaTracker:
    """Program-level validation (names, arities) with source positions.

    The :class:`~repro.lang.program.Program` constructor performs the same
    checks but can only say *what* clashed; tracking while parsing lets us
    also say *where*.  With ``issues`` the clash is recorded (lenient
    mode); without, the matching strict error is raised, located.
    """

    def __init__(self, issues=None):
        self.issues = issues
        self._names = {}
        self._arities = {}

    def _report(self, error, kind, span, rule_index):
        if self.issues is None:
            raise _located(error, span) from None
        self.issues.append(
            SourceIssue(
                kind=kind, message=str(error), span=span, rule_index=rule_index
            )
        )

    def check(self, rule, spans, rule_index=None):
        if rule.name is not None:
            if rule.name in self._names:
                self._report(
                    LanguageError("duplicate rule name: %r" % rule.name),
                    DUPLICATE_NAME,
                    spans.rule,
                    rule_index,
                )
            else:
                self._names[rule.name] = spans.rule
        sites = [(rule.head.atom, spans.head)]
        for position, literal in enumerate(rule.body):
            sites.append((literal.atom, spans.literal(position)))
        for atom, span in sites:
            predicate, arity = atom.signature()
            known = self._arities.get(predicate)
            if known is None:
                self._arities[predicate] = arity
            elif known != arity:
                self._report(
                    ArityError(
                        "predicate %r used with arities %d and %d"
                        % (predicate, known, arity)
                    ),
                    ARITY,
                    span,
                    rule_index,
                )


def parse_program(text):
    """Parse rule-language source text into a :class:`Program`.

    >>> p = parse_program("p(X) -> +q(X).")
    >>> len(p)
    1
    """
    return Parser(text).parse_program()


def parse_source(text):
    """Lenient parse for analysis: collect located issues, never raise.

    >>> parsed = parse_source("p(X) -> +q(Y).")
    >>> [issue.kind for issue in parsed.issues]
    ['safety']
    """
    return Parser(text).parse_source()


def parse_rule(text):
    """Parse a single rule from *text*."""
    return Parser(text).parse_rule()


def parse_database(text):
    """Parse ground facts (``p(a). q(a, b).``) into a set of atoms."""
    return Parser(text).parse_database()


def parse_atom(text):
    """Parse a single (possibly non-ground) atom from *text*."""
    parser = Parser(text)
    result = parser._atom()
    token = parser._peek()
    if token.kind != lex.EOF:
        raise ParseError(
            "unexpected input after atom: %s" % token, token.line, token.column
        )
    return result


def parse_body(text):
    """Parse a comma-separated list of body literals (no head, no period).

    Used for ad-hoc queries: ``payroll(X, S), not active(X)``.  The same
    safety discipline as rule bodies applies — negated literals may only
    use variables bound by positive/event literals — enforced by wrapping
    the body in a probe rule.
    """
    parser = Parser(text)
    if parser._at(lex.EOF):
        raise ParseError("empty query", 1, 1)
    literals, _spans = parser._body()
    token = parser._peek()
    if token.kind == lex.PERIOD:
        parser._advance()
        token = parser._peek()
    if token.kind != lex.EOF:
        raise ParseError(
            "unexpected input after query: %s" % token, token.line, token.column
        )
    return tuple(literals)
