"""Recursive-descent parser for the textual rule language.

Grammar (EBNF)::

    program    := statement* EOF
    statement  := annotation* rule
    annotation := '@' 'name'     '(' IDENT ')'
                | '@' 'priority' '(' ['-'] INT ')'
    rule       := [ body ] '->' head '.'
    body       := literal ( ',' literal )*
    literal    := 'not' atom            (negated condition)
                | '+' atom              (insert event)
                | '-' atom              (delete event)
                | atom                  (positive condition)
    head       := ('+' | '-') atom
    atom       := IDENT [ '(' term ( ',' term )* ')' ]
    term       := IDENT | VAR | INT | '-' INT | STRING

    database   := fact* EOF
    fact       := atom '.'              (must be ground)

Examples::

    # delete stale payroll records (paper, Section 2)
    @name(cleanup)
    emp(X), not active(X), payroll(X, Salary) -> -payroll(X, Salary).

    # a transaction update, as a bodyless rule (paper, Section 4.3)
    -> +q(b).
"""

from __future__ import annotations

from ..errors import ParseError
from . import lexer as lex
from .atoms import Atom
from .literals import Condition, Event
from .program import Program
from .rules import Rule
from .terms import Constant, Variable
from .updates import Update, UpdateOp


class Parser:
    """Parses tokens produced by :mod:`repro.lang.lexer`."""

    def __init__(self, text):
        self._tokens = lex.tokenize(text)
        self._index = 0

    # -- token plumbing ------------------------------------------------------

    def _peek(self):
        return self._tokens[self._index]

    def _advance(self):
        token = self._tokens[self._index]
        if token.kind != lex.EOF:
            self._index += 1
        return token

    def _expect(self, kind, what=None):
        token = self._peek()
        if token.kind != kind:
            wanted = what or kind
            raise ParseError(
                "expected %s, found %s" % (wanted, token), token.line, token.column
            )
        return self._advance()

    def _at(self, kind):
        return self._peek().kind == kind

    # -- entry points ----------------------------------------------------------

    def parse_program(self):
        """Parse a whole rule program."""
        rules = []
        while not self._at(lex.EOF):
            rules.append(self._statement())
        return Program(tuple(rules))

    def parse_rule(self):
        """Parse exactly one rule (annotations allowed); reject trailing input."""
        parsed = self._statement()
        token = self._peek()
        if token.kind != lex.EOF:
            raise ParseError(
                "unexpected input after rule: %s" % token, token.line, token.column
            )
        return parsed

    def parse_database(self):
        """Parse a list of ground facts into a set of atoms."""
        facts = set()
        while not self._at(lex.EOF):
            fact = self._atom()
            token = self._expect(lex.PERIOD, "'.' after fact")
            if not fact.is_ground():
                raise ParseError(
                    "database fact %s contains variables" % fact,
                    token.line,
                    token.column,
                )
            facts.add(fact)
        return facts

    # -- grammar productions -----------------------------------------------------

    def _statement(self):
        name = None
        priority = None
        while self._at(lex.AT):
            key, value = self._annotation()
            if key == "name":
                name = value
            else:
                priority = value

        body = ()
        if not self._at(lex.ARROW):
            body = self._body()
        self._expect(lex.ARROW, "'->'")
        head = self._head()
        self._expect(lex.PERIOD, "'.' at end of rule")
        return Rule(head=head, body=body, name=name, priority=priority)

    def _annotation(self):
        self._expect(lex.AT)
        key_token = self._expect(lex.IDENT, "annotation name")
        if key_token.text not in ("name", "priority"):
            raise ParseError(
                "unknown annotation @%s (expected @name or @priority)"
                % key_token.text,
                key_token.line,
                key_token.column,
            )
        self._expect(lex.LPAREN)
        if key_token.text == "name":
            value_token = self._expect(lex.IDENT, "rule name")
            value = value_token.text
        else:
            negative = False
            if self._at(lex.MINUS):
                self._advance()
                negative = True
            value_token = self._expect(lex.INT, "integer priority")
            value = int(value_token.text)
            if negative:
                value = -value
        self._expect(lex.RPAREN)
        return key_token.text, value

    def _body(self):
        literals = [self._literal()]
        while self._at(lex.COMMA):
            self._advance()
            literals.append(self._literal())
        return tuple(literals)

    def _literal(self):
        if self._at(lex.NOT):
            self._advance()
            return Condition(self._atom(), positive=False)
        if self._at(lex.PLUS):
            self._advance()
            return Event(Update(UpdateOp.INSERT, self._atom()))
        if self._at(lex.MINUS):
            token = self._peek()
            self._advance()
            if not self._at(lex.IDENT):
                raise ParseError(
                    "expected atom after '-' event marker", token.line, token.column
                )
            return Event(Update(UpdateOp.DELETE, self._atom()))
        return Condition(self._atom(), positive=True)

    def _head(self):
        if self._at(lex.PLUS):
            self._advance()
            return Update(UpdateOp.INSERT, self._atom())
        if self._at(lex.MINUS):
            self._advance()
            return Update(UpdateOp.DELETE, self._atom())
        token = self._peek()
        raise ParseError(
            "rule head must start with '+' or '-'", token.line, token.column
        )

    def _atom(self):
        predicate = self._expect(lex.IDENT, "predicate name").text
        if not self._at(lex.LPAREN):
            return Atom(predicate)
        self._advance()
        terms = [self._term()]
        while self._at(lex.COMMA):
            self._advance()
            terms.append(self._term())
        self._expect(lex.RPAREN, "')'")
        return Atom(predicate, tuple(terms))

    def _term(self):
        token = self._peek()
        if token.kind == lex.IDENT:
            self._advance()
            return Constant(token.text)
        if token.kind == lex.VAR:
            self._advance()
            return Variable(token.text)
        if token.kind == lex.STRING:
            self._advance()
            return Constant(token.text)
        if token.kind == lex.INT:
            self._advance()
            return Constant(int(token.text))
        if token.kind == lex.MINUS:
            self._advance()
            number = self._expect(lex.INT, "integer after '-'")
            return Constant(-int(number.text))
        raise ParseError("expected a term, found %s" % token, token.line, token.column)


def parse_program(text):
    """Parse rule-language source text into a :class:`Program`.

    >>> p = parse_program("p(X) -> +q(X).")
    >>> len(p)
    1
    """
    return Parser(text).parse_program()


def parse_rule(text):
    """Parse a single rule from *text*."""
    return Parser(text).parse_rule()


def parse_database(text):
    """Parse ground facts (``p(a). q(a, b).``) into a set of atoms."""
    return Parser(text).parse_database()


def parse_atom(text):
    """Parse a single (possibly non-ground) atom from *text*."""
    parser = Parser(text)
    result = parser._atom()
    token = parser._peek()
    if token.kind != lex.EOF:
        raise ParseError(
            "unexpected input after atom: %s" % token, token.line, token.column
        )
    return result


def parse_body(text):
    """Parse a comma-separated list of body literals (no head, no period).

    Used for ad-hoc queries: ``payroll(X, S), not active(X)``.  The same
    safety discipline as rule bodies applies — negated literals may only
    use variables bound by positive/event literals — enforced by wrapping
    the body in a probe rule.
    """
    parser = Parser(text)
    if parser._at(lex.EOF):
        raise ParseError("empty query", 1, 1)
    literals = parser._body()
    token = parser._peek()
    if token.kind == lex.PERIOD:
        parser._advance()
        token = parser._peek()
    if token.kind != lex.EOF:
        raise ParseError(
            "unexpected input after query: %s" % token, token.line, token.column
        )
    return tuple(literals)
