"""Updates: signed ground-atom operations (``+a`` insert, ``-a`` delete).

The same ``(op, atom)`` shape appears in four places in the paper, and we
use one type for all of them:

* rule heads (the *action* of a condition-action rule),
* event literals in ECA rule bodies (Section 4.3),
* transaction updates ``U`` (Section 4.3), and
* the marked elements of an i-interpretation (``+a`` / ``-a``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .atoms import Atom


class UpdateOp(enum.Enum):
    """The two update operations of the paper: insertion and deletion."""

    INSERT = "+"
    DELETE = "-"

    @property
    def sign(self):
        """The paper's prefix character, ``'+'`` or ``'-'``."""
        return self.value

    def opposite(self):
        """Insertion for deletion and vice versa."""
        return UpdateOp.DELETE if self is UpdateOp.INSERT else UpdateOp.INSERT

    def __str__(self):
        return self.value


@dataclass(frozen=True, order=True)
class Update:
    """A signed atom ``+a`` or ``-a``.

    The atom may contain variables when the update is a rule head; it must
    be ground when used as a transaction update or interpretation element.
    """

    op: UpdateOp
    atom: Atom

    def __post_init__(self):
        if not isinstance(self.op, UpdateOp):
            raise TypeError("op must be an UpdateOp, got %r" % (self.op,))
        if not isinstance(self.atom, Atom):
            raise TypeError("atom must be an Atom, got %r" % (self.atom,))
        # Plain attributes, not properties: conflict detection and the
        # i-interpretation membership tests branch on the sign for every
        # firing every round.
        insert = self.op is UpdateOp.INSERT
        object.__setattr__(self, "is_insert", insert)
        object.__setattr__(self, "is_delete", not insert)

    def __hash__(self):
        # Cached: firings dicts and i-interpretation membership tests hash
        # updates every round.
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash((self.op, self.atom))
            object.__setattr__(self, "_hash", h)
        return h

    def is_ground(self):
        return self.atom.is_ground()

    def variables(self):
        return self.atom.variables()

    def substitute(self, substitution):
        """Apply a substitution to the underlying atom."""
        new_atom = self.atom.substitute(substitution)
        if new_atom is self.atom:
            return self
        return Update(self.op, new_atom)

    def ground(self, substitution):
        """Apply a substitution and require the result to be ground."""
        return Update(self.op, self.atom.ground(substitution))

    def negated(self):
        """The conflicting update: ``+a`` for ``-a`` and vice versa."""
        return Update(self.op.opposite(), self.atom)

    def __str__(self):
        return "%s%s" % (self.op.sign, self.atom)


def insert(atom):
    """Shorthand for ``Update(UpdateOp.INSERT, atom)``."""
    return Update(UpdateOp.INSERT, atom)


def delete(atom):
    """Shorthand for ``Update(UpdateOp.DELETE, atom)``."""
    return Update(UpdateOp.DELETE, atom)
