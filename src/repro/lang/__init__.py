"""The rule language: terms, atoms, literals, rules, programs, parsing.

This package implements the syntax of Section 2 of the paper (active rules
with safety conditions) plus the event literals of Section 4.3, a concrete
text syntax with a parser and pretty-printer, and a fluent Python builder.
"""

from .atoms import Atom, atom
from .builder import Pred, RuleBuilder, rules, when
from .literals import Condition, Event, Literal, neg, on_delete, on_insert, pos
from .parser import (
    parse_atom,
    parse_body,
    parse_database,
    parse_program,
    parse_rule,
    parse_source,
)
from .pretty import (
    render_atom,
    render_database,
    render_literal,
    render_program,
    render_rule,
    render_term,
    render_update,
)
from .program import Program, program
from .rules import Rule, rule
from .source import ParsedSource, RuleSpans, SourceIssue, Span
from .substitution import EMPTY_SUBSTITUTION, Substitution, substitution
from .terms import Constant, Term, Variable, is_constant, is_variable, make_term
from .updates import Update, UpdateOp, delete, insert

__all__ = [
    "Atom",
    "Condition",
    "Constant",
    "EMPTY_SUBSTITUTION",
    "Event",
    "Literal",
    "ParsedSource",
    "Pred",
    "Program",
    "Rule",
    "RuleBuilder",
    "RuleSpans",
    "SourceIssue",
    "Span",
    "Substitution",
    "Term",
    "Update",
    "UpdateOp",
    "Variable",
    "atom",
    "delete",
    "insert",
    "is_constant",
    "is_variable",
    "make_term",
    "neg",
    "on_delete",
    "on_insert",
    "parse_atom",
    "parse_body",
    "parse_database",
    "parse_program",
    "parse_rule",
    "parse_source",
    "pos",
    "program",
    "render_atom",
    "render_database",
    "render_literal",
    "render_program",
    "render_rule",
    "render_term",
    "render_update",
    "rule",
    "rules",
    "substitution",
    "when",
]
