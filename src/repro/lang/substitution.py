"""Immutable substitutions (variable bindings).

A *ground substitution* for a rule maps every variable of the rule to a
constant; the pair ``(rule, substitution)`` is the paper's *rule grounding*.
Substitutions must be hashable because sets of rule groundings (``ins``,
``del``, the blocked set ``B``) are first-class objects in the semantics.

Internally the matcher (:mod:`repro.engine.match`) works with plain dicts
for speed and freezes them into :class:`Substitution` objects only when a
grounding escapes into the semantics layer.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

from .terms import Constant, Term, Variable


class Substitution(Mapping):
    """An immutable, hashable mapping from variables to terms.

    Supports the full :class:`Mapping` protocol plus :meth:`bind` (extend
    with one binding), :meth:`merge` (union of compatible substitutions) and
    :meth:`restrict` (projection onto a variable set).
    """

    __slots__ = ("_bindings", "_hash", "_vars")

    def __init__(self, bindings=None):
        items: Dict[Variable, Term] = {}
        if bindings:
            for var, term in dict(bindings).items():
                if not isinstance(var, Variable):
                    raise TypeError("substitution key %r is not a Variable" % (var,))
                if not isinstance(term, (Variable, Constant)):
                    raise TypeError("substitution value %r is not a term" % (term,))
                items[var] = term
        self._bindings: Tuple[Tuple[Variable, Term], ...] = tuple(
            sorted(items.items(), key=lambda kv: kv[0].name)
        )
        self._hash = hash(self._bindings)
        self._vars = None

    @classmethod
    def _from_sorted(cls, bindings):
        """Internal fast constructor for the compiled matcher.

        *bindings* must already be a tuple of ``(Variable, Constant)`` pairs
        sorted by variable name — exactly the canonical form ``__init__``
        normalizes to — so validation and re-sorting are skipped.  Produces
        objects indistinguishable (``==``, ``hash``) from normally
        constructed ones.
        """
        self = object.__new__(cls)
        self._bindings = bindings
        self._hash = hash(bindings)
        self._vars = None
        return self

    # -- Mapping protocol --------------------------------------------------

    def __getitem__(self, var):
        for key, term in self._bindings:
            if key == var:
                return term
        raise KeyError(var)

    def __iter__(self):
        return (key for key, _ in self._bindings)

    def __len__(self):
        return len(self._bindings)

    def __contains__(self, var):
        return any(key == var for key, _ in self._bindings)

    # -- identity ----------------------------------------------------------

    def __hash__(self):
        return self._hash

    def __eq__(self, other):
        if isinstance(other, Substitution):
            return self._bindings == other._bindings
        if isinstance(other, Mapping):
            return dict(self._bindings) == dict(other)
        return NotImplemented

    # -- operations --------------------------------------------------------

    def bind(self, var, term):
        """Return a new substitution with ``var -> term`` added.

        Rebinding a variable to a *different* term raises ``ValueError``;
        rebinding to the same term returns ``self``.
        """
        existing = self.get(var)
        if existing is not None:
            if existing == term:
                return self
            raise ValueError(
                "variable %s already bound to %s, cannot rebind to %s"
                % (var, existing, term)
            )
        new = dict(self._bindings)
        new[var] = term
        return Substitution(new)

    def merge(self, other):
        """Union of two substitutions; ``None`` if they disagree on a variable."""
        merged = dict(self._bindings)
        for var, term in other.items():
            existing = merged.get(var)
            if existing is None:
                merged[var] = term
            elif existing != term:
                return None
        return Substitution(merged)

    def restrict(self, variables):
        """Projection of this substitution onto *variables*."""
        wanted = set(variables)
        return Substitution(
            {var: term for var, term in self._bindings if var in wanted}
        )

    def variable_set(self):
        """The bound variables as a frozenset (computed once, cached)."""
        if self._vars is None:
            self._vars = frozenset(key for key, _ in self._bindings)
        return self._vars

    def is_ground(self):
        """True iff every bound value is a constant."""
        return all(isinstance(term, Constant) for _, term in self._bindings)

    def covers(self, variables: Iterable[Variable]):
        """True iff every variable in *variables* is bound."""
        bound = {key for key, _ in self._bindings}
        return all(var in bound for var in variables)

    def __str__(self):
        if not self._bindings:
            return "[]"
        return "[%s]" % ", ".join(
            "%s <- %s" % (var, term) for var, term in self._bindings
        )

    def __repr__(self):
        return "Substitution({%s})" % ", ".join(
            "%r: %r" % (var, term) for var, term in self._bindings
        )


#: The empty substitution, shared.
EMPTY_SUBSTITUTION = Substitution()


def substitution(**bindings):
    """Keyword-style constructor: ``substitution(X="a", Y=3)``.

    Keys are variable names; values are coerced with
    :func:`repro.lang.terms.make_term` except that *strings always become
    constants* here (a binding value is never implicitly a variable).
    """
    from .terms import make_term

    result = {}
    for name, value in bindings.items():
        if isinstance(value, (Variable, Constant)):
            term = value
        elif isinstance(value, str):
            term = Constant(value)
        else:
            term = make_term(value)
        result[Variable(name)] = term
    return Substitution(result)
