"""Active rules ``l1, ..., ln -> ±l0`` and their safety conditions.

Section 2 of the paper imposes two safety conditions, which this module
enforces at construction time (they guarantee that every fireable rule
instance is ground and that negation by failure is well-defined):

1. every variable in the rule head also occurs in the rule body;
2. every variable in a negated body literal also occurs in some positive
   body literal.

For full ECA rules we treat event literals as *positive* occurrences for
condition 2: an event literal ``+a(X)`` is matched against the concrete set
of pending insertions, so it binds ``X`` just like a positive condition.

A rule may carry a ``name`` (used by traces, priorities and blocking
reports) and an integer ``priority`` (used by the rule-priority conflict
resolution strategy of Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import SafetyError
from .literals import Condition, Event, Literal
from .updates import Update


@dataclass(frozen=True)
class Rule:
    """An active rule: body literals implying a head update.

    An empty body is allowed: the paper models transaction updates ``U`` as
    bodyless rules ``-> +a`` / ``-> -a`` (Section 4.3).  A bodyless rule must
    have a ground head (safety condition 1 degenerates to this).
    """

    head: Update
    body: Tuple[Literal, ...] = ()
    name: Optional[str] = None
    priority: Optional[int] = None

    def __post_init__(self):
        if not isinstance(self.head, Update):
            raise TypeError("rule head must be an Update, got %r" % (self.head,))
        if not isinstance(self.body, tuple):
            object.__setattr__(self, "body", tuple(self.body))
        for literal in self.body:
            if not isinstance(literal, (Condition, Event)):
                raise TypeError("body literal %r is not a Condition or Event" % (literal,))
        if self.priority is not None and not isinstance(self.priority, int):
            raise TypeError("priority must be an int, got %r" % (self.priority,))
        self._check_safety()

    def __hash__(self):
        # Cached: rules key the matcher's compile caches and appear inside
        # every RuleGrounding hash, so the deep structural hash would
        # otherwise be recomputed once per grounding per round.  Lazy (not
        # in ``__post_init__``) because ``__new_unchecked__`` skips that.
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash((self.head, self.body, self.name, self.priority))
            object.__setattr__(self, "_hash", h)
        return h

    # -- safety ------------------------------------------------------------

    def _check_safety(self):
        binding_vars = set()
        for literal in self.body:
            if literal.binds:
                binding_vars |= literal.variables()

        head_vars = self.head.variables()
        unsafe_head = head_vars - binding_vars
        if unsafe_head:
            raise SafetyError(
                "rule %s: head variable(s) %s do not occur in the body"
                % (self.describe(), ", ".join(sorted(v.name for v in unsafe_head)))
            )

        for literal in self.body:
            if isinstance(literal, Condition) and not literal.positive:
                unsafe = literal.variables() - binding_vars
                if unsafe:
                    raise SafetyError(
                        "rule %s: variable(s) %s occur only in negated literal %s"
                        % (
                            self.describe(),
                            ", ".join(sorted(v.name for v in unsafe)),
                            literal,
                        )
                    )

    # -- structure ---------------------------------------------------------

    def variables(self):
        """All variables occurring anywhere in the rule (cached frozenset)."""
        cached = self.__dict__.get("_variables")
        if cached is None:
            result = set(self.head.variables())
            for literal in self.body:
                result |= literal.variables()
            cached = frozenset(result)
            object.__setattr__(self, "_variables", cached)
        return cached

    def predicates(self):
        """All predicate signatures mentioned by the rule (body and head)."""
        sigs = {self.head.atom.signature()}
        for literal in self.body:
            sigs.add(literal.atom.signature())
        return sigs

    def positive_conditions(self):
        """The positive condition literals of the body, in order."""
        return tuple(
            l for l in self.body if isinstance(l, Condition) and l.positive
        )

    def negative_conditions(self):
        """The negated condition literals of the body, in order."""
        return tuple(
            l for l in self.body if isinstance(l, Condition) and not l.positive
        )

    def event_literals(self):
        """The event literals of the body, in order."""
        return tuple(l for l in self.body if isinstance(l, Event))

    def is_condition_action(self):
        """True iff the rule has no event literals (plain CA rule, Sec. 4.2)."""
        return not self.event_literals()

    def is_fact_rule(self):
        """True iff the rule has an empty body (transaction-update rule)."""
        return not self.body

    def substitute(self, substitution):
        """Apply a substitution to head and body.

        The result bypasses safety re-validation: a partially instantiated
        rule may transiently violate condition 1 even though the original
        rule and the fully ground instance are both fine.
        """
        new_head = self.head.substitute(substitution)
        new_body = tuple(l.substitute(substitution) for l in self.body)
        return Rule.__new_unchecked__(new_head, new_body, self.name, self.priority)

    @classmethod
    def __new_unchecked__(cls, head, body, name, priority):
        rule = object.__new__(cls)
        object.__setattr__(rule, "head", head)
        object.__setattr__(rule, "body", tuple(body))
        object.__setattr__(rule, "name", name)
        object.__setattr__(rule, "priority", priority)
        return rule

    def describe(self):
        """The rule's name if it has one, else its textual form."""
        return self.name if self.name else str(self)

    def __str__(self):
        body_text = ", ".join(str(l) for l in self.body)
        arrow = "%s -> " % body_text if self.body else "-> "
        return arrow + str(self.head)


def rule(head, *body, name=None, priority=None):
    """Convenience constructor: ``rule(insert(a), pos(b), neg(c), name="r1")``."""
    return Rule(head=head, body=tuple(body), name=name, priority=priority)
