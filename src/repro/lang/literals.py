"""Body literals of active rules.

The paper's rules have three kinds of body literals:

* a **positive condition** ``a`` — valid in an i-interpretation ``I`` iff
  ``a ∈ I`` or ``+a ∈ I``;
* a **negative condition** ``not a`` — negation by failure: valid iff
  ``-a ∈ I`` or neither ``a`` nor ``+a`` is in ``I``;
* an **event literal** ``+a`` / ``-a`` (Section 4.3, full ECA rules) —
  valid iff the identical marked literal is in ``I``.

Validity itself is implemented in :mod:`repro.core.validity`; this module
only defines the syntactic objects.  The distinction that matters for rule
safety and join planning is *binding power*: positive conditions and event
literals bind their variables (they are matched against concrete sets),
while negative conditions only check already-bound variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from .atoms import Atom
from .updates import Update, UpdateOp


@dataclass(frozen=True)
class Condition:
    """A positive or negated condition literal, e.g. ``q(X)`` or ``not q(X)``."""

    atom: Atom
    positive: bool = True

    def __post_init__(self):
        if not isinstance(self.atom, Atom):
            raise TypeError("atom must be an Atom, got %r" % (self.atom,))

    @property
    def binds(self):
        """Whether matching this literal can bind fresh variables."""
        return self.positive

    def variables(self):
        return self.atom.variables()

    def substitute(self, substitution):
        new_atom = self.atom.substitute(substitution)
        if new_atom is self.atom:
            return self
        return Condition(new_atom, self.positive)

    def ground(self, substitution):
        return Condition(self.atom.ground(substitution), self.positive)

    def is_ground(self):
        return self.atom.is_ground()

    def negate(self):
        """The complementary condition (positive <-> negated)."""
        return Condition(self.atom, not self.positive)

    def __str__(self):
        if self.positive:
            return str(self.atom)
        return "not %s" % self.atom


@dataclass(frozen=True)
class Event:
    """An event literal ``+a`` or ``-a`` in an ECA rule body (Section 4.3).

    An event literal is triggered by the *update itself* being present in
    the current i-interpretation, not by the truth of the underlying atom.
    """

    update: Update

    def __post_init__(self):
        if not isinstance(self.update, Update):
            raise TypeError("update must be an Update, got %r" % (self.update,))

    @property
    def atom(self):
        return self.update.atom

    @property
    def op(self):
        return self.update.op

    @property
    def binds(self):
        """Event literals match against the marked sets, so they bind."""
        return True

    def variables(self):
        return self.update.variables()

    def substitute(self, substitution):
        new_update = self.update.substitute(substitution)
        if new_update is self.update:
            return self
        return Event(new_update)

    def ground(self, substitution):
        return Event(self.update.ground(substitution))

    def is_ground(self):
        return self.update.is_ground()

    def __str__(self):
        return str(self.update)


#: A body literal is a condition or an event.
Literal = Union[Condition, Event]


def pos(atom):
    """Positive condition literal on *atom*."""
    return Condition(atom, True)


def neg(atom):
    """Negated condition literal on *atom* (negation by failure)."""
    return Condition(atom, False)


def on_insert(atom):
    """Event literal ``+atom`` — fires when *atom* is being inserted."""
    return Event(Update(UpdateOp.INSERT, atom))


def on_delete(atom):
    """Event literal ``-atom`` — fires when *atom* is being deleted."""
    return Event(Update(UpdateOp.DELETE, atom))
