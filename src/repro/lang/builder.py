"""Fluent Python DSL for constructing rules without writing source text.

Two styles are offered.

**Predicate style** — a :class:`Pred` object builds atoms by call, and the
unary ``+``/``-``/``~`` operators build updates and negations::

    from repro.lang.builder import Pred, when

    emp, active, payroll = Pred("emp"), Pred("active"), Pred("payroll")
    cleanup = (
        when(emp.X, ~active.X, payroll("X", "Salary"))
        .then("-", payroll("X", "Salary"))
        .named("cleanup")
    )

**Builder style** — :func:`when` collects body literals, ``.on_insert`` /
``.on_delete`` add event literals, and ``.then`` sets the head::

    r3 = when().on_insert(r("X")).then("-", s("X")).named("r3")

Both styles produce ordinary :class:`repro.lang.rules.Rule` objects that are
indistinguishable from parsed rules.
"""

from __future__ import annotations

from .atoms import Atom
from .literals import Condition, Event
from .rules import Rule
from .terms import make_term
from .updates import Update, UpdateOp

_OPS = {"+": UpdateOp.INSERT, "-": UpdateOp.DELETE}


class PredAtom:
    """An atom under construction, supporting ``+``, ``-`` and ``~`` prefixes."""

    __slots__ = ("atom",)

    def __init__(self, atom):
        self.atom = atom

    def __pos__(self):
        """``+p(X)`` — an insert event literal (or head, in ``then``)."""
        return Event(Update(UpdateOp.INSERT, self.atom))

    def __neg__(self):
        """``-p(X)`` — a delete event literal (or head, in ``then``)."""
        return Event(Update(UpdateOp.DELETE, self.atom))

    def __invert__(self):
        """``~p(X)`` — negation by failure."""
        return Condition(self.atom, positive=False)

    def __str__(self):
        return str(self.atom)


class Pred:
    """A predicate-symbol factory: calling it (or attribute access) makes atoms.

    ``Pred("edge")("X", "Y")`` and ``Pred("active").X`` both build atoms;
    attribute access is sugar for single-argument atoms.
    """

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __call__(self, *args):
        return PredAtom(Atom(self.name, tuple(make_term(a) for a in args)))

    def __getattr__(self, arg):
        if arg.startswith("__"):
            raise AttributeError(arg)
        return PredAtom(Atom(self.name, (make_term(arg),)))

    def __str__(self):
        return self.name


def _coerce_literal(item):
    """Accept PredAtom / Atom / Condition / Event and return a body literal."""
    if isinstance(item, (Condition, Event)):
        return item
    if isinstance(item, PredAtom):
        return Condition(item.atom, positive=True)
    if isinstance(item, Atom):
        return Condition(item, positive=True)
    raise TypeError("cannot use %r as a body literal" % (item,))


def _coerce_update(op_or_update, target=None):
    """Accept ``("+"|"-", atom)`` or an Event/Update and return an Update."""
    if target is None:
        item = op_or_update
        if isinstance(item, Update):
            return item
        if isinstance(item, Event):
            return item.update
        raise TypeError(
            "then() needs either (op, atom) or a +p(X)/-p(X) expression; got %r"
            % (item,)
        )
    op = _OPS.get(op_or_update)
    if op is None:
        raise ValueError("update op must be '+' or '-', got %r" % (op_or_update,))
    if isinstance(target, PredAtom):
        target = target.atom
    if not isinstance(target, Atom):
        raise TypeError("update target must be an atom, got %r" % (target,))
    return Update(op, target)


class RuleBuilder:
    """Accumulates body literals, then a head, then optional metadata."""

    def __init__(self, literals=()):
        self._literals = list(literals)

    def and_(self, *items):
        """Append further body literals."""
        self._literals.extend(_coerce_literal(i) for i in items)
        return self

    def on_insert(self, target):
        """Append an insert-event literal ``+target``."""
        if isinstance(target, PredAtom):
            target = target.atom
        self._literals.append(Event(Update(UpdateOp.INSERT, target)))
        return self

    def on_delete(self, target):
        """Append a delete-event literal ``-target``."""
        if isinstance(target, PredAtom):
            target = target.atom
        self._literals.append(Event(Update(UpdateOp.DELETE, target)))
        return self

    def then(self, op_or_update, target=None):
        """Finish the rule with a head: ``.then("+", p("X"))`` or ``.then(+p.X)``."""
        head = _coerce_update(op_or_update, target)
        return FinishedRule(Rule(head=head, body=tuple(self._literals)))


class FinishedRule:
    """A built rule; ``.named`` / ``.with_priority`` return refined copies.

    ``FinishedRule`` duck-types as a Rule via :attr:`rule` and unwraps
    automatically in :func:`rules`.
    """

    def __init__(self, rule):
        self.rule = rule

    def named(self, name):
        r = self.rule
        return FinishedRule(
            Rule(head=r.head, body=r.body, name=name, priority=r.priority)
        )

    def with_priority(self, priority):
        r = self.rule
        return FinishedRule(
            Rule(head=r.head, body=r.body, name=r.name, priority=priority)
        )

    def build(self):
        return self.rule

    def __str__(self):
        return str(self.rule)


def when(*items):
    """Start a rule from body literals (possibly none, for bodyless rules)."""
    return RuleBuilder([_coerce_literal(i) for i in items])


def rules(*items):
    """Unwrap a mixture of Rule and FinishedRule objects into a rule tuple."""
    result = []
    for item in items:
        if isinstance(item, FinishedRule):
            result.append(item.rule)
        elif isinstance(item, Rule):
            result.append(item)
        else:
            raise TypeError("not a rule: %r" % (item,))
    return tuple(result)
