"""Terms of the rule language: variables and constants.

The PARK paper works over standard datalog terms: a term is either a
*variable* (written with a leading upper-case letter, e.g. ``X``) or a
*constant* (a symbol such as ``a`` or an integer such as ``42``).  Function
symbols are not part of the language — the Herbrand universe is the finite
set of constants occurring in the program and database, which is what makes
the semantics polynomially tractable.

Terms are immutable and hashable so that atoms, literals, substitutions and
rule groundings can live in plain Python sets, mirroring the paper's
set-theoretic definitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, order=True)
class Variable:
    """A logic variable, e.g. ``X`` in ``p(X) -> +q(X)``.

    Variable names conventionally start with an upper-case letter or an
    underscore; the parser enforces this, but programmatically constructed
    variables may use any non-empty string.
    """

    name: str

    def __post_init__(self):
        if not self.name:
            raise ValueError("variable name must be non-empty")

    def __hash__(self):
        # Cached: terms are hashed constantly (substitution keys, atom and
        # rule hashes) and the generated dataclass hash re-allocates a field
        # tuple per call.
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash(("Variable", self.name))
            object.__setattr__(self, "_hash", h)
        return h

    def __str__(self):
        return self.name

    def __repr__(self):
        return "Variable(%r)" % self.name


@dataclass(frozen=True, order=True)
class Constant:
    """A constant symbol or integer, e.g. ``a`` or ``42``.

    The ``value`` is either a string (symbolic constant) or an integer.
    Two constants are equal iff their values are equal; note that because
    Python treats ``1 == True``, boolean values are rejected.
    """

    value: Union[str, int]

    def __post_init__(self):
        if isinstance(self.value, bool) or not isinstance(self.value, (str, int)):
            raise TypeError(
                "constant value must be a string or an integer, got %r" % (self.value,)
            )

    def __hash__(self):
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash(("Constant", self.value))
            object.__setattr__(self, "_hash", h)
        return h

    def __str__(self):
        if isinstance(self.value, int):
            return str(self.value)
        return self.value

    def __repr__(self):
        return "Constant(%r)" % (self.value,)


#: A term is a variable or a constant.
Term = Union[Variable, Constant]


def is_variable(term):
    """Return True iff *term* is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term):
    """Return True iff *term* is a :class:`Constant`."""
    return isinstance(term, Constant)


def make_term(value):
    """Coerce a Python value into a :class:`Term`.

    Strings with a leading upper-case letter or underscore become variables
    (matching the parser's convention); all other strings and all integers
    become constants.  Existing terms pass through unchanged.

    >>> make_term("X")
    Variable('X')
    >>> make_term("alice")
    Constant('alice')
    >>> make_term(7)
    Constant(7)
    """
    if isinstance(value, (Variable, Constant)):
        return value
    if isinstance(value, str):
        if value and (value[0].isupper() or value[0] == "_"):
            return Variable(value)
        return Constant(value)
    if isinstance(value, int) and not isinstance(value, bool):
        return Constant(value)
    raise TypeError("cannot interpret %r as a term" % (value,))
