"""Programs: ordered, validated collections of active rules.

A :class:`Program` is what the paper calls ``P``.  It is immutable; the ECA
extension (Section 4.3) builds the modified program ``P_U`` by *extending* a
program with bodyless transaction-update rules, producing a new object.

Program-level validation complements per-rule safety:

* predicate arities must be used consistently across all rules (this is the
  schema discipline a database system would enforce through its catalog);
* explicit rule names must be unique, so traces and blocked-set reports are
  unambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import ArityError, LanguageError
from .rules import Rule


@dataclass(frozen=True)
class Program:
    """An immutable sequence of active rules."""

    rules: Tuple[Rule, ...] = ()

    def __post_init__(self):
        if not isinstance(self.rules, tuple):
            object.__setattr__(self, "rules", tuple(self.rules))
        for r in self.rules:
            if not isinstance(r, Rule):
                raise TypeError("program element %r is not a Rule" % (r,))
        self._check_names()
        self._check_arities()

    def _check_names(self):
        seen = set()
        for r in self.rules:
            if r.name is None:
                continue
            if r.name in seen:
                raise LanguageError("duplicate rule name: %r" % r.name)
            seen.add(r.name)

    def _check_arities(self):
        arities = {}
        for r in self.rules:
            for predicate, arity in r.predicates():
                known = arities.get(predicate)
                if known is None:
                    arities[predicate] = arity
                elif known != arity:
                    raise ArityError(
                        "predicate %r used with arities %d and %d"
                        % (predicate, known, arity)
                    )

    # -- collection protocol ------------------------------------------------

    def __iter__(self):
        return iter(self.rules)

    def __len__(self):
        return len(self.rules)

    def __getitem__(self, index):
        return self.rules[index]

    def __contains__(self, r):
        return r in self.rules

    # -- accessors -----------------------------------------------------------

    def by_name(self, name):
        """The rule with the given explicit name.

        Raises ``KeyError`` if no rule carries that name.
        """
        for r in self.rules:
            if r.name == name:
                return r
        raise KeyError(name)

    def predicates(self):
        """All predicate signatures mentioned anywhere in the program."""
        sigs = set()
        for r in self.rules:
            sigs |= r.predicates()
        return sigs

    def arity_of(self, predicate):
        """The arity of *predicate* as used by this program, or ``None``."""
        for name, arity in self.predicates():
            if name == predicate:
                return arity
        return None

    def constants(self):
        """All constants occurring in the program (heads and bodies)."""
        result = set()
        for r in self.rules:
            result |= r.head.atom.constants()
            for literal in r.body:
                result |= literal.atom.constants()
        return result

    def is_condition_action(self):
        """True iff no rule uses event literals (plain CA program)."""
        return all(r.is_condition_action() for r in self.rules)

    def is_insert_only(self):
        """True iff every head is an insertion — such programs never conflict."""
        return all(r.head.is_insert for r in self.rules)

    def is_positive(self):
        """True iff no body literal is negated and none is an event."""
        return all(
            not r.event_literals() and not r.negative_conditions()
            for r in self.rules
        )

    # -- construction --------------------------------------------------------

    def extend(self, new_rules):
        """A new program with *new_rules* appended (used to build ``P_U``)."""
        return Program(self.rules + tuple(new_rules))

    def __str__(self):
        return "\n".join(str(r) for r in self.rules)


def program(*rules):
    """Convenience constructor: ``program(r1, r2, r3)``."""
    return Program(tuple(rules))
