"""Source locations and lenient parse results for program analysis.

The strict parser (:mod:`repro.lang.parser`) raises on the first problem,
which is right for the engine but useless for a linter that should report
*every* problem with a precise location.  This module defines the shared
vocabulary:

* :class:`Span` — a half-open source region (1-based line/column);
* :class:`RuleSpans` — the spans of one rule: the whole statement, its
  head, and each body literal (aligned with ``rule.body``);
* :class:`SourceIssue` — one problem found while parsing leniently
  (syntax error, safety violation, duplicate name, arity clash);
* :class:`ParsedSource` — everything a lenient parse recovers: the rules
  that could be built (safety-unchecked ones included), their spans, and
  the issues.

The objects are plain data; converting issues into ``PARK0xx`` diagnostics
is the job of :mod:`repro.lint`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class Span:
    """A source region from (line, column) up to (end_line, end_column).

    Positions are 1-based; the end column is exclusive, so a one-character
    token at line 1, column 5 spans ``Span(1, 5, 1, 6)``.
    """

    line: int
    column: int
    end_line: int
    end_column: int

    def __str__(self):
        return "line %d, column %d" % (self.line, self.column)

    def to_json(self):
        return {
            "line": self.line,
            "column": self.column,
            "end_line": self.end_line,
            "end_column": self.end_column,
        }


@dataclass(frozen=True)
class RuleSpans:
    """Where one parsed rule statement sits in the source text."""

    rule: Span
    head: Span
    body: Tuple[Span, ...] = ()

    def literal(self, index):
        """The span of body literal *index*, falling back to the rule span."""
        if 0 <= index < len(self.body):
            return self.body[index]
        return self.rule


#: Issue kinds produced by the lenient parser.
SYNTAX = "syntax"
SAFETY = "safety"
DUPLICATE_NAME = "duplicate-name"
ARITY = "arity"


@dataclass(frozen=True)
class SourceIssue:
    """One problem found by a lenient parse, located in the source."""

    kind: str
    message: str
    span: Span
    rule_index: Optional[int] = None


@dataclass(frozen=True)
class ParsedSource:
    """The result of a lenient parse: rules, their spans, and the issues.

    ``rules`` contains every statement that produced a rule object —
    including rules that violate the safety conditions (built unchecked so
    analysis can still inspect them).  ``spans`` is aligned with
    ``rules``.  Statements with syntax errors are skipped (the parser
    resynchronises at the next ``.``) and appear only in ``issues``.
    """

    rules: Tuple = ()
    spans: Tuple[RuleSpans, ...] = ()
    issues: Tuple[SourceIssue, ...] = ()

    @property
    def clean(self):
        """No issues of any kind."""
        return not self.issues

    def issues_of(self, kind):
        return tuple(issue for issue in self.issues if issue.kind == kind)

    def program(self):
        """A validated :class:`~repro.lang.program.Program` of the rules.

        Only meaningful when the source parsed without issues; an unsafe
        or schema-violating source re-raises the strict errors here.
        """
        from .program import Program
        from .rules import Rule

        checked = []
        for rule in self.rules:
            checked.append(
                Rule(
                    head=rule.head,
                    body=rule.body,
                    name=rule.name,
                    priority=rule.priority,
                )
            )
        return Program(tuple(checked))
