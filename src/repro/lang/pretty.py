"""Pretty-printer: render language objects back to parseable source text.

The round-trip property ``parse(render(x)) == x`` holds for terms, atoms,
literals, rules and programs, and is enforced by property-based tests
(``tests/property/test_roundtrip.py``).  Constants that would not survive
re-lexing as bare identifiers (spaces, upper-case first letter, keywords,
empty string, ...) are rendered as quoted strings.
"""

from __future__ import annotations

from .atoms import Atom
from .literals import Condition, Event
from .program import Program
from .rules import Rule
from .terms import Constant, Variable
from .updates import Update

_KEYWORDS = frozenset({"not"})


def _is_bare_identifier(text):
    """Whether *text* can be re-lexed as a lower-case identifier."""
    if not text or text in _KEYWORDS:
        return False
    first = text[0]
    if not (first.isalpha() and first.islower()):
        return False
    return all(c.isalnum() or c == "_" for c in text)


def render_term(term):
    """Render a term as parseable source text."""
    if isinstance(term, Variable):
        return term.name
    if isinstance(term, Constant):
        if isinstance(term.value, int):
            return str(term.value)
        if _is_bare_identifier(term.value):
            return term.value
        # Control characters are escaped so every rendered fact stays on
        # one physical line — snapshots and journal records depend on it.
        escaped = (
            term.value.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        return '"%s"' % escaped
    raise TypeError("not a term: %r" % (term,))


def render_atom(atom):
    """Render an atom as parseable source text."""
    if not isinstance(atom, Atom):
        raise TypeError("not an atom: %r" % (atom,))
    if not atom.terms:
        return atom.predicate
    return "%s(%s)" % (atom.predicate, ", ".join(render_term(t) for t in atom.terms))


def render_update(update):
    """Render an update / head action, e.g. ``+q(X)``."""
    if not isinstance(update, Update):
        raise TypeError("not an update: %r" % (update,))
    return "%s%s" % (update.op.sign, render_atom(update.atom))


def render_literal(literal):
    """Render a body literal."""
    if isinstance(literal, Condition):
        text = render_atom(literal.atom)
        return text if literal.positive else "not %s" % text
    if isinstance(literal, Event):
        return render_update(literal.update)
    raise TypeError("not a literal: %r" % (literal,))


def render_rule(rule, include_annotations=True):
    """Render a rule, optionally with its ``@name`` / ``@priority`` annotations."""
    if not isinstance(rule, Rule):
        raise TypeError("not a rule: %r" % (rule,))
    parts = []
    if include_annotations:
        if rule.name is not None:
            parts.append("@name(%s) " % rule.name)
        if rule.priority is not None:
            parts.append("@priority(%d) " % rule.priority)
    if rule.body:
        parts.append(", ".join(render_literal(l) for l in rule.body))
        parts.append(" -> ")
    else:
        parts.append("-> ")
    parts.append(render_update(rule.head))
    parts.append(".")
    return "".join(parts)


def render_program(program):
    """Render a program, one rule per line."""
    if not isinstance(program, Program):
        raise TypeError("not a program: %r" % (program,))
    return "\n".join(render_rule(r) for r in program)


def render_database(atoms):
    """Render a set of ground atoms as a fact list, sorted for determinism."""
    return "\n".join(
        "%s." % render_atom(a) for a in sorted(atoms, key=render_atom)
    )
