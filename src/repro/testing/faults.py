"""Fault injection for the durability layer.

The commit journal routes every file operation through a
:class:`~repro.storage.fsio.RealFS`-shaped object; :class:`FaultyFS` is
the same interface with a crash budget.  It can

* **tear a write at byte granularity** — ``crash_after_bytes=k`` lets
  exactly ``k`` bytes reach the file across all appends, then raises
  :class:`SimulatedCrash` mid-write, leaving the torn prefix on disk
  exactly as a power cut mid-``write(2)`` would;
* **crash at an fsync barrier** — ``crash_after_syncs=n`` allows ``n``
  successful fsyncs, then crashes *before* the next one completes; and
* **drop un-fsynced bytes** — ``drop_unsynced=True`` models the other
  end of the crash envelope: at crash time every byte written since the
  last successful fsync is discarded (truncated back to the durable
  size), the way a volatile page cache forgets.

Reality after a real crash lies anywhere between those two extremes:
some prefix of the un-fsynced bytes survives.  The property suite in
``tests/faults/`` therefore also enumerates *every byte prefix* of a
recorded journal stream (:func:`crash_points`) and asserts that recovery
from each one yields exactly a prefix of the committed states — the
strongest form of the claim, independent of which bytes happened to
survive.

A crashed :class:`FaultyFS` refuses all further operations: code that
swallows the crash and keeps writing is itself a durability bug, and
this makes it loud.
"""

from __future__ import annotations

from ..storage.fsio import RealFS


class SimulatedCrash(Exception):
    """Raised by :class:`FaultyFS` at the injected crash point."""


class FaultyFS(RealFS):
    """A :class:`RealFS` with a byte-granular crash budget.

    Counters (``bytes_written``, ``syncs``, ``dir_syncs``) are always
    maintained, so the shim doubles as an fsync/byte accountant for
    group-commit tests even when no crash is configured.
    """

    def __init__(
        self,
        crash_after_bytes=None,
        crash_after_syncs=None,
        drop_unsynced=False,
    ):
        self.crash_after_bytes = crash_after_bytes
        self.crash_after_syncs = crash_after_syncs
        self.drop_unsynced = drop_unsynced
        self.bytes_written = 0
        self.syncs = 0
        self.dir_syncs = 0
        self.crashed = False
        self._durable_sizes = {}

    # -- crash machinery -----------------------------------------------------------

    def _require_alive(self):
        if self.crashed:
            raise SimulatedCrash("filesystem already crashed")

    def _crash(self, path):
        """Trigger the crash: optionally forget un-fsynced bytes, then raise."""
        self.crashed = True
        if self.drop_unsynced and super().exists(path):
            durable = self._durable_sizes.get(path, 0)
            if durable < super().size(path):
                super().truncate(path, durable)
        raise SimulatedCrash(
            "injected crash (bytes_written=%d, syncs=%d)"
            % (self.bytes_written, self.syncs)
        )

    # -- intercepted operations ----------------------------------------------------

    def append(self, path, data, sync=True):
        self._require_alive()
        if self.crash_after_bytes is not None:
            budget = self.crash_after_bytes - self.bytes_written
            if budget < len(data):
                if budget > 0:
                    super().append(path, data[:budget], sync=False)
                    self.bytes_written += budget
                self._crash(path)
        super().append(path, data, sync=False)
        self.bytes_written += len(data)
        if sync:
            self.sync(path)

    def sync(self, path):
        self._require_alive()
        if (
            self.crash_after_syncs is not None
            and self.syncs >= self.crash_after_syncs
        ):
            self._crash(path)
        super().sync(path)
        self.syncs += 1
        self._durable_sizes[path] = super().size(path)

    def sync_dir(self, path):
        self._require_alive()
        super().sync_dir(path)
        self.dir_syncs += 1

    def truncate(self, path, size):
        self._require_alive()
        super().truncate(path, size)
        self._durable_sizes[path] = size

    def remove(self, path):
        self._require_alive()
        super().remove(path)
        self._durable_sizes.pop(path, None)


def record_boundaries(stream):
    """Byte offsets just past each newline in *stream* (bytes).

    For a journal stream these are exactly the offsets at which a crash
    leaves a whole number of records behind; every other offset tears the
    final record.
    """
    boundaries = []
    position = 0
    while True:
        newline = stream.find(b"\n", position)
        if newline == -1:
            return boundaries
        boundaries.append(newline + 1)
        position = newline + 1


def crash_points(stream):
    """Every byte-granular crash offset for *stream*: ``0 .. len(stream)``.

    Offset ``k`` models a crash after exactly the first ``k`` bytes of
    the journal survived — covering torn writes, lost page-cache tails,
    and every combination in between.
    """
    return range(len(stream) + 1)
