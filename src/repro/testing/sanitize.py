"""Runtime independence sanitizer: TSan wiring over the static race report.

The commutativity analysis (:mod:`repro.lint.commutativity`) certifies
rule groups whose effect sets are statically disjoint (``PARK043``); the
engine's group-batched scheduling and any future parallel executor lean
on that certificate.  This module keeps the analyzer honest: with the
sanitizer active, every consistent ``Γ`` round is replayed against the
certificate — the atoms each rule *actually* wrote (from the round's
firings) and *actually* read (from each grounding's ground body) — and
any overlap between two rules of the same certified group fails loudly
with a :class:`SanitizerError` (an :class:`~repro.errors.EngineError`,
so the CLI exits 2) naming both rules and the witnessing atom.

A violation is never a false positive: the certificate claims the two
rules' head/body atoms cannot unify on the overlapping predicate, and a
shared ground atom *is* a unifier.  A clean run proves nothing beyond
the rounds it saw — this is a sanitizer, not a verifier — but it turns
"the analysis is sound" from an argument into a tripwire.

Activation mirrors the other null-telemetry module globals
(``obs.metrics.ACTIVE``, ``obs.audit.ACTIVE``): one pointer test per
engine round when disabled.  Set ``REPRO_SANITIZE=independence`` in the
environment (read at import), pass ``--sanitize independence`` to
``repro run`` / ``repro profile``, or call :func:`set_active` directly.
"""

from __future__ import annotations

import os

from ..errors import EngineError
from ..lang.literals import Event
from ..obs import metrics as _obs


class SanitizerError(EngineError):
    """Observed rule effects falsified a certified independence group."""


class IndependenceSanitizer:
    """Cross-checks PARK043 certificates against observed effects.

    Stateless across runs apart from a per-:class:`ProgramFacts` cache of
    the rule-index and group maps (facts are frozen and hashable, and the
    engine reuses one facts object across the rounds of a run).
    """

    name = "independence"

    def __init__(self):
        self._maps = {}  # ProgramFacts -> (index_of, group_of, checked_groups)

    # -- certificate plumbing ------------------------------------------------

    def _maps_for(self, facts):
        cached = self._maps.get(facts)
        if cached is None:
            index_of = {rule: i for i, rule in enumerate(facts.rules)}
            group_of = {}
            checked_groups = set()
            for group_id, group in enumerate(facts.parallel_groups):
                for rule_index in group.rules:
                    group_of[rule_index] = group_id
                if len(group.rules) > 1:
                    # Singleton groups cannot violate independence.
                    checked_groups.add(group_id)
            cached = (index_of, group_of, checked_groups)
            self._maps[facts] = cached
        return cached

    # -- the per-round check -------------------------------------------------

    def check_round(self, facts, firings, round_number):
        """Raise :class:`SanitizerError` if *firings* falsify the certificate.

        *firings* is the round's ``{head Update: frozenset[RuleGrounding]}``
        map.  Two violations exist: two rules of one certified group wrote
        the same ground atom (write-write; opposite polarities make it the
        non-commutative delete/insert case), or one rule of a group wrote a
        ground atom that another rule of the same group read through a body
        literal (read-write; event literals only observe writes of their
        own polarity, mirroring the static analysis).
        """
        index_of, group_of, checked_groups = self._maps_for(facts)
        if not checked_groups:
            return
        m = _obs.ACTIVE
        if m is not None:
            m.inc("sanitize.rounds_checked")

        # Pass 1: per-group write map (ground atom -> writing rules) and
        # the instances to read-check, from the round's firings.
        writes = {}   # group_id -> {atom: [(rule_index, op)]}
        readers = {}  # group_id -> [(rule_index, RuleGrounding)]
        for update, instances in firings.items():
            for instance in instances:
                rule_index = index_of.get(instance.rule)
                if rule_index is None:
                    continue
                group_id = group_of.get(rule_index)
                if group_id not in checked_groups:
                    continue
                writes.setdefault(group_id, {}).setdefault(
                    update.atom, []
                ).append((rule_index, update.op))
                readers.setdefault(group_id, []).append(
                    (rule_index, instance)
                )

        for group_id, atom_writers in writes.items():
            # Write-write: one ground atom, two certified-independent rules.
            for atom, writers in atom_writers.items():
                rule_indices = {rule_index for rule_index, _ in writers}
                if len(rule_indices) > 1:
                    left, right = sorted(rule_indices)[:2]
                    self._fail(
                        facts, round_number, left, right, atom, "both wrote"
                    )
            # Read-write: a grounding's body atom another group member wrote.
            for rule_index, instance in readers[group_id]:
                for literal in instance.ground_body():
                    writers = atom_writers.get(literal.atom)
                    if not writers:
                        continue
                    is_event = isinstance(literal, Event)
                    for writer_index, op in writers:
                        if writer_index == rule_index:
                            continue
                        if is_event and literal.op is not op:
                            continue
                        self._fail(
                            facts,
                            round_number,
                            writer_index,
                            rule_index,
                            literal.atom,
                            "one wrote and the other read",
                        )

    def _fail(self, facts, round_number, left, right, atom, how):
        m = _obs.ACTIVE
        if m is not None:
            m.inc("sanitize.violations")
        raise SanitizerError(
            "independence sanitizer: certificate violated in round %d: "
            "rules %s and %s are certified independent (same parallel "
            "group) but %s the atom %s — the PARK043 certificate is "
            "unsound for this run; re-run ProgramFacts.analyze or report "
            "an analyzer bug"
            % (
                round_number,
                facts.rules[left].describe(),
                facts.rules[right].describe(),
                how,
                atom,
            )
        )


#: The active sanitizer, or ``None``: the engine loads this once per run
#: and pays one ``is None`` test per consistent round when disabled.
ACTIVE = None


def set_active(sanitizer):
    """Install *sanitizer* (or ``None``) process-wide; returns the previous."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = sanitizer
    return previous


def from_spec(spec):
    """Build a sanitizer from a CLI/env spec (``"independence"`` or empty)."""
    name = (spec or "").strip().lower()
    if not name:
        return None
    if name == "independence":
        return IndependenceSanitizer()
    raise ValueError(
        "unknown sanitizer %r (known: independence)" % spec
    )


# Environment activation: REPRO_SANITIZE=independence turns the sanitizer
# on for every engine run in the process (the CI leg runs the whole test
# suite this way).  Unknown values are ignored rather than raised — an
# import-time failure would take down unrelated tooling.
_env_spec = os.environ.get("REPRO_SANITIZE", "").strip().lower()
if _env_spec == "independence":
    ACTIVE = IndependenceSanitizer()
