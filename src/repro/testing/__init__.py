"""Test-support machinery shipped with the package.

:mod:`repro.testing.faults` holds the fault-injection file layer used to
prove the commit pipeline crash-safe (``tests/faults/``);
:mod:`repro.testing.sanitize` holds the runtime independence sanitizer
that cross-checks the lint pass's parallel-group certificates
(``REPRO_SANITIZE=independence``).  They live under ``src`` rather than
``tests`` so downstream users embedding the active database can run the
same drills against their own setups.
"""

from .faults import FaultyFS, SimulatedCrash, crash_points, record_boundaries
from .sanitize import IndependenceSanitizer, SanitizerError

__all__ = [
    "FaultyFS",
    "IndependenceSanitizer",
    "SanitizerError",
    "SimulatedCrash",
    "crash_points",
    "record_boundaries",
]
