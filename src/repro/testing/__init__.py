"""Test-support machinery shipped with the package.

:mod:`repro.testing.faults` holds the fault-injection file layer used to
prove the commit pipeline crash-safe (``tests/faults/``).  It lives under
``src`` rather than ``tests`` so downstream users embedding the active
database can run the same crash drills against their own setups.
"""

from .faults import FaultyFS, SimulatedCrash, crash_points, record_boundaries

__all__ = ["FaultyFS", "SimulatedCrash", "crash_points", "record_boundaries"]
