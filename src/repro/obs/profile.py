"""The ``repro profile`` hot-spot report: where a PARK run spends its time.

:func:`hotspot_report` distills a run's :class:`~repro.obs.metrics.Metrics`
into a JSON-serializable dict — run counters, per-phase wall-time
breakdown, per-rule hot spots (time, match calls, firings), and index
efficiency — and :func:`render_profile` prints it as the aligned table the
CLI shows.  Both operate on data recorded *after* the run, so they cannot
perturb it; on a failed run they render whatever was recorded up to the
failure.
"""

from __future__ import annotations


#: The engine phases, in pipeline order, with display labels.
PHASES = (
    ("phase.match", "match (Γ rounds)"),
    ("phase.apply", "apply (merge ΔI)"),
    ("phase.policy", "policy (conflicts)"),
    ("phase.incorp", "incorp (final D)"),
)


def hotspot_report(metrics, result=None, wall_time=None, top=None, meta=None):
    """Build the profile dict from *metrics* (and optionally the run result).

    *wall_time* is the caller-measured wall seconds for the whole run;
    *top* truncates the per-rule table to the N slowest rules; *meta*
    is carried through verbatim (the CLI records file names and engine
    configuration there).  *result* may be ``None`` — e.g. when the run
    died in an engine error — in which case only metrics-derived data
    appears.
    """
    counters = metrics.counters

    run = {
        "rounds": counters.get("engine.rounds", 0),
        "epochs": counters.get("engine.epochs", 0),
        "restarts": counters.get("engine.restarts", 0),
        "conflicts_resolved": counters.get("engine.conflicts_resolved", 0),
        "firings": counters.get("engine.firings", 0),
        "blocked_instances": counters.get("engine.blocked_instances", 0),
    }
    if result is not None:
        run["result_atoms"] = len(result.database)
        run["policy"] = result.policy_name

    phases = {}
    phase_total = 0.0
    for name, label in PHASES:
        entry = metrics.timers.get(name)
        if entry is None:
            continue
        phases[name] = {
            "label": label,
            "count": entry[0],
            "seconds": round(entry[1], 6),
            "max_s": round(entry[3], 6),
        }
        phase_total += entry[1]
    denominator = wall_time if wall_time else phase_total
    for entry in phases.values():
        entry["share"] = round(entry["seconds"] / denominator, 4) if denominator else None

    rules = []
    for description, (calls, seconds, firings) in metrics.rules.items():
        rules.append(
            {
                "rule": description,
                "seconds": round(seconds, 6),
                "share": round(seconds / denominator, 4) if denominator else None,
                "calls": calls,
                "firings": firings,
                "firings_per_call": round(firings / calls, 2) if calls else None,
            }
        )
    rules.sort(key=lambda entry: (-entry["seconds"], entry["rule"]))
    truncated = 0
    if top is not None and len(rules) > top:
        truncated = len(rules) - top
        rules = rules[:top]

    lookups = counters.get("storage.index_lookups", 0)
    hits = counters.get("storage.index_hits", 0)
    index = {
        "lookups": lookups,
        "hits": hits,
        "hit_ratio": round(hits / lookups, 4) if lookups else None,
        "scans": counters.get("storage.full_scans", 0),
        "index_builds": counters.get("storage.index_builds", 0),
        "composite_builds": counters.get("storage.composite_builds", 0),
        "snapshot_copies": counters.get("storage.snapshot_copies", 0),
    }

    storage = {
        "intern_table_size": metrics.gauges.get("storage.intern_table_size", 0),
        "conversions": counters.get("storage.conversions", 0),
    }

    plan_cache = {
        "hits": counters.get("plan_cache.hits", 0),
        "misses": counters.get("plan_cache.misses", 0),
        "invalidations": counters.get("plan_cache.invalidations", 0),
    }

    matching = {
        "rule_match_calls": counters.get("match.rule_matches", 0),
        "full_matches": counters.get("eval.full_matches", 0),
        "delta_matches": counters.get("eval.delta_matches", 0),
        "volatile_rematched": counters.get("eval.volatile_rematched", 0),
        "volatile_skipped_clean": counters.get("eval.volatile_skipped_clean", 0),
        "intern_hits": counters.get("intern.sub_hits", 0)
        + counters.get("intern.head_hits", 0)
        + counters.get("intern.const_hits", 0),
    }

    report = {
        "meta": dict(meta) if meta else {},
        "wall_time_s": round(wall_time, 6) if wall_time is not None else None,
        "run": run,
        "phases": phases,
        "rules": rules,
        "rules_truncated": truncated,
        "index": index,
        "storage": storage,
        "plan_cache": plan_cache,
        "matching": matching,
        "counters": dict(sorted(counters.items())),
    }
    return report


def _format_seconds(seconds):
    if seconds is None:
        return "-"
    if seconds >= 1.0:
        return "%.3f s" % seconds
    return "%.2f ms" % (seconds * 1e3)


def _format_share(share):
    return "%5.1f%%" % (share * 100) if share is not None else "     -"


def render_profile(report):
    """The profile dict as the aligned text table ``repro profile`` prints."""
    lines = []
    meta = report.get("meta") or {}
    title = meta.get("rules", "PARK run")
    lines.append("PARK profile: %s" % title)
    config = ", ".join(
        "%s=%s" % (key, meta[key])
        for key in ("policy", "evaluation", "matcher", "blocking")
        if key in meta
    )
    if config:
        lines.append("  %s" % config)
    if meta.get("error"):
        lines.append("  ! run failed: %s" % meta["error"])
        lines.append("  (partial telemetry up to the failure)")

    run = report["run"]
    lines.append(
        "  wall time %s   rounds %d   epochs %d   conflicts %d   "
        "firings %d   blocked %d"
        % (
            _format_seconds(report.get("wall_time_s")),
            run["rounds"],
            run["epochs"],
            run["conflicts_resolved"],
            run["firings"],
            run["blocked_instances"],
        )
    )
    lines.append("")

    lines.append("per-phase breakdown")
    lines.append("  %-18s %10s %7s %8s" % ("phase", "time", "share", "calls"))
    for name, _label in PHASES:
        entry = report["phases"].get(name)
        if entry is None:
            continue
        lines.append(
            "  %-18s %10s %7s %8d"
            % (
                entry["label"],
                _format_seconds(entry["seconds"]),
                _format_share(entry["share"]),
                entry["count"],
            )
        )
    lines.append("")

    lines.append("per-rule hot spots (by time)")
    lines.append(
        "  %-32s %10s %7s %8s %9s %9s"
        % ("rule", "time", "share", "calls", "firings", "fir/call")
    )
    for entry in report["rules"]:
        rule_text = entry["rule"]
        if len(rule_text) > 32:
            rule_text = rule_text[:29] + "..."
        lines.append(
            "  %-32s %10s %7s %8d %9d %9s"
            % (
                rule_text,
                _format_seconds(entry["seconds"]),
                _format_share(entry["share"]),
                entry["calls"],
                entry["firings"],
                "%.2f" % entry["firings_per_call"]
                if entry["firings_per_call"] is not None
                else "-",
            )
        )
    if report.get("rules_truncated"):
        lines.append("  ... %d more rules" % report["rules_truncated"])
    lines.append("")

    index = report["index"]
    ratio = index["hit_ratio"]
    lines.append(
        "index efficiency: %d lookups, %d hits (%s), %d full scans, "
        "%d index builds (+%d composite), %d snapshot copies"
        % (
            index["lookups"],
            index["hits"],
            "%.1f%%" % (ratio * 100) if ratio is not None else "n/a",
            index["scans"],
            index["index_builds"],
            index["composite_builds"],
            index["snapshot_copies"],
        )
    )
    matching = report["matching"]
    lines.append(
        "matching: %d rule-match calls (%d full, %d delta), "
        "%d volatile rematched / %d reused clean, %d intern hits"
        % (
            matching["rule_match_calls"],
            matching["full_matches"],
            matching["delta_matches"],
            matching["volatile_rematched"],
            matching["volatile_skipped_clean"],
            matching["intern_hits"],
        )
    )
    storage = report.get("storage")
    plan_cache = report.get("plan_cache")
    if storage is not None and plan_cache is not None:
        lines.append(
            "storage: %d interned constants, %d layout conversions; "
            "plan cache: %d hits, %d misses, %d invalidations"
            % (
                storage["intern_table_size"],
                storage["conversions"],
                plan_cache["hits"],
                plan_cache["misses"],
                plan_cache["invalidations"],
            )
        )
    return "\n".join(lines) + "\n"
