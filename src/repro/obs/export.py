"""Exporters: telemetry in formats external tools already understand.

Two independent converters, both pure functions over the in-memory
observability objects:

* :func:`prometheus_text` — a :class:`~repro.obs.metrics.Metrics`
  registry rendered in the Prometheus text exposition format (v0.0.4):
  counters as ``counter``, gauges as ``gauge``, timer histograms as the
  conventional ``_count`` / ``_sum`` summary pair, and per-rule timings
  as one series with a ``rule`` label.  Metric names are prefixed
  ``repro_`` and dots become underscores, so ``engine.rounds`` scrapes
  as ``repro_engine_rounds``.
* :func:`chrome_trace` — a :class:`~repro.obs.tracing.Tracer`'s records
  in the Chrome Trace Event Format (the JSON array form), loadable in
  ``chrome://tracing`` and Perfetto: spans become complete ``"X"``
  events with microsecond timestamps, instantaneous listener events
  become ``"i"`` instants, and still-open spans become begin ``"B"``
  events so a mid-run flush remains inspectable.

The CLI exposes both: ``repro run --prom-out`` / ``--chrome-out`` and
the same flags on ``repro profile``.
"""

from __future__ import annotations

import json
import re

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name):
    return "repro_" + _NAME_RE.sub("_", name)


def _format_value(value):
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _escape_label(value):
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def prometheus_text(metrics):
    """Render *metrics* in the Prometheus text exposition format.

    Returns a string ending in a newline (scrape-endpoint convention).
    Rule timers (``rule.<description>`` entries recorded via
    ``observe_rule``) are folded into labelled ``repro_rule_seconds`` /
    ``repro_rule_firings`` series rather than one metric per rule.
    """
    lines = []
    for name, value in sorted(metrics.counters.items()):
        metric = _metric_name(name)
        lines.append("# TYPE %s counter" % metric)
        lines.append("%s %s" % (metric, _format_value(value)))
    for name, value in sorted(metrics.gauges.items()):
        metric = _metric_name(name)
        lines.append("# TYPE %s gauge" % metric)
        lines.append("%s %s" % (metric, _format_value(value)))
    for name, entry in sorted(metrics.timers.items()):
        count, total = entry[0], entry[1]
        metric = _metric_name(name) + "_seconds"
        lines.append("# TYPE %s summary" % metric)
        lines.append("%s_count %d" % (metric, count))
        lines.append("%s_sum %s" % (metric, _format_value(float(total))))
    rules = getattr(metrics, "rules", None)
    if rules:
        lines.append("# TYPE repro_rule_seconds summary")
        for rule, entry in sorted(rules.items()):
            label = _escape_label(rule)
            lines.append(
                'repro_rule_seconds_count{rule="%s"} %d' % (label, entry[0])
            )
            lines.append(
                'repro_rule_seconds_sum{rule="%s"} %s'
                % (label, _format_value(float(entry[1])))
            )
        lines.append("# TYPE repro_rule_firings counter")
        for rule, entry in sorted(rules.items()):
            lines.append(
                'repro_rule_firings{rule="%s"} %d'
                % (_escape_label(rule), entry[2])
            )
    return "\n".join(lines) + "\n" if lines else ""


def _chrome_common(record, pid, tid):
    event = {
        "name": record["name"],
        "pid": pid,
        "tid": tid,
        "ts": round(record["ts"] * 1e6, 3),  # chrome expects microseconds
    }
    attrs = record.get("attrs")
    args = dict(attrs) if attrs else {}
    args["span_id"] = record["id"]
    if record.get("parent") is not None:
        args["parent_id"] = record["parent"]
    event["args"] = args
    return event


def chrome_trace(tracer, pid=1, tid=1):
    """Convert *tracer*'s records to a Chrome Trace Event Format object.

    Returns the ``{"traceEvents": [...]}`` dict; serialize with
    :func:`chrome_trace_json` (or ``json.dumps``) and load the file in
    ``chrome://tracing`` / Perfetto.
    """
    events = []
    for record in tracer.records:
        event = _chrome_common(record, pid, tid)
        if record["type"] == "span":
            if "dur" in record:
                event["ph"] = "X"
                event["dur"] = round(record["dur"] * 1e6, 3)
            else:
                # Open span (mid-run flush): a begin event keeps it
                # visible in the viewer instead of dropping it.
                event["ph"] = "B"
        else:
            event["ph"] = "i"
            event["s"] = "t"  # instant scoped to this thread
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_json(tracer, pid=1, tid=1):
    """:func:`chrome_trace` serialized as a JSON string."""
    return json.dumps(chrome_trace(tracer, pid=pid, tid=tid))


def write_prometheus(metrics, path):
    """Write a Prometheus snapshot of *metrics* to *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_text(metrics))


def write_chrome_trace(tracer, path, pid=1, tid=1):
    """Write *tracer* as a chrome://tracing JSON file at *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(chrome_trace_json(tracer, pid=pid, tid=tid))
