"""The metrics registry: counters, gauges, and timer-histograms.

Instrumented sites across the codebase read the module-global
:data:`ACTIVE` and record only when it is a :class:`Metrics` instance::

    from ..obs import metrics as _obs
    ...
    m = _obs.ACTIVE
    if m is not None:
        m.inc("storage.index_lookups")

With no registry installed the cost per site is one module-attribute load
and a ``None`` test — the same shape as the engine's ``have_listeners``
guard, generalized to every layer.  The benchmark runner asserts this
disabled path stays within a few percent of the baseline wall time
(``benchmarks/run_benchmarks.py --metrics``).

The registry itself is deliberately primitive — plain dicts of numbers,
no locks, no background threads — because PARK runs are single-threaded
and the recording has to be cheap enough to leave on in production.

Metric names are dotted ``layer.event`` strings; the full catalog lives
in ``docs/observability.md``.  :meth:`Metrics.fingerprint` extracts the
*semantic* counters — those that every evaluation strategy and matcher
backend must agree on bit-for-bit — which the benchmark runner and CI
assert equal across all strategy × backend combinations.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

#: The installed registry, or ``None`` (telemetry disabled).  Hot paths
#: read this through the module (``_obs.ACTIVE``) so installation is
#: visible everywhere without indirection.
ACTIVE = None

#: Counters that are a function of the PARK semantics alone — identical
#: for every evaluation strategy and matcher backend on the same run.
#: ``Metrics.fingerprint()`` is restricted to these.
SEMANTIC_COUNTERS = (
    "engine.runs",
    "engine.rounds",
    "engine.epochs",
    "engine.restarts",
    "engine.conflicts_resolved",
    "engine.firings",
    "engine.blocked_instances",
)


def get_active():
    """The currently installed :class:`Metrics`, or ``None``."""
    return ACTIVE


def set_active(registry):
    """Install *registry* process-wide (``None`` disables); returns the old one."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = registry
    return previous


class Metrics:
    """A registry of counters, gauges, timer-histograms, and per-rule stats.

    * **counters** only go up (``inc``);
    * **gauges** hold the last value set (``gauge``);
    * **timers** aggregate observations into ``(count, total, min, max)``
      — a fixed-size histogram summary, not a sample reservoir;
    * **rule stats** aggregate ``(match calls, seconds, firings)`` per
      rule description — the raw material of ``repro profile``.

    Install with :func:`set_active` or the :meth:`activate` context
    manager; the engine does the latter automatically for the duration of
    a run when constructed with ``ParkEngine(metrics=...)``.
    """

    __slots__ = ("counters", "gauges", "timers", "rules")

    def __init__(self):
        self.counters = {}
        self.gauges = {}
        self.timers = {}  # name -> [count, total, min, max]
        self.rules = {}  # rule description -> [calls, seconds, firings]

    # -- recording ---------------------------------------------------------------

    def inc(self, name, amount=1):
        """Add *amount* to counter *name* (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name, value):
        """Set gauge *name* to *value* (last write wins)."""
        self.gauges[name] = value

    def observe(self, name, seconds):
        """Record one duration under timer *name*."""
        entry = self.timers.get(name)
        if entry is None:
            self.timers[name] = [1, seconds, seconds, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds
            if seconds < entry[2]:
                entry[2] = seconds
            if seconds > entry[3]:
                entry[3] = seconds

    def observe_rule(self, description, seconds, firings):
        """Record one body-match pass for the rule named *description*."""
        entry = self.rules.get(description)
        if entry is None:
            self.rules[description] = [1, seconds, firings]
        else:
            entry[0] += 1
            entry[1] += seconds
            entry[2] += firings

    @contextmanager
    def time(self, name):
        """Context manager recording the block's duration under *name*."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.observe(name, time.perf_counter() - start)

    # -- installation -------------------------------------------------------------

    @contextmanager
    def activate(self):
        """Install this registry for the duration of the block (re-entrant)."""
        previous = set_active(self)
        try:
            yield self
        finally:
            set_active(previous)

    # -- reading -----------------------------------------------------------------

    def counter(self, name):
        """Counter *name*'s value (0 if never incremented)."""
        return self.counters.get(name, 0)

    def timer_total(self, name):
        """Total seconds observed under timer *name* (0.0 if never)."""
        entry = self.timers.get(name)
        return entry[1] if entry is not None else 0.0

    def ratio(self, numerator, denominator):
        """``counter(numerator) / counter(denominator)``, or ``None`` if 0/0."""
        total = self.counter(denominator)
        if not total:
            return None
        return self.counter(numerator) / total

    def fingerprint(self):
        """The semantic counters as an ordered ``(name, value)`` tuple.

        Deterministic across evaluation strategies and matcher backends:
        any divergence means a semantics bug, which is exactly what the
        benchmark runner and CI assert on.
        """
        return tuple((name, self.counters.get(name, 0)) for name in SEMANTIC_COUNTERS)

    def as_dict(self):
        """Everything recorded, as a JSON-serializable dict."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "timers": {
                name: {
                    "count": entry[0],
                    "total_s": entry[1],
                    "min_s": entry[2],
                    "max_s": entry[3],
                }
                for name, entry in sorted(self.timers.items())
            },
            "rules": {
                description: {
                    "calls": entry[0],
                    "seconds": entry[1],
                    "firings": entry[2],
                }
                for description, entry in sorted(self.rules.items())
            },
        }

    def reset(self):
        """Drop everything recorded so far."""
        self.counters.clear()
        self.gauges.clear()
        self.timers.clear()
        self.rules.clear()

    def __repr__(self):
        return "Metrics(%d counters, %d gauges, %d timers, %d rules)" % (
            len(self.counters),
            len(self.gauges),
            len(self.timers),
            len(self.rules),
        )


class NullMetrics(Metrics):
    """A registry that records nothing — every method is a no-op.

    Installing it is semantically identical to installing ``None`` but
    exercises the *enabled* branches of every guard, which the overhead
    benchmark uses to separate guard cost from recording cost.
    """

    __slots__ = ()

    def inc(self, name, amount=1):
        pass

    def gauge(self, name, value):
        pass

    def observe(self, name, seconds):
        pass

    def observe_rule(self, description, seconds, firings):
        pass
