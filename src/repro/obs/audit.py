"""The decision trail: a structured record of *why the run did what it did*.

The heart of the PARK semantics is its decision machinery —
``conflicts(P, I)``, ``SELECT``, ``blocked``, and ``Θ``'s restart from
``I∅`` — yet the plain engine discards exactly that story: provenance is
cleared on every restart and SELECT verdicts are never recorded.  A
:class:`DecisionTrail` captures it instead:

* every **conflict** triple ``(a, ins, del)`` with both deriver sets
  (and whether a side was completed from provenance — the stale case);
* every **SELECT verdict**: policy, decision, the winning side, and the
  losing instances that entered ``B``;
* every **grounding added to** ``B``;
* every **Θ restart** from ``I∅``;
* the per-epoch **provenance archive** — each epoch's derivation record
  is snapshotted *before* the restart clears it, so "lost in a restart"
  is answerable after the fact.

Recording follows the same null-telemetry fast path as
:mod:`repro.obs.metrics`: instrumented sites read the module-global
:data:`ACTIVE` and do nothing when it is ``None``::

    from ..obs import audit as _audit
    ...
    a = _audit.ACTIVE
    if a is not None:
        a.conflict(...)

The hooks live on the *cold* paths (conflict building, resolution,
restarts) plus one per-round call in each Γ strategy, so the disabled
overhead is one module-attribute load and a ``None`` test per round —
gated by the same interleaved benchmark as the metrics registry
(``benchmarks/run_benchmarks.py --metrics``).

Two layers:

* :class:`DecisionTrail` — the in-run recorder.  It keeps *live* objects
  (:class:`~repro.core.conflicts.Conflict`,
  :class:`~repro.core.groundings.RuleGrounding`) in per-epoch
  :class:`EpochArchive` records for the why-not explainer, and a parallel
  list of flat JSON-serializable event dicts for persistence and export.
* :class:`AuditLog` — the durable sidecar.  One CRC-framed record per
  committed transaction (``a1|tx=N|len=..|crc=..|<json>``, the same
  framing discipline as the v2 journal), written by
  :class:`~repro.active.activedb.ActiveDatabase` next to the commit
  journal so ``repro audit`` can answer "why did tx 17 delete q(a)?"
  after a process restart.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import StorageError
from ..storage.fsio import REAL_FS
from . import metrics as _obs

#: The installed decision trail, or ``None`` (auditing disabled).  Hot
#: paths read this through the module (``_audit.ACTIVE``) so installation
#: is visible everywhere without indirection — the same pattern as
#: :data:`repro.obs.metrics.ACTIVE`.
ACTIVE = None


def get_active():
    """The currently installed :class:`DecisionTrail`, or ``None``."""
    return ACTIVE


def set_active(trail):
    """Install *trail* process-wide (``None`` disables); returns the old one."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = trail
    return previous


def _render_update(update):
    from ..lang.pretty import render_update

    return render_update(update)


@dataclass
class EpochArchive:
    """Everything one restart epoch decided, kept as live objects.

    ``derivations`` snapshots the epoch's provenance (``Update ->
    frozenset[RuleGrounding]``) as it stood when the epoch ended — at the
    restart that would otherwise discard it, or at the final fixpoint.
    ``conflicts`` / ``decisions`` / ``blocked_added`` describe the
    resolution step that *ended* the epoch (empty for the final epoch,
    which ends in the fixpoint instead).
    """

    epoch: int
    derivations: Dict = field(default_factory=dict)
    conflicts: Tuple = ()
    decisions: Tuple = ()  # (conflict, Decision, policy_name) triples
    blocked_added: frozenset = frozenset()
    rounds: Tuple[int, int] = (0, 0)  # first and last global round number

    def derivers(self, update):
        """The archived deriving instances of *update*, possibly empty."""
        return self.derivations.get(update, frozenset())


class DecisionTrail:
    """Records one PARK run's decision events; reusable via :meth:`reset`.

    Attach with ``ParkEngine(audit=...)`` / ``park(..., audit=True)`` or
    install process-wide with :func:`set_active`.  After the run the
    trail rides on :attr:`ParkResult.trail
    <repro.core.result.ParkResult.trail>`.
    """

    __slots__ = ("events", "epochs", "program", "database", "policy_name",
                 "_round", "_epoch", "_current")

    def __init__(self):
        self.events: List[dict] = []
        self.epochs: List[EpochArchive] = []
        self.program = None
        self.database = None
        self.policy_name = None
        self._round = 0
        self._epoch = 1
        self._current = EpochArchive(epoch=1)

    def reset(self):
        """Drop everything recorded so far (a trail records one run)."""
        self.__init__()

    # -- recording hooks (engine / core call these) -------------------------------

    def _event(self, kind, **attrs):
        record = {"kind": kind, "epoch": self._epoch, "round": self._round}
        record.update(attrs)
        self.events.append(record)
        m = _obs.ACTIVE
        if m is not None:
            m.inc("audit.events")
        return record

    def start(self, program, database, policy_name, evaluation):
        """A run begins; *program* already includes transaction rules."""
        self.reset()
        self.program = program
        self.database = database
        self.policy_name = policy_name
        self._event(
            "start",
            policy=policy_name,
            evaluation=evaluation,
            rules=len(program),
            atoms=len(database),
        )

    def round(self, strategy, firings):
        """One Γ application finished (called by the evaluation strategy)."""
        self._round += 1
        current = self._current
        first, _ = current.rounds
        current.rounds = (first or self._round, self._round)
        self._event("round", strategy=strategy, firings=firings)

    def conflict(self, conflict, stale_ins=False, stale_dels=False):
        """One conflict triple was built, with both deriver sets.

        ``stale_ins`` / ``stale_dels`` flag a side that was completed from
        historical provenance because the current firings were empty (the
        stale-conflict case of :mod:`repro.core.conflicts`).
        """
        from ..core.groundings import sort_groundings

        self._current.conflicts = self._current.conflicts + (conflict,)
        event = self._event(
            "conflict",
            atom=str(conflict.atom),
            ins=[str(g) for g in sort_groundings(conflict.ins)],
            dels=[str(g) for g in sort_groundings(conflict.dels)],
        )
        if stale_ins or stale_dels:
            event["stale_side"] = "ins" if stale_ins else "dels"
            if stale_ins and stale_dels:
                event["stale_side"] = "both"
        m = _obs.ACTIVE
        if m is not None:
            m.inc("audit.conflicts")

    def verdict(self, policy_name, conflict, decision, losers):
        """``SELECT`` decided one conflict: record policy, winner, losers."""
        from ..core.groundings import sort_groundings

        decision_is_insert = decision.value == "insert"
        winners = conflict.side(decision_is_insert)
        self._current.decisions = self._current.decisions + (
            (conflict, decision, policy_name),
        )
        self._event(
            "verdict",
            atom=str(conflict.atom),
            policy=policy_name,
            decision=decision.value,
            winners=[str(g) for g in sort_groundings(winners)],
            losers=[str(g) for g in sort_groundings(losers)],
        )
        m = _obs.ACTIVE
        if m is not None:
            m.inc("audit.verdicts")

    def blocked(self, groundings):
        """Groundings actually added to ``B`` by this resolution step."""
        from ..core.groundings import sort_groundings

        ordered = sort_groundings(groundings)
        self._current.blocked_added = self._current.blocked_added | frozenset(
            ordered
        )
        for grounding in ordered:
            self._event(
                "blocked",
                grounding=str(grounding),
                rule=grounding.rule.describe(),
                head=_render_update(grounding.ground_head()),
            )

    def archive_epoch(self, provenance):
        """Snapshot *provenance* into the current epoch's archive.

        Called right before the restart clears it (and once more at the
        fixpoint for the final epoch) — the "archived instead of
        discarded" half of the decision trail.
        """
        derivations = {
            update: provenance.derivers(update) for update in provenance.updates()
        }
        self._current.derivations = derivations
        self._event(
            "epoch_end",
            derivations={
                _render_update(update): sorted(str(g) for g in instances)
                for update, instances in derivations.items()
            },
        )
        m = _obs.ACTIVE
        if m is not None:
            m.inc("audit.epochs_archived")

    def restart(self, blocked_total):
        """A new epoch begins from ``I∅`` with the enlarged blocked set."""
        self.epochs.append(self._current)
        self._epoch += 1
        self._current = EpochArchive(epoch=self._epoch)
        self._event("restart", blocked_total=blocked_total)
        m = _obs.ACTIVE
        if m is not None:
            m.inc("audit.restarts")

    def finish(self, stats):
        """The run reached its fixpoint; close the final epoch."""
        self.epochs.append(self._current)
        self._event(
            "finish",
            rounds=stats.rounds,
            restarts=stats.restarts,
            conflicts_resolved=stats.conflicts_resolved,
            blocked=stats.blocked_instances,
        )

    # -- queries -------------------------------------------------------------------

    @property
    def final_epoch(self):
        """The last (fixpoint) epoch's archive, or ``None`` mid-run."""
        return self.epochs[-1] if self.epochs else None

    def verdict_for(self, atom):
        """The last ``(conflict, Decision, policy_name, epoch)`` on *atom*.

        The *last* verdict is the binding one: an atom can conflict again
        in a later epoch after provenance completion changed a side.
        """
        found = None
        for archive in self.epochs or [self._current]:
            for conflict, decision, policy_name in archive.decisions:
                if conflict.atom == atom:
                    found = (conflict, decision, policy_name, archive.epoch)
        return found

    def lost_derivers(self, update):
        """``(epoch, derivers)`` for the last non-final epoch that derived
        *update*, or ``None`` — the "lost in a restart" lookup."""
        found = None
        for archive in self.epochs[:-1]:
            derivers = archive.derivers(update)
            if derivers:
                found = (archive.epoch, derivers)
        return found

    def events_for(self, atom_text):
        """All events mentioning *atom_text* (a rendered atom like ``q(a)``)."""
        needle = atom_text.strip()
        marked = ("+" + needle, "-" + needle)
        matches = []
        for event in self.events:
            if self._mentions(event, needle, marked):
                matches.append(event)
        return matches

    @staticmethod
    def _mentions(event, needle, marked):
        if event.get("atom") == needle:
            return True
        for key in ("winners", "losers", "ins", "dels"):
            for text in event.get(key, ()):
                if needle in text:
                    return True
        if needle in event.get("grounding", "") or event.get("head") in marked:
            return True
        for update_text, instances in event.get("derivations", {}).items():
            if update_text in marked or any(needle in g for g in instances):
                return True
        return False

    def to_events(self):
        """The flat, JSON-serializable event list (a copy)."""
        return [dict(event) for event in self.events]

    def __len__(self):
        return len(self.events)

    def __repr__(self):
        return "DecisionTrail(%d events, %d epochs)" % (
            len(self.events),
            len(self.epochs),
        )


# -- persistence --------------------------------------------------------------------

#: Sidecar suffix: a journal at ``commits.journal`` audits to
#: ``commits.journal.audit``.
SIDECAR_SUFFIX = ".audit"


@dataclass(frozen=True)
class AuditRecord:
    """One committed transaction's decision trail, as stored on disk."""

    transaction_id: int
    events: Tuple[dict, ...]

    def verdicts(self):
        return [e for e in self.events if e["kind"] == "verdict"]

    def restarts(self):
        return [e for e in self.events if e["kind"] == "restart"]

    def conflicts(self):
        return [e for e in self.events if e["kind"] == "conflict"]


def _render_audit_record(transaction_id, events):
    body = json.dumps(events, sort_keys=True, separators=(",", ":"))
    body_bytes = body.encode("utf-8")
    return "a1|tx=%d|len=%d|crc=%08x|%s" % (
        transaction_id,
        len(body_bytes),
        zlib.crc32(body_bytes) & 0xFFFFFFFF,
        body,
    )


def _parse_audit_record(line):
    parts = line.split("|", 4)
    if len(parts) != 5 or parts[0] != "a1":
        raise StorageError("malformed audit record %r" % line[:80])
    try:
        transaction_id = int(parts[1].split("=", 1)[1])
        length = int(parts[2].split("=", 1)[1])
        crc = int(parts[3].split("=", 1)[1], 16)
    except (IndexError, ValueError) as error:
        raise StorageError("malformed audit frame %r (%s)" % (line[:80], error))
    body = parts[4]
    body_bytes = body.encode("utf-8")
    if len(body_bytes) != length:
        raise StorageError(
            "torn audit record: body is %d bytes, frame says %d"
            % (len(body_bytes), length)
        )
    if zlib.crc32(body_bytes) & 0xFFFFFFFF != crc:
        raise StorageError("audit record fails its CRC: tx=%d" % transaction_id)
    try:
        events = json.loads(body)
    except ValueError as error:
        raise StorageError("audit record body is not JSON (%s)" % error)
    return AuditRecord(transaction_id=transaction_id, events=tuple(events))


class AuditLog:
    """An append-only, CRC-framed decision-trail log backed by one file.

    The framing discipline matches the v2 commit journal: one record per
    line, ``len`` over the body bytes so truncation can never masquerade
    as completeness, CRC-32 over the body against bit rot, and a torn
    *final* record tolerated (reported via :attr:`corrupt_tail`,
    physically truncated before the next append).  Corruption before
    intact records raises — that is damage, not a crash artifact.

    Unlike the journal, the audit log is observability, not correctness:
    appends are not individually fsynced (the journal's WAL record is the
    durability contract), so a crash may lose the trail of the very last
    commit while the commit itself recovers fine.
    """

    def __init__(self, path, fs=None):
        self.path = str(path)
        self.corrupt_tail: Optional[str] = None
        self._fs = fs if fs is not None else REAL_FS
        self._good_offset = 0
        self._needs_repair = False
        self._scanned = False

    # -- writing -------------------------------------------------------------------

    def append(self, transaction_id, trail_or_events):
        """Append one transaction's decision trail.

        *trail_or_events* is a :class:`DecisionTrail` or a pre-rendered
        event list.  Returns the :class:`AuditRecord` written.
        """
        if isinstance(trail_or_events, DecisionTrail):
            events = trail_or_events.to_events()
        else:
            events = list(trail_or_events)
        if not self._scanned:
            self._scan()
        if self._needs_repair:
            self.repair_tail()
        data = (_render_audit_record(transaction_id, events) + "\n").encode(
            "utf-8"
        )
        self._fs.append(self.path, data, sync=False)
        self._good_offset += len(data)
        m = _obs.ACTIVE
        if m is not None:
            m.inc("audit.records")
            m.inc("audit.bytes_written", len(data))
        return AuditRecord(transaction_id=transaction_id, events=tuple(events))

    def sync(self):
        """fsync the file (the journal's group-commit barrier calls this)."""
        if self._fs.exists(self.path):
            self._fs.sync(self.path)

    # -- reading -------------------------------------------------------------------

    def _scan(self) -> List[AuditRecord]:
        self.corrupt_tail = None
        self._needs_repair = False
        self._good_offset = 0
        self._scanned = True
        if not self._fs.exists(self.path):
            return []
        data = self._fs.read_bytes(self.path)
        lines = data.splitlines(keepends=True)
        last_content = -1
        for index, raw in enumerate(lines):
            if raw.strip():
                last_content = index
        records = []
        offset = 0
        for index, raw in enumerate(lines):
            end = offset + len(raw)
            if not raw.strip():
                offset = end
                continue
            failure = None
            text = raw.decode("utf-8", "replace")
            try:
                record = _parse_audit_record(text.rstrip("\n").rstrip("\r"))
            except StorageError as error:
                failure = error
            else:
                if not raw.endswith(b"\n"):
                    failure = StorageError(
                        "final audit record has no trailing newline"
                    )
            if failure is not None:
                if index >= last_content:
                    self.corrupt_tail = text
                    self._needs_repair = True
                    break
                raise failure
            records.append(record)
            self._good_offset = end
            offset = end
        if not self._needs_repair and data and not data.endswith(b"\n"):
            self._needs_repair = True
        return records

    def records(self) -> List[AuditRecord]:
        """All readable records, in append order (torn tail tolerated)."""
        return self._scan()

    def record_for(self, transaction_id):
        """The (last) record for *transaction_id*, or ``None``."""
        found = None
        for record in self.records():
            if record.transaction_id == transaction_id:
                found = record
        return found

    def repair_tail(self):
        """Physically truncate a torn final record; returns True if repaired."""
        if not self._scanned:
            self._scan()
        if not self._needs_repair:
            return False
        self._fs.truncate(self.path, self._good_offset)
        self.corrupt_tail = None
        self._needs_repair = False
        return True

    def __len__(self):
        return len(self.records())

    def __repr__(self):
        return "AuditLog(%r)" % self.path
