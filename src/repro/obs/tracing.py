"""Span-based structured tracing, exportable as JSON lines.

A :class:`Tracer` records two kinds of entries, both plain dicts:

* **spans** — named durations with strict nesting (``engine.run`` >
  ``engine.round`` > ``match.gamma`` / ``engine.apply`` /
  ``policy.resolve`` > ...), each carrying ``id``, ``parent``, start
  timestamp ``ts`` (seconds since the tracer was created), duration
  ``dur``, and an ``attrs`` dict;
* **events** — instantaneous points (the engine listener protocol's
  ``on_*`` notifications) with the same ``id``/``parent``/``ts``/``attrs``
  shape but no duration.

Entries are appended in *start* order, so a trace flushed mid-run — e.g.
by the CLI's error path — contains every span that had begun, with open
spans marked ``"open": true`` instead of a duration.  That is what makes
``--trace-out`` useful on runs that die in a ``NonTerminationError``: the
spans recorded up to the failure are exactly the diagnosis.

The engine emits spans itself when constructed with
``ParkEngine(tracer=...)``; :class:`TracingListener` adds the listener
events into the same tracer so one JSON-lines file tells the whole story.
Tracing never touches the evaluation state — spans observe wall time and
pre-existing counts only — so it cannot perturb PARK semantics (DESIGN.md
§7).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager

from ..core.engine import EngineListener


class Tracer:
    """Records spans and events; see the module docstring for the schema."""

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._origin = clock()
        self.records = []  # every span/event dict, in start order
        self._stack = []  # open span records, innermost last
        self._next_id = 1

    # -- internals ---------------------------------------------------------------

    def _now(self):
        return self._clock() - self._origin

    def _fresh(self, type_name, name, attrs):
        record = {
            "type": type_name,
            "id": self._next_id,
            "parent": self._stack[-1]["id"] if self._stack else None,
            "name": name,
            "ts": round(self._now(), 9),
        }
        if attrs:
            record["attrs"] = attrs
        self._next_id += 1
        self.records.append(record)
        return record

    # -- spans -------------------------------------------------------------------

    def begin(self, name, **attrs):
        """Open a span; returns the record to pass to :meth:`end`.

        The explicit begin/end pair exists for instrumentation sites where
        a ``with`` block would contort control flow (the engine's round
        loop); prefer :meth:`span` elsewhere.
        """
        record = self._fresh("span", name, attrs)
        self._stack.append(record)
        return record

    def end(self, record):
        """Close *record* (and any span erroneously left open inside it)."""
        while self._stack:
            top = self._stack.pop()
            top["dur"] = round(self._now() - top["ts"], 9)
            if top is record:
                return
        raise ValueError("span %r is not open" % record.get("name"))

    @contextmanager
    def span(self, name, **attrs):
        """Context manager form of :meth:`begin`/:meth:`end`."""
        record = self.begin(name, **attrs)
        try:
            yield record
        finally:
            self.end(record)

    # -- events ------------------------------------------------------------------

    def event(self, name, **attrs):
        """Record an instantaneous event under the currently open span."""
        return self._fresh("event", name, attrs)

    # -- queries and export ------------------------------------------------------

    def open_spans(self):
        """The currently open spans, outermost first."""
        return list(self._stack)

    def spans(self, name=None):
        """All span records, optionally filtered by *name*."""
        return [
            r
            for r in self.records
            if r["type"] == "span" and (name is None or r["name"] == name)
        ]

    def events(self, name=None):
        """All event records, optionally filtered by *name*."""
        return [
            r
            for r in self.records
            if r["type"] == "event" and (name is None or r["name"] == name)
        ]

    def to_jsonl(self):
        """The trace as JSON lines; open spans are marked ``"open": true``."""
        lines = []
        for record in self.records:
            if record["type"] == "span" and "dur" not in record:
                record = dict(record, open=True)
            lines.append(json.dumps(record, sort_keys=True, default=str))
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path):
        """Write :meth:`to_jsonl` to *path*; safe to call mid-run."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())

    def __len__(self):
        return len(self.records)


class TracingListener(EngineListener):
    """Forwards the engine's ``on_*`` notifications into a :class:`Tracer`.

    Attrs are scalars and short strings — counts, names, rendered atoms —
    never live engine objects, so recording them cannot alias or mutate
    evaluation state.
    """

    def __init__(self, tracer):
        self.tracer = tracer

    def on_start(self, program, database, policy_name):
        self.tracer.event(
            "engine.start",
            policy=policy_name,
            rules=len(program),
            atoms=len(database),
        )

    def on_round(self, round_number, epoch, gamma_result):
        self.tracer.event(
            "engine.round",
            round=round_number,
            epoch=epoch,
            firings=gamma_result.firing_count,
            new_updates=len(gamma_result.new_updates),
            consistent=gamma_result.is_consistent,
        )

    def on_apply(self, round_number, epoch, interpretation):
        self.tracer.event(
            "engine.apply",
            round=round_number,
            epoch=epoch,
            marked=interpretation.marked_count(),
        )

    def on_conflicts(self, round_number, epoch, conflicts, decisions, blocked_added):
        self.tracer.event(
            "engine.conflicts",
            round=round_number,
            epoch=epoch,
            atoms=sorted(str(conflict.atom) for conflict in conflicts),
            decisions=len(decisions),
            blocked_added=len(blocked_added),
        )

    def on_restart(self, epoch, blocked):
        self.tracer.event("engine.restart", epoch=epoch, blocked=len(blocked))

    def on_fixpoint(self, round_number, epoch, interpretation, blocked):
        self.tracer.event(
            "engine.fixpoint",
            round=round_number,
            epoch=epoch,
            marked=interpretation.marked_count(),
            blocked=len(blocked),
        )

    def on_finish(self, result):
        stats = result.stats
        self.tracer.event(
            "engine.finish",
            atoms=len(result.database),
            rounds=stats.rounds,
            epochs=stats.epochs,
            restarts=stats.restarts,
            conflicts_resolved=stats.conflicts_resolved,
            firings=stats.firings_total,
            blocked=stats.blocked_instances,
            policy=result.policy_name,
        )
