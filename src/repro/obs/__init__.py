"""Observability: always-on counters, span tracing, and run profiling.

Three cooperating layers, all opt-in and all zero-cost when disabled:

* :mod:`repro.obs.metrics` — a process-global :class:`Metrics` registry of
  cheap counters/gauges/timer-histograms.  Hot paths across the engine,
  evaluation strategies, matchers, planner, and storage guard every
  recording behind ``metrics.ACTIVE is None`` — the generalization of the
  engine's ``have_listeners`` fast path — so a run without telemetry pays
  one pointer check per instrumented site.
* :mod:`repro.obs.tracing` — span-based structured tracing.  A
  :class:`Tracer` records nested engine/match/policy spans plus the
  listener-level point events, exportable as JSON lines
  (``repro run --trace-out`` / ``repro profile --trace-out``).
* :mod:`repro.obs.profile` — the ``repro profile`` hot-spot report:
  per-rule and per-phase wall time, firings, match attempts, and index
  efficiency, as a text table or JSON.
* :mod:`repro.obs.audit` — the decision trail: every conflict triple,
  SELECT verdict, blocked grounding, and Θ restart, with per-epoch
  provenance archived instead of discarded, plus the :class:`AuditLog`
  sidecar that persists one CRC-framed record per committed transaction.
* :mod:`repro.obs.export` — exporters: Prometheus text-format metric
  snapshots and chrome://tracing JSON for recorded span traces.

This package's ``__init__`` must stay import-light: :mod:`repro.core.engine`
imports :mod:`repro.obs.metrics`, while :mod:`repro.obs.tracing` imports
the engine's listener protocol — re-exports are therefore lazy.
"""

from __future__ import annotations

from .metrics import Metrics, NullMetrics, get_active, set_active

_LAZY = {
    "Tracer": ("repro.obs.tracing", "Tracer"),
    "TracingListener": ("repro.obs.tracing", "TracingListener"),
    "hotspot_report": ("repro.obs.profile", "hotspot_report"),
    "render_profile": ("repro.obs.profile", "render_profile"),
    "AuditLog": ("repro.obs.audit", "AuditLog"),
    "AuditRecord": ("repro.obs.audit", "AuditRecord"),
    "DecisionTrail": ("repro.obs.audit", "DecisionTrail"),
    "chrome_trace": ("repro.obs.export", "chrome_trace"),
    "prometheus_text": ("repro.obs.export", "prometheus_text"),
}

__all__ = [
    "Metrics",
    "NullMetrics",
    "get_active",
    "set_active",
    "Tracer",
    "TracingListener",
    "hotspot_report",
    "render_profile",
    "AuditLog",
    "AuditRecord",
    "DecisionTrail",
    "chrome_trace",
    "prometheus_text",
]


def __getattr__(name):
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError("module %r has no attribute %r" % (__name__, name))
    import importlib

    return getattr(importlib.import_module(module_name), attribute)
