"""Dependency pass: stratification and negation placement.

Builds the predicate dependency graph (shared with the engine —
:mod:`repro.engine.dependency` — so lint and the dirty-predicate
scheduler agree on edges, polarity, and witnessing rules) and reports:

* ``PARK010`` — the program is not stratifiable: a negative edge closes
  a cycle, i.e. some predicate depends negatively on itself.  PARK still
  assigns such programs a semantics (that is the point of the paper),
  but they leave the deductive fragment where Γ iteration coincides with
  the stratified baseline, and the result can depend on rule order
  sensitivity that stratifiable programs provably don't have.
* ``PARK011`` — negation on a *derived* predicate (the program is not
  semipositive).  Purely informational: stratifiable non-semipositive
  programs are fine, but semipositivity is the fragment where negation
  is independent of evaluation order round by round.
"""

from __future__ import annotations

from ..engine.dependency import DependencyGraph
from ..lang.literals import Condition
from .diagnostics import Diagnostic


def check_graph(rules, spans=None):
    """Yield PARK010/PARK011 diagnostics for *rules*."""
    graph = DependencyGraph(rules, spans=spans)

    bad_edges = graph.negative_cycle_edges()
    bad_pairs = set()
    for edge in bad_edges:
        bad_pairs.add((edge.source, edge.target))
        rule_index = edge.rules[0] if edge.rules else None
        rule = rules[rule_index] if rule_index is not None else None
        yield Diagnostic(
            code="PARK010",
            message=(
                "not stratifiable: %r depends negatively on %r inside a "
                "recursive component" % (edge.target, edge.source)
            ),
            span=edge.span,
            rule=rule.describe() if rule is not None else None,
            rule_index=rule_index,
        )

    head_predicates = {rule.head.atom.predicate for rule in rules}
    for index, rule in enumerate(rules):
        rule_spans = spans[index] if spans is not None and index < len(spans) else None
        for literal_index, literal in enumerate(rule.body):
            if not isinstance(literal, Condition) or literal.positive:
                continue
            predicate = literal.atom.predicate
            if predicate not in head_predicates:
                continue
            # Already reported as PARK010 for this dependency.
            if (predicate, rule.head.atom.predicate) in bad_pairs:
                continue
            yield Diagnostic(
                code="PARK011",
                message=(
                    "negation on derived predicate %r (program is not "
                    "semipositive)" % predicate
                ),
                span=(
                    rule_spans.literal(literal_index)
                    if rule_spans is not None
                    else None
                ),
                rule=rule.describe(),
                rule_index=index,
            )
