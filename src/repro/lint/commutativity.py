"""Commutativity analysis: interference matrix and certified parallel groups.

``Γ`` fires every valid unblocked instance of every rule in a round, so
two rules may be *collected* concurrently exactly when their effects
cannot interfere (:mod:`repro.lint.effects`).  Interference between two
live rules of the same stratum is decided by atom unification with
variables renamed apart — the same machinery as the PARK020 conflict
pass (:func:`repro.lint.facts.atoms_may_unify`) — and classified by
increasing severity of what it breaks:

* ``read-write`` (``PARK040``) — one rule's head may ground an instance
  of the other's body literal: firing order inside a sequentialized
  round would be observable through the read.
* ``write-write`` (``PARK041``) — both heads can mark the same ground
  atom with the same polarity: harmless for the final state (marks are
  sets) but the rules share a write target, so they are not independent.
* ``delete-insert`` (``PARK042``) — the heads can mark the same ground
  atom with *opposite* polarities: the pair is non-commutative (applying
  ``+a`` then ``-a`` differs from ``-a`` then ``+a`` on a database), and
  at runtime it is exactly the PARK conflict the SELECT policy resolves.

A pair exhibiting several kinds is reported once, under the strongest.
Rules in *different* strata never need a diagnostic: strata are already
ordered barriers for scheduling purposes.

The per-stratum complement of the interference relation is then greedily
colored; each color class is a **certified independent group** — rules
whose effect sets are pairwise disjoint under unification, so collecting
their firings (and applying their updates) in any order, or in parallel,
is observationally identical.  ``PARK043`` (info) reports the
certificate; the groups land in
:class:`~repro.lint.facts.ProgramFacts` for the engine's group-batched
scheduling (``core/evaluation.py``) and are cross-checked at runtime by
the independence sanitizer (:mod:`repro.testing.sanitize`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..engine.dependency import DependencyGraph
from ..errors import EngineError
from ..lang.updates import UpdateOp
from ..obs import metrics as _obs
from .diagnostics import Diagnostic
from .facts import atoms_may_unify


def _signed(op, atom):
    return ("+" if op is UpdateOp.INSERT else "-") + str(atom)

#: Interference kinds, weakest to strongest.
READ_WRITE = "read-write"
WRITE_WRITE = "write-write"
DELETE_INSERT = "delete-insert"

_KIND_CODES = {
    READ_WRITE: "PARK040",
    WRITE_WRITE: "PARK041",
    DELETE_INSERT: "PARK042",
}


@dataclass(frozen=True)
class InterferencePair:
    """Two same-stratum live rules whose effects may overlap."""

    left: int   # rule index, < right
    right: int  # rule index
    stratum: int
    kind: str   # READ_WRITE | WRITE_WRITE | DELETE_INSERT
    predicate: str
    witness: str  # the overlapping atoms, human-readable

    def to_json(self):
        return {
            "left": self.left,
            "right": self.right,
            "stratum": self.stratum,
            "kind": self.kind,
            "predicate": self.predicate,
            "witness": self.witness,
        }


@dataclass(frozen=True)
class ParallelGroup:
    """A certified independent rule group: one color class of one stratum."""

    stratum: int
    rules: Tuple[int, ...]  # rule indices, ascending

    def to_json(self):
        return {"stratum": self.stratum, "rules": list(self.rules)}


def rule_strata(rules, graph=None):
    """The stratum of each rule (by head predicate), aligned with rule order.

    Unstratifiable programs fall back to a single stratum — sound for the
    race analysis, which only uses strata to *exclude* pairs from
    consideration (cross-stratum rules are scheduling barriers anyway).
    """
    rules = tuple(rules)
    if graph is None:
        graph = DependencyGraph(rules)
    try:
        strata = graph.stratification()
    except EngineError:
        return tuple(0 for _ in rules)
    stratum_of = {}
    for level, predicates in enumerate(strata):
        for predicate in predicates:
            stratum_of[predicate] = level
    return tuple(
        stratum_of.get(rule.head.atom.predicate, 0) for rule in rules
    )


def _classify_pair(left, right):
    """The strongest interference between two rules' effects, or ``None``.

    *left* / *right* are :class:`~repro.lint.effects.RuleEffects`.
    Returns ``(kind, predicate, witness)``.
    """
    # Write-write first: opposite polarity is the strongest finding.
    found = None
    for lw in left.writes:
        for rw in right.writes:
            if lw.predicate != rw.predicate:
                continue
            if not atoms_may_unify(lw.atom, rw.atom):
                continue
            witness = "%s vs %s" % (_signed(lw.op, lw.atom), _signed(rw.op, rw.atom))
            if lw.op is not rw.op:
                return DELETE_INSERT, lw.predicate, witness
            found = (WRITE_WRITE, lw.predicate, witness)
    if found is not None:
        return found
    # Read-write, both directions: a write that some body literal of the
    # partner observes (events only observe their own polarity).
    for writer, reader in ((left, right), (right, left)):
        for write in writer.writes:
            for read in reader.reads:
                if write.predicate != read.predicate:
                    continue
                if not read.observes(write.op):
                    continue
                if atoms_may_unify(write.atom, read.atom):
                    witness = "%s vs body %s" % (
                        _signed(write.op, write.atom),
                        read.atom,
                    )
                    return READ_WRITE, write.predicate, witness
    return None


def certify_groups(rules, effects, strata, live):
    """Build the interference matrix and color it into independent groups.

    Only *live* rules participate: dead rules never fire, so they neither
    race nor need scheduling.  Returns ``(pairs, groups)`` —
    :class:`InterferencePair` tuples (ordered by rule indices) and
    :class:`ParallelGroup` tuples (ordered by stratum, then color)
    covering exactly the live rules.
    """
    rules = tuple(rules)
    by_stratum = {}
    for index in sorted(live):
        by_stratum.setdefault(strata[index], []).append(index)

    pairs = []
    edges = set()
    groups = []
    for stratum in sorted(by_stratum):
        members = by_stratum[stratum]
        for position, left in enumerate(members):
            for right in members[position + 1 :]:
                classified = _classify_pair(effects[left], effects[right])
                if classified is None:
                    continue
                kind, predicate, witness = classified
                pairs.append(
                    InterferencePair(
                        left=left,
                        right=right,
                        stratum=stratum,
                        kind=kind,
                        predicate=predicate,
                        witness=witness,
                    )
                )
                edges.add((left, right))
        # Greedy coloring in rule order: each rule takes the smallest
        # color not used by an interfering earlier rule.  Deterministic,
        # and optimal on the interval-like graphs small programs produce.
        colors = {}
        for index in members:
            used = {
                colors[other]
                for other in members
                if other in colors
                and ((other, index) in edges or (index, other) in edges)
            }
            color = 0
            while color in used:
                color += 1
            colors[index] = color
        for color in range(max(colors.values()) + 1 if colors else 0):
            groups.append(
                ParallelGroup(
                    stratum=stratum,
                    rules=tuple(
                        index for index in members if colors[index] == color
                    ),
                )
            )

    m = _obs.ACTIVE
    if m is not None:
        m.inc("lint.effects.pairs_checked", sum(
            len(members) * (len(members) - 1) // 2
            for members in by_stratum.values()
        ))
        m.inc("lint.effects.interference", len(pairs))
        m.inc("lint.effects.groups", len(groups))
    return tuple(pairs), tuple(groups)


def check_commutativity(rules, facts, spans=None):
    """Yield PARK040–043 diagnostics from *facts*' interference matrix.

    All four codes are info severity: like PARK020, interference is a
    property the author usually *intended* (resolving delete/insert
    conflicts is what PARK is for), surfaced so they know which rules are
    — and are not — certified to fire independently.
    """

    def span_of(rule_index):
        if spans is not None and rule_index < len(spans):
            return spans[rule_index].head
        return None

    for pair in facts.interference:
        left, right = rules[pair.left], rules[pair.right]
        if pair.kind == DELETE_INSERT:
            detail = (
                "the heads can mark the same ground atom with opposite "
                "polarities (%s), so the pair is non-commutative: firing "
                "order would be observable, and at runtime the overlap is "
                "a PARK conflict for the SELECT policy" % pair.witness
            )
        elif pair.kind == WRITE_WRITE:
            detail = (
                "both heads can mark the same ground atom with the same "
                "polarity (%s); the final state is unaffected but the "
                "rules share a write target" % pair.witness
            )
        else:
            detail = (
                "one rule's head may ground an instance the other's body "
                "reads (%s); a sequentialized round would observe the "
                "firing order" % pair.witness
            )
        yield Diagnostic(
            code=_KIND_CODES[pair.kind],
            message=(
                "%s interference between %s and %s in stratum %d on %r: %s; "
                "the rules are scheduled in different parallel groups"
                % (
                    pair.kind,
                    left.describe(),
                    right.describe(),
                    pair.stratum,
                    pair.predicate,
                    detail,
                )
            ),
            span=span_of(pair.left),
            rule=left.describe(),
            rule_index=pair.left,
        )

    multi = [group for group in facts.parallel_groups if len(group.rules) > 1]
    if multi:
        by_stratum = {}
        for group in facts.parallel_groups:
            by_stratum.setdefault(group.stratum, []).append(len(group.rules))
        sizes = "; ".join(
            "stratum %d: %s"
            % (stratum, "+".join(str(n) for n in by_stratum[stratum]))
            for stratum in sorted(by_stratum)
        )
        yield Diagnostic(
            code="PARK043",
            message=(
                "certified %d independent rule group(s) covering %d live "
                "rule(s) (sizes %s); rules within a group have statically "
                "disjoint effects and may fire in any order or in parallel"
                % (
                    len(facts.parallel_groups),
                    sum(len(group.rules) for group in facts.parallel_groups),
                    sizes,
                )
            ),
        )
