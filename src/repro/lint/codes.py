"""The ``PARK0xx`` diagnostic code registry.

Codes are stable: tools and CI configurations match on them, so a code is
never renumbered or reused.  Grouping follows the analyzer's passes —

* ``PARK00x`` — parsing and schema (syntax, safety, arity, names);
* ``PARK01x`` — dependency analysis (stratification, negation);
* ``PARK02x`` — conflict-pair analysis (static ``conflicts(P, I)``);
* ``PARK03x`` — reachability and event hygiene;
* ``PARK04x`` — effect and commutativity analysis (interference between
  same-stratum rules, certified parallel groups).

``docs/lint.md`` renders this table; keep the two in sync.
"""

from __future__ import annotations

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: code -> (default severity, one-line title)
CODES = {
    "PARK001": (ERROR, "syntax error"),
    "PARK002": (
        ERROR,
        "unsafe head: a head variable is not bound by any positive body literal",
    ),
    "PARK003": (
        ERROR,
        "unsafe negation: a negated-literal variable is not bound by any "
        "positive body literal",
    ),
    "PARK004": (ERROR, "predicate used with inconsistent arities"),
    "PARK005": (ERROR, "duplicate rule name"),
    "PARK010": (
        WARNING,
        "not stratifiable: negation inside a recursive component",
    ),
    "PARK011": (
        INFO,
        "negation on a derived predicate (program is not semipositive)",
    ),
    "PARK020": (
        INFO,
        "static conflict pair: predicate derivable with both + and -",
    ),
    "PARK021": (
        WARNING,
        "conflict-resolution policy has no ordering for a reachable "
        "conflict pair",
    ),
    "PARK022": (
        INFO,
        "configured SELECT policy can never be invoked (statically "
        "conflict-free program)",
    ),
    "PARK030": (WARNING, "dead rule: a body literal can never be satisfied"),
    "PARK031": (
        WARNING,
        "unmatched event: no rule emits this event (only a transaction "
        "update could trigger it)",
    ),
    # PARK04x are info, like PARK020: interference between rules is
    # usually intended program structure (delete/insert pairs are what
    # the SELECT policy exists for), surfaced so authors can see which
    # rules are — and are not — certified to fire independently.
    "PARK040": (
        INFO,
        "read-write race: one rule's head may ground an atom another "
        "same-stratum rule's body reads",
    ),
    "PARK041": (
        INFO,
        "write-write overlap: two same-stratum rule heads can mark the "
        "same ground atom with the same polarity",
    ),
    "PARK042": (
        INFO,
        "non-commutative pair: two same-stratum rule heads can mark the "
        "same ground atom with opposite polarities",
    ),
    "PARK043": (
        INFO,
        "certified parallel groups: rules with pairwise disjoint effects "
        "that may fire in any order or in parallel",
    ),
}

#: Severity rank for sorting and exit-code gating (higher is worse).
SEVERITY_RANK = {INFO: 0, WARNING: 1, ERROR: 2}


def severity_of(code):
    """The registered default severity of *code*."""
    return CODES[code][0]


def title_of(code):
    """The registered one-line title of *code*."""
    return CODES[code][1]
