"""Engine-consumable static facts about a PARK program.

:class:`ProgramFacts` is the analyzer's product that is *not* a
diagnostic: a sound, database-agnostic (or database-sharpened)
over-approximation of what the program can do at runtime —

* **liveness** — a least fixpoint over rules: a rule is *live* iff every
  body literal is statically satisfiable (positive conditions by EDB
  facts or by a live ``+p`` head, event literals by a live ``±p`` head,
  negated conditions always).  Rules outside the fixpoint are *dead*:
  they can never fire in any epoch, under any policy, so the engine may
  prune them from matcher compilation without changing a single firing.
* **emittable marks** — which predicates a live rule can mark ``+`` /
  ``-``; the transaction rules of ``P_U`` count once the engine rebuilds
  facts for the run program.
* **conflict pairs** — the static over-approximation of the paper's
  ``conflicts(P, I)``: predicates emittable with *both* polarities, with
  the witnessing rule pairs filtered to heads that actually unify.  When
  there are none the program is *statically conflict-free*: no round can
  ever produce an inconsistent ``Γ(I)``, so the engine may skip conflict
  detection entirely.
* **stratifiability** — no negation inside a recursive component, i.e.
  PARK coincides with the stratified baseline on the deductive fragment
  and the semi-naive evaluation strategy's monotone split is maximally
  effective.
* **effects and parallel groups** — per-rule read/write effect sets
  (:mod:`repro.lint.effects`), the same-stratum interference matrix, and
  the certified independent rule groups the commutativity pass colors
  out of the non-interference graph (:mod:`repro.lint.commutativity`);
  the engine batches ``Γ`` collection per group
  (``ParkEngine(facts_groups=...)``) and the runtime independence
  sanitizer (:mod:`repro.testing.sanitize`) cross-checks the certificate
  against the atoms rules actually touch.

Soundness of the database-agnostic form: with no database in hand every
positive condition is assumed satisfiable (any predicate may have EDB
rows), which only *enlarges* the live set and the emittable marks — so
``conflict_free`` and ``dead`` remain safe answers for every database.
Passing ``database=`` sharpens liveness using which predicates actually
have rows; the engine does this per run (see ``core/engine.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from ..engine.dependency import DependencyGraph
from ..lang.terms import Constant
from ..lang.updates import UpdateOp


def atoms_may_unify(left, right):
    """Whether two (possibly non-ground) atoms from *different* rules unify.

    Variables are renamed apart (the atoms come from different rules, so
    ``X`` on one side is unrelated to ``X`` on the other).  This is exact
    unification, not just a predicate/arity check: ``p(a, X)`` unifies
    with ``p(Y, b)`` but not with ``p(b, Y)``, and ``p(X, X)`` does not
    unify with ``p(a, b)``.
    """
    if left.predicate != right.predicate or len(left.terms) != len(right.terms):
        return False
    bindings = {}

    def resolve(term):
        while not isinstance(term, Constant) and term in bindings:
            term = bindings[term]
        return term

    for position, left_term in enumerate(left.terms):
        a = resolve(
            left_term if isinstance(left_term, Constant) else ("l", left_term.name)
        )
        b_term = right.terms[position]
        b = resolve(
            b_term if isinstance(b_term, Constant) else ("r", b_term.name)
        )
        if a == b:
            continue
        if isinstance(a, Constant) and isinstance(b, Constant):
            return False
        if isinstance(a, Constant):
            bindings[b] = a
        else:
            bindings[a] = b
    return True


@dataclass(frozen=True)
class ConflictPair:
    """A predicate statically derivable with both polarities.

    ``insert_rules`` / ``delete_rules`` are the witnessing live rule
    indices whose heads participate in at least one unifiable ``+``/``-``
    pair on the predicate.
    """

    predicate: str
    insert_rules: Tuple[int, ...]
    delete_rules: Tuple[int, ...]

    def to_json(self):
        return {
            "predicate": self.predicate,
            "insert_rules": list(self.insert_rules),
            "delete_rules": list(self.delete_rules),
        }


@dataclass(frozen=True)
class UnmatchedEvent:
    """An event literal no rule head ever emits."""

    rule_index: int
    literal_index: int
    op: UpdateOp
    predicate: str

    def to_json(self):
        return {
            "rule_index": self.rule_index,
            "literal_index": self.literal_index,
            "op": "+" if self.op is UpdateOp.INSERT else "-",
            "predicate": self.predicate,
        }


@dataclass(frozen=True)
class ProgramFacts:
    """Static facts the engine can act on (see module docstring)."""

    rules: Tuple
    stratifiable: bool
    semipositive: bool
    live: FrozenSet[int]
    dead: Tuple[int, ...]
    insertable: FrozenSet[str]
    deletable: FrozenSet[str]
    conflict_pairs: Tuple[ConflictPair, ...]
    unmatched_events: Tuple[UnmatchedEvent, ...]
    database_aware: bool = False
    #: Per-rule effect signatures (lint.effects.RuleEffects), rule order.
    effects: Tuple = ()
    #: Per-rule stratum numbers (by head predicate; all zero when the
    #: program is unstratifiable), rule order.
    rule_strata: Tuple[int, ...] = ()
    #: Same-stratum live rule pairs whose effects may overlap
    #: (lint.commutativity.InterferencePair).
    interference: Tuple = ()
    #: Certified independent rule groups covering exactly the live rules
    #: (lint.commutativity.ParallelGroup): within a group, effects are
    #: pairwise disjoint under unification, so collect/apply order is
    #: unobservable — the engine's group-batched scheduling and the
    #: runtime independence sanitizer both consume this certificate.
    parallel_groups: Tuple = ()

    # -- derived ------------------------------------------------------------

    @property
    def conflict_free(self):
        """No predicate is emittable with both polarities on unifiable heads."""
        return not self.conflict_pairs

    def matches(self, program):
        """Whether these facts were computed for exactly *program*'s rules."""
        return self.rules == tuple(program)

    def live_program(self, program):
        """*program* with the statically dead rules removed.

        Raises :class:`ValueError` when *program* is not the program these
        facts describe — pruning with stale facts would be unsound.
        """
        from ..lang.program import Program

        if not self.matches(program):
            raise ValueError(
                "ProgramFacts were computed for a different program; "
                "re-run ProgramFacts.analyze on the program being pruned"
            )
        if not self.dead:
            return program
        return Program(
            tuple(
                rule
                for index, rule in enumerate(program)
                if index in self.live
            )
        )

    def to_json(self):
        return {
            "rules": len(self.rules),
            "stratifiable": self.stratifiable,
            "semipositive": self.semipositive,
            "conflict_free": self.conflict_free,
            "conflict_pairs": [pair.to_json() for pair in self.conflict_pairs],
            "dead_rules": list(self.dead),
            "unmatched_events": [e.to_json() for e in self.unmatched_events],
            "database_aware": self.database_aware,
            "effects": [effect.to_json() for effect in self.effects],
            "rule_strata": list(self.rule_strata),
            "interference": [pair.to_json() for pair in self.interference],
            "parallel_groups": [g.to_json() for g in self.parallel_groups],
        }

    # -- construction --------------------------------------------------------

    @classmethod
    def analyze(cls, program, database=None):
        """Compute the facts for *program* (any iterable of rules).

        With ``database=`` (a :class:`~repro.storage.database.Database` or
        any iterable of ground atoms), liveness is sharpened: a positive
        condition on a non-derivable predicate is satisfiable only when
        the database actually has rows for it.  Without one, any
        predicate may have EDB rows (the sound, program-only answer).
        """
        from ..lang.literals import Condition, Event

        rules = tuple(program)
        has_rows = None
        if database is not None:
            if hasattr(database, "predicates"):
                has_rows = frozenset(
                    predicate
                    for predicate in database.predicates()
                    if database.count(predicate)
                )
            else:
                has_rows = frozenset(atom.predicate for atom in database)

        # Liveness least fixpoint (see module docstring for the cases).
        live = set()
        insertable = set()
        deletable = set()

        def satisfiable(literal):
            predicate = literal.atom.predicate
            if isinstance(literal, Event):
                store = insertable if literal.op is UpdateOp.INSERT else deletable
                return predicate in store
            if not literal.positive:
                return True  # negation by failure holds over absent atoms
            if has_rows is None or predicate in has_rows:
                return True
            return predicate in insertable

        changed = True
        while changed:
            changed = False
            for index, rule in enumerate(rules):
                if index in live:
                    continue
                if all(satisfiable(literal) for literal in rule.body):
                    live.add(index)
                    head = rule.head
                    store = insertable if head.is_insert else deletable
                    if head.atom.predicate not in store:
                        store.add(head.atom.predicate)
                    changed = True
        dead = tuple(index for index in range(len(rules)) if index not in live)

        # Event hygiene: event literals nothing (live) ever emits.
        unmatched = []
        for index, rule in enumerate(rules):
            for literal_index, literal in enumerate(rule.body):
                if not isinstance(literal, Event):
                    continue
                store = (
                    insertable if literal.op is UpdateOp.INSERT else deletable
                )
                if literal.atom.predicate not in store:
                    unmatched.append(
                        UnmatchedEvent(
                            rule_index=index,
                            literal_index=literal_index,
                            op=literal.op,
                            predicate=literal.atom.predicate,
                        )
                    )

        # Conflict pairs over live rules, refined by head unifiability.
        inserts_by_predicate = {}
        deletes_by_predicate = {}
        for index in sorted(live):
            head = rules[index].head
            bucket = (
                inserts_by_predicate if head.is_insert else deletes_by_predicate
            )
            bucket.setdefault(head.atom.predicate, []).append(index)
        conflict_pairs = []
        for predicate in sorted(
            set(inserts_by_predicate) & set(deletes_by_predicate)
        ):
            insert_witnesses = set()
            delete_witnesses = set()
            for insert_index in inserts_by_predicate[predicate]:
                for delete_index in deletes_by_predicate[predicate]:
                    if atoms_may_unify(
                        rules[insert_index].head.atom,
                        rules[delete_index].head.atom,
                    ):
                        insert_witnesses.add(insert_index)
                        delete_witnesses.add(delete_index)
            if insert_witnesses:
                conflict_pairs.append(
                    ConflictPair(
                        predicate=predicate,
                        insert_rules=tuple(sorted(insert_witnesses)),
                        delete_rules=tuple(sorted(delete_witnesses)),
                    )
                )

        graph = DependencyGraph(rules)
        head_predicates = {rule.head.atom.predicate for rule in rules}
        semipositive = all(
            literal.atom.predicate not in head_predicates
            for rule in rules
            for literal in rule.body
            if isinstance(literal, Condition) and not literal.positive
        )

        # Effect and commutativity analysis: per-rule read/write sets,
        # the same-stratum interference matrix over live rules, and the
        # certified independent groups (lazy imports keep the module
        # dependency order acyclic: commutativity imports from here).
        from .commutativity import certify_groups, rule_strata
        from .effects import compute_effects

        effects = compute_effects(rules)
        strata = rule_strata(rules, graph)
        interference, parallel_groups = certify_groups(
            rules, effects, strata, live
        )
        return cls(
            rules=rules,
            stratifiable=graph.is_stratifiable(),
            semipositive=semipositive,
            live=frozenset(live),
            dead=dead,
            insertable=frozenset(insertable),
            deletable=frozenset(deletable),
            conflict_pairs=tuple(conflict_pairs),
            unmatched_events=tuple(unmatched),
            database_aware=has_rows is not None,
            effects=effects,
            rule_strata=strata,
            interference=interference,
            parallel_groups=parallel_groups,
        )
