"""Static analysis for PARK programs (``repro check``).

A multi-pass analyzer over leniently parsed programs: safety
(range-restriction), dependency analysis (stratification), conflict-pair
analysis (the static side of the paper's ``conflicts(P, I)`` and the
SELECT policy), and reachability (dead rules, event hygiene).  Findings
are :class:`Diagnostic` objects with stable ``PARK0xx`` codes (see
``docs/lint.md``); the non-diagnostic product is :class:`ProgramFacts`,
which the engine consumes to skip conflict detection, choose the
seminaive fast path, and prune dead rules — each gated and
fingerprint-preserving (see ``core/engine.py``).
"""

from .analyzer import analyze_path, analyze_text
from .codes import CODES, ERROR, INFO, WARNING, severity_of, title_of
from .conflicts import check_conflicts
from .diagnostics import Diagnostic, FileReport, LintReport
from .facts import ConflictPair, ProgramFacts, UnmatchedEvent, atoms_may_unify
from .graphs import check_graph
from .reachability import check_reachability
from .safety import check_safety

__all__ = [
    "CODES",
    "ConflictPair",
    "Diagnostic",
    "ERROR",
    "FileReport",
    "INFO",
    "LintReport",
    "ProgramFacts",
    "UnmatchedEvent",
    "WARNING",
    "analyze_path",
    "analyze_text",
    "atoms_may_unify",
    "check_conflicts",
    "check_graph",
    "check_reachability",
    "check_safety",
    "severity_of",
    "title_of",
]
