"""Static analysis for PARK programs (``repro check``).

A multi-pass analyzer over leniently parsed programs: safety
(range-restriction), dependency analysis (stratification), conflict-pair
analysis (the static side of the paper's ``conflicts(P, I)`` and the
SELECT policy), reachability (dead rules, event hygiene), and effect /
commutativity analysis (same-stratum interference, certified parallel
groups).  Findings are :class:`Diagnostic` objects with stable
``PARK0xx`` codes (see ``docs/lint.md``); the non-diagnostic product is
:class:`ProgramFacts`, which the engine consumes to skip conflict
detection, choose the seminaive fast path, prune dead rules, and batch
``Γ`` collection per certified independent group — each gated and
fingerprint-preserving (see ``core/engine.py``).
"""

from .analyzer import analyze_path, analyze_text
from .codes import CODES, ERROR, INFO, WARNING, severity_of, title_of
from .commutativity import (
    InterferencePair,
    ParallelGroup,
    certify_groups,
    check_commutativity,
    rule_strata,
)
from .conflicts import check_conflicts
from .diagnostics import Diagnostic, FileReport, LintReport
from .effects import ReadEffect, RuleEffects, WriteEffect, compute_effects
from .facts import ConflictPair, ProgramFacts, UnmatchedEvent, atoms_may_unify
from .graphs import check_graph
from .reachability import check_reachability
from .safety import check_safety

__all__ = [
    "CODES",
    "ConflictPair",
    "Diagnostic",
    "ERROR",
    "FileReport",
    "INFO",
    "InterferencePair",
    "LintReport",
    "ParallelGroup",
    "ProgramFacts",
    "ReadEffect",
    "RuleEffects",
    "UnmatchedEvent",
    "WARNING",
    "WriteEffect",
    "analyze_path",
    "analyze_text",
    "atoms_may_unify",
    "certify_groups",
    "check_commutativity",
    "check_conflicts",
    "check_graph",
    "check_reachability",
    "check_safety",
    "compute_effects",
    "rule_strata",
    "severity_of",
    "title_of",
]
