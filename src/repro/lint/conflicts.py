"""Conflict pass: the static side of ``conflicts(P, I)`` and SELECT.

Works off the :class:`~repro.lint.facts.ProgramFacts` conflict pairs —
predicates some live rule can mark ``+`` and some live rule can mark
``-`` on unifiable head atoms — and relates them to the *configured*
conflict-resolution policy:

* ``PARK020`` (info) — a static conflict pair exists.  Not a defect:
  resolving such conflicts is what PARK is for.  The linter surfaces them
  so the author knows which predicates can reach the SELECT policy.
* ``PARK021`` (warning) — the configured policy has no ordering for a
  reachable pair and will silently fall through to its tie-breaker:
  under ``priority``, both sides' witnesses tie on their maximum
  priority; under ``specificity``, no witness pair is statically
  comparable (neither rule's positive-condition predicate set strictly
  contains the other's — an approximation of the runtime strict-superset
  test on ground bodies, see :mod:`repro.policies.specificity`).
* ``PARK022`` (info) — a policy other than the inertia default was
  configured, but the program is statically conflict-free, so SELECT can
  never be invoked.
"""

from __future__ import annotations

from ..lang.literals import Condition
from .diagnostics import Diagnostic

#: Policies that always produce a decision without a tie-breaker.
_ALWAYS_DECISIVE = {"inertia", "random", "insert", "delete", "constant"}


def _policy_name(policy_spec):
    if policy_spec is None:
        return None
    name = str(policy_spec).split(":", 1)[0].strip().lower()
    return name or None


def _max_priority(rules, indices):
    return max(
        (rules[i].priority if rules[i].priority is not None else 0)
        for i in indices
    )


def _positive_predicates(rule):
    return frozenset(
        literal.atom.predicate
        for literal in rule.body
        if isinstance(literal, Condition) and literal.positive
    )


def _specificity_orderable(rules, insert_index, delete_index):
    """Static stand-in for ``more_specific``: one rule's positive-condition
    predicate set strictly contains the other's."""
    ins = _positive_predicates(rules[insert_index])
    dels = _positive_predicates(rules[delete_index])
    return ins < dels or dels < ins


def check_conflicts(rules, facts, spans=None, policy=None):
    """Yield PARK020/021/022 diagnostics for *facts* under *policy*.

    *policy* is the CLI policy spec string (``inertia``, ``priority``,
    ``specificity``, ``random[:seed]``, a constant decision) or ``None``
    when unspecified; the pass only reasons about the policy *name*.
    """
    name = _policy_name(policy)

    def span_of(rule_index):
        if spans is not None and rule_index < len(spans):
            return spans[rule_index].head
        return None

    for pair in facts.conflict_pairs:
        first_insert = pair.insert_rules[0]
        witnesses = ", ".join(
            rules[i].describe() for i in pair.insert_rules + pair.delete_rules
        )
        yield Diagnostic(
            code="PARK020",
            message=(
                "predicate %r is derivable with both + and - (rules: %s); "
                "conflicts on it resolve via the SELECT policy"
                % (pair.predicate, witnesses)
            ),
            span=span_of(first_insert),
            rule=rules[first_insert].describe(),
            rule_index=first_insert,
        )

        if name == "priority":
            if _max_priority(rules, pair.insert_rules) == _max_priority(
                rules, pair.delete_rules
            ):
                yield Diagnostic(
                    code="PARK021",
                    message=(
                        "priority policy cannot order the conflict pair on "
                        "%r: both sides' best priority is %d; conflicts "
                        "will fall through to the tie-breaker"
                        % (
                            pair.predicate,
                            _max_priority(rules, pair.insert_rules),
                        )
                    ),
                    span=span_of(first_insert),
                    rule=rules[first_insert].describe(),
                    rule_index=first_insert,
                )
        elif name == "specificity":
            if not any(
                _specificity_orderable(rules, i, j)
                for i in pair.insert_rules
                for j in pair.delete_rules
            ):
                yield Diagnostic(
                    code="PARK021",
                    message=(
                        "specificity policy cannot order the conflict pair "
                        "on %r: no witnessing rule's positive conditions "
                        "strictly contain the other side's; conflicts will "
                        "fall through to the fallback" % pair.predicate
                    ),
                    span=span_of(first_insert),
                    rule=rules[first_insert].describe(),
                    rule_index=first_insert,
                )

    if (
        name is not None
        and name not in ("inertia", None)
        and facts.conflict_free
    ):
        yield Diagnostic(
            code="PARK022",
            message=(
                "policy %r is configured but the program is statically "
                "conflict-free; SELECT can never be invoked" % name
            ),
        )
