"""Reachability pass: dead rules and event hygiene.

Reads the liveness fixpoint off :class:`~repro.lint.facts.ProgramFacts`:

* ``PARK030`` — a rule is statically dead: some body literal can never
  be satisfied (an event nothing emits; with a database in hand, also a
  positive condition on a predicate with no rows and no live deriving
  rule).  The engine's dead-rule pruning removes exactly these rules.
* ``PARK031`` — an event literal no rule emits.  Reported on the literal
  itself; at run time only a transaction update could trigger it, which
  is sometimes intended (ECA entry points) — hence a warning, not an
  error.

When a rule is dead *because* of one of its own unmatched events, only
``PARK031`` is emitted for that rule — a ``PARK030`` on top would repeat
the same fact.
"""

from __future__ import annotations

from .diagnostics import Diagnostic


def check_reachability(rules, facts, spans=None):
    """Yield PARK030/PARK031 diagnostics from *facts*."""
    unmatched_by_rule = {}
    for event in facts.unmatched_events:
        unmatched_by_rule.setdefault(event.rule_index, []).append(event)

    for event in facts.unmatched_events:
        rule = rules[event.rule_index]
        rule_spans = (
            spans[event.rule_index]
            if spans is not None and event.rule_index < len(spans)
            else None
        )
        yield Diagnostic(
            code="PARK031",
            message=(
                "no rule emits %s%s; this event can only come from a "
                "transaction update"
                % ("+" if event.op.value == "+" else "-", event.predicate)
            ),
            span=(
                rule_spans.literal(event.literal_index)
                if rule_spans is not None
                else None
            ),
            rule=rule.describe(),
            rule_index=event.rule_index,
        )

    for index in facts.dead:
        if index in unmatched_by_rule:
            continue  # already explained by PARK031 on the event literal
        rule = rules[index]
        rule_spans = spans[index] if spans is not None and index < len(spans) else None
        detail = (
            "no body literal assignment is satisfiable against the given "
            "database and the live rules"
            if facts.database_aware
            else "no live rule makes its body satisfiable"
        )
        yield Diagnostic(
            code="PARK030",
            message="rule can never fire: %s" % detail,
            span=rule_spans.rule if rule_spans is not None else None,
            rule=rule.describe(),
            rule_index=index,
        )
