"""Effect analysis: per-rule over-approximated read and write sets.

The question "may rules ``r1`` and ``r2`` fire concurrently inside one
``Γ`` round?" reduces to whether their *effects* can interfere — the same
reduction the declarative-semantics line of work on active rules makes
(Flesca & Greco; Active Integrity Constraints, see PAPERS.md).  This pass
computes the raw material:

* the **read set** of a rule is its body, literal by literal — positive
  conditions (reading ``I∅ ∪ I+`` over the predicate), negated
  conditions (reading both polarities: a ``+p`` mark can invalidate
  ``not p``, a ``-p`` mark validates it), and event literals (reading
  exactly the marks of their own polarity, Section 4.3);
* the **write set** is the head update, split by polarity into an
  insert or a delete effect on the head predicate;
* the **SELECT-policy reads**: when the rule participates in a conflict,
  the policy may inspect its ground positive body (the specificity
  policy's strict-superset test does exactly that).  Those predicates
  are already covered by the body read set — every policy shipped here
  reads nothing a body literal does not — so they are recorded as a
  named subset rather than extra edges.

Everything is kept at the *atom* level (not just predicate level): the
commutativity pass decides overlap by unification with variables renamed
apart, so ``p(a, X)`` writes and ``p(b, Y)`` reads are provably disjoint.

The sets are over-approximations of runtime behaviour — a rule that
never fires still "reads" and "writes" statically — which is the sound
direction for the race analysis built on top
(:mod:`repro.lint.commutativity`): absence of static interference
implies absence of runtime interference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..lang.literals import Condition, Event
from ..lang.updates import UpdateOp
from ..obs import metrics as _obs

#: Read-effect kinds (how the body literal observes the predicate).
CONDITION = "condition"   # positive condition: reads I∅ ∪ I+
NEGATION = "negation"     # negated condition: reads both polarities
EVENT = "event"           # event literal: reads its own polarity's marks


def _op_text(op):
    return "+" if op is UpdateOp.INSERT else "-"


@dataclass(frozen=True)
class ReadEffect:
    """One body literal's observation of a predicate.

    ``op`` is the polarity an event literal reads (``None`` for
    conditions: a positive condition is invalidated by nothing and
    validated by ``+``; a negated condition reacts to both marks — both
    conservatively interfere with writes of either polarity).
    """

    rule_index: int
    literal_index: int
    kind: str  # CONDITION | NEGATION | EVENT
    op: Optional[UpdateOp]
    atom: object  # the (possibly non-ground) body atom

    @property
    def predicate(self):
        return self.atom.predicate

    def observes(self, write_op):
        """Whether a write of *write_op* can change this literal's validity.

        Event literals read exactly their own polarity's marks; condition
        literals (positive or negated) conservatively observe both.
        """
        if self.kind == EVENT:
            return self.op is write_op
        return True

    def to_json(self):
        record = {
            "literal": self.literal_index,
            "kind": self.kind,
            "atom": str(self.atom),
        }
        if self.op is not None:
            record["op"] = _op_text(self.op)
        return record


@dataclass(frozen=True)
class WriteEffect:
    """The head update's effect: one insert or delete on the head atom."""

    rule_index: int
    op: UpdateOp
    atom: object  # the (possibly non-ground) head atom

    @property
    def predicate(self):
        return self.atom.predicate

    def to_json(self):
        return {"op": _op_text(self.op), "atom": str(self.atom)}


@dataclass(frozen=True)
class RuleEffects:
    """The full effect signature of one rule (see module docstring)."""

    rule_index: int
    reads: Tuple[ReadEffect, ...]
    writes: Tuple[WriteEffect, ...]
    #: Predicates the SELECT policy may inspect when this rule reaches a
    #: conflict — a named subset of the body read predicates (see module
    #: docstring), recorded for documentation and tooling.
    policy_reads: Tuple[str, ...]

    def read_predicates(self):
        return frozenset(read.predicate for read in self.reads)

    def write_predicates(self):
        return frozenset(write.predicate for write in self.writes)

    def to_json(self):
        return {
            "rule_index": self.rule_index,
            "reads": [read.to_json() for read in self.reads],
            "writes": [write.to_json() for write in self.writes],
            "policy_reads": list(self.policy_reads),
        }


def rule_effects(rule, rule_index):
    """The :class:`RuleEffects` of one rule."""
    reads = []
    for literal_index, literal in enumerate(rule.body):
        if isinstance(literal, Event):
            kind, op = EVENT, literal.op
        elif literal.positive:
            kind, op = CONDITION, None
        else:
            kind, op = NEGATION, None
        reads.append(
            ReadEffect(
                rule_index=rule_index,
                literal_index=literal_index,
                kind=kind,
                op=op,
                atom=literal.atom,
            )
        )
    head = rule.head
    writes = (
        WriteEffect(rule_index=rule_index, op=head.op, atom=head.atom),
    )
    policy_reads = tuple(
        sorted(
            {
                literal.atom.predicate
                for literal in rule.body
                if isinstance(literal, Condition) and literal.positive
            }
        )
    )
    return RuleEffects(
        rule_index=rule_index,
        reads=tuple(reads),
        writes=writes,
        policy_reads=policy_reads,
    )


def compute_effects(rules):
    """Per-rule effect signatures, aligned with the program's rule order."""
    rules = tuple(rules)
    effects = tuple(rule_effects(rule, index) for index, rule in enumerate(rules))
    m = _obs.ACTIVE
    if m is not None:
        m.inc("lint.effects.rules", len(effects))
        m.inc("lint.effects.reads", sum(len(e.reads) for e in effects))
        m.inc("lint.effects.writes", sum(len(e.writes) for e in effects))
    return effects
