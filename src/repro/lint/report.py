"""Human rendering of lint reports for ``repro check``.

Per file: the classification block (same lines the pre-analyzer ``check``
printed, so scripts keyed on ``stratifiable:`` or ``stratum 0`` keep
working), then the located diagnostics, then a one-line tally.  JSON
output bypasses this module entirely (``LintReport.to_json``).
"""

from __future__ import annotations

from ..engine.dependency import DependencyGraph, classify_program
from .codes import ERROR, INFO, WARNING


def _render_classification(rules, out):
    classification = classify_program(rules)
    graph = DependencyGraph(rules)
    predicates = sorted(
        {signature[0] for rule in rules for signature in rule.predicates()}
    )
    out.write("rules      : %d\n" % len(rules))
    out.write("predicates : %s\n" % ", ".join(predicates))
    out.write("positive   : %s\n" % classification.positive)
    out.write("stratifiable: %s\n" % classification.stratifiable)
    out.write("recursive  : %s\n" % classification.recursive)
    out.write("uses events: %s\n" % classification.uses_events)
    out.write("uses delete: %s\n" % classification.uses_deletion)
    if classification.stratifiable and classification.deductive:
        for level, stratum in enumerate(graph.stratification()):
            out.write(
                "stratum %d  : %s\n" % (level, ", ".join(sorted(stratum)))
            )


def _render_facts(facts, out):
    out.write("conflict-free: %s\n" % facts.conflict_free)
    if facts.dead:
        out.write(
            "dead rules : %s\n" % ", ".join(str(i) for i in facts.dead)
        )
    if facts.parallel_groups:
        out.write(
            "parallel groups: %d (sizes %s)\n"
            % (
                len(facts.parallel_groups),
                ", ".join(str(len(g.rules)) for g in facts.parallel_groups),
            )
        )


def render_file_report(report, out):
    """Write the human form of one :class:`FileReport` to *out*."""
    if report.path:
        out.write("%s:\n" % report.path)
    _render_classification(tuple(report.rule_objects), out)
    if report.facts is not None:
        _render_facts(report.facts, out)
    if report.diagnostics:
        out.write("\n")
        for diagnostic in report.diagnostics:
            out.write(diagnostic.format(report.path) + "\n")
    out.write(
        "\n%d error(s), %d warning(s), %d info\n"
        % (report.errors, report.warnings, report.count(INFO))
    )


def render_lint_report(lint_report, out):
    """Write the human form of a multi-file :class:`LintReport` to *out*."""
    for position, file_report in enumerate(lint_report.files):
        if position:
            out.write("\n")
        render_file_report(file_report, out)
    if len(lint_report.files) > 1:
        out.write(
            "\ntotal: %d file(s), %d error(s), %d warning(s)\n"
            % (len(lint_report.files), lint_report.errors, lint_report.warnings)
        )
