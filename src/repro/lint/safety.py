"""Safety pass: the range-restriction conditions of Section 2.

A PARK rule is *safe* when (1) every head variable and (2) every variable
of a negated body literal is bound by a positive body literal — a
positive condition or an event (events bind because they are matched
against the marked sets).  The strict parser refuses unsafe rules
outright; this pass re-derives the violations on leniently parsed rules
so the linter can report *every* offending variable with a precise span:

* ``PARK002`` — a head variable is unbound;
* ``PARK003`` — a negated-literal variable is unbound.
"""

from __future__ import annotations

from ..lang.literals import Condition
from .diagnostics import Diagnostic


def _binding_variables(rule):
    bound = set()
    for literal in rule.body:
        if literal.binds:
            bound |= literal.variables()
    return bound


def check_safety(rules, spans=None):
    """Yield PARK002/PARK003 diagnostics for the unsafe rules in *rules*."""
    for index, rule in enumerate(rules):
        rule_spans = spans[index] if spans is not None and index < len(spans) else None
        bound = _binding_variables(rule)

        unsafe_head = rule.head.variables() - bound
        if unsafe_head:
            yield Diagnostic(
                code="PARK002",
                message=(
                    "head variable(s) %s are not bound by any positive "
                    "body literal"
                    % ", ".join(sorted(v.name for v in unsafe_head))
                ),
                span=rule_spans.head if rule_spans is not None else None,
                rule=rule.describe(),
                rule_index=index,
            )

        for literal_index, literal in enumerate(rule.body):
            if not isinstance(literal, Condition) or literal.positive:
                continue
            unsafe = literal.variables() - bound
            if unsafe:
                yield Diagnostic(
                    code="PARK003",
                    message=(
                        "variable(s) %s occur only in the negated literal %s"
                        % (", ".join(sorted(v.name for v in unsafe)), literal)
                    ),
                    span=(
                        rule_spans.literal(literal_index)
                        if rule_spans is not None
                        else None
                    ),
                    rule=rule.describe(),
                    rule_index=index,
                )
