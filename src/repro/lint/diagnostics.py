"""Diagnostic objects and the per-file / multi-file lint reports.

A :class:`Diagnostic` is one finding: a stable ``PARK0xx`` code, a
severity, a human message, and (when known) the source span and the rule
it concerns.  :class:`FileReport` collects one file's diagnostics with
the :class:`~repro.lint.facts.ProgramFacts` the analyzer derived;
:class:`LintReport` aggregates files for the CLI, which renders either
the human form (``path:line:col: severity[CODE]: message``) or ``--json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .codes import ERROR, SEVERITY_RANK, WARNING, severity_of


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding, ready for human or JSON rendering."""

    code: str
    message: str
    severity: str = None  # defaults to the code's registered severity
    span: Optional[object] = None  # a lang.source.Span
    rule: Optional[str] = None  # rule.describe() of the rule concerned
    rule_index: Optional[int] = None

    def __post_init__(self):
        if self.severity is None:
            object.__setattr__(self, "severity", severity_of(self.code))

    @property
    def rank(self):
        return SEVERITY_RANK[self.severity]

    def sort_key(self):
        span = self.span
        position = (span.line, span.column) if span is not None else (0, 0)
        return position + (self.code, self.message)

    def format(self, path=None):
        """``path:line:col: severity[CODE]: message`` (parts optional)."""
        prefix = ""
        if path:
            prefix = "%s:" % path
        if self.span is not None:
            prefix += "%d:%d:" % (self.span.line, self.span.column)
        if prefix:
            prefix += " "
        suffix = " (rule %s)" % self.rule if self.rule else ""
        return "%s%s[%s]: %s%s" % (
            prefix,
            self.severity,
            self.code,
            self.message,
            suffix,
        )

    def to_json(self):
        record = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.span is not None:
            record["span"] = self.span.to_json()
        if self.rule is not None:
            record["rule"] = self.rule
        if self.rule_index is not None:
            record["rule_index"] = self.rule_index
        return record


@dataclass
class FileReport:
    """One source file's (or in-memory program's) analysis result."""

    path: Optional[str]
    diagnostics: Tuple[Diagnostic, ...] = ()
    facts: Optional[object] = None  # a lint.facts.ProgramFacts
    rules: int = 0
    rule_objects: Tuple = ()  # the parsed rules (not serialized)

    def __post_init__(self):
        self.diagnostics = tuple(
            sorted(self.diagnostics, key=Diagnostic.sort_key)
        )

    def count(self, severity):
        return sum(1 for d in self.diagnostics if d.severity == severity)

    @property
    def errors(self):
        return self.count(ERROR)

    @property
    def warnings(self):
        return self.count(WARNING)

    def codes(self):
        """The distinct diagnostic codes present, sorted."""
        return sorted({d.code for d in self.diagnostics})

    def to_json(self):
        record = {
            "path": self.path,
            "rules": self.rules,
            "diagnostics": [d.to_json() for d in self.diagnostics],
        }
        if self.facts is not None:
            record["facts"] = self.facts.to_json()
        return record


@dataclass
class LintReport:
    """A multi-file analysis run, as produced by ``repro check``."""

    files: List[FileReport] = field(default_factory=list)

    def add(self, file_report):
        self.files.append(file_report)

    @property
    def diagnostics(self):
        for file_report in self.files:
            for diagnostic in file_report.diagnostics:
                yield file_report.path, diagnostic

    @property
    def errors(self):
        return sum(f.errors for f in self.files)

    @property
    def warnings(self):
        return sum(f.warnings for f in self.files)

    @property
    def total(self):
        return sum(len(f.diagnostics) for f in self.files)

    def exit_code(self, strict=False):
        """0 when clean; 1 on errors, or on warnings under ``--strict``."""
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0

    def to_json(self, strict=False):
        return {
            "files": [f.to_json() for f in self.files],
            "summary": {
                "files": len(self.files),
                "errors": self.errors,
                "warnings": self.warnings,
                "diagnostics": self.total,
                "strict": strict,
                "exit_code": self.exit_code(strict=strict),
            },
        }
