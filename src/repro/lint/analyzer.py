"""The analyzer driver: lenient parse, run every pass, build the report.

:func:`analyze_text` is the one entry point the CLI, the engine helpers,
and the tests share: it parses leniently (collecting every syntax,
schema, and safety problem instead of stopping at the first), computes
:class:`~repro.lint.facts.ProgramFacts`, runs the five analysis passes,
and returns a :class:`~repro.lint.diagnostics.FileReport`.

The parser's own issues map onto codes here — ``PARK001`` (syntax),
``PARK004`` (arity), ``PARK005`` (duplicate name); its safety issues are
*not* converted, because the safety pass re-derives them per literal
(``PARK002``/``PARK003``) with sharper spans.
"""

from __future__ import annotations

import re

from ..lang.parser import parse_source
from ..lang.source import ARITY, DUPLICATE_NAME, SYNTAX
from .commutativity import check_commutativity
from .conflicts import check_conflicts
from .diagnostics import Diagnostic, FileReport
from .facts import ProgramFacts
from .graphs import check_graph
from .reachability import check_reachability
from .safety import check_safety

#: Parser issue kind -> diagnostic code (safety intentionally absent).
_PARSE_CODES = {
    SYNTAX: "PARK001",
    ARITY: "PARK004",
    DUPLICATE_NAME: "PARK005",
}

#: Parser errors bake their position into the message; the diagnostic
#: renders the span itself, so drop the redundant prefix.
_POSITION_PREFIX = re.compile(r"^line \d+, column \d+: ")


def analyze_text(text, path=None, policy=None, database=None):
    """Analyze PARK source *text* and return a :class:`FileReport`.

    *policy* is the CLI policy spec string the program is meant to run
    under (``None`` disables the policy-specific conflict diagnostics);
    *database* optionally sharpens liveness (see
    :meth:`ProgramFacts.analyze`).
    """
    parsed = parse_source(text)
    diagnostics = []

    for issue in parsed.issues:
        code = _PARSE_CODES.get(issue.kind)
        if code is None:
            continue
        rule = None
        if issue.rule_index is not None and issue.rule_index < len(parsed.rules):
            rule = parsed.rules[issue.rule_index].describe()
        diagnostics.append(
            Diagnostic(
                code=code,
                message=_POSITION_PREFIX.sub("", issue.message),
                span=issue.span,
                rule=rule,
                rule_index=issue.rule_index,
            )
        )

    rules = parsed.rules
    spans = parsed.spans
    diagnostics.extend(check_safety(rules, spans))

    facts = ProgramFacts.analyze(rules, database=database)
    diagnostics.extend(check_graph(rules, spans))
    diagnostics.extend(check_conflicts(rules, facts, spans, policy=policy))
    diagnostics.extend(check_reachability(rules, facts, spans))
    diagnostics.extend(check_commutativity(rules, facts, spans))

    return FileReport(
        path=path,
        diagnostics=tuple(diagnostics),
        facts=facts,
        rules=len(rules),
        rule_objects=rules,
    )


def analyze_path(path, policy=None, database=None):
    """Analyze the PARK source file at *path*."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return analyze_text(text, path=str(path), policy=policy, database=database)
