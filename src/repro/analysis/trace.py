"""Trace recording: capture a PARK run step by step.

The paper's evaluation *is* its traces — sequences of intermediate
interpretations like ``(1) {p, +a, +q}`` with conflict-resolution
interludes.  :class:`TraceRecorder` is an engine listener that captures
exactly that structure; :mod:`repro.analysis.render` prints it in the
paper's notation, and the golden tests compare recorded traces against
the sequences printed in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..core.engine import EngineListener


@dataclass(frozen=True)
class RoundEvent:
    """One ``Γ`` application that was consistent and applied.

    ``interpretation`` is the frozen ``(I∅, I+, I-)`` triple *after* the
    round's updates were merged.
    """

    kind: str  # "round"
    round_number: int
    epoch: int
    new_updates: Tuple
    interpretation: tuple


@dataclass(frozen=True)
class ConflictEvent:
    """A conflict-resolution step (``Θ``'s second branch)."""

    kind: str  # "conflict"
    round_number: int
    epoch: int
    conflicts: Tuple
    decisions: Tuple
    blocked_added: frozenset
    inconsistent_interpretation: tuple


@dataclass(frozen=True)
class RestartEvent:
    """A new epoch starting from ``I∅`` with the enlarged blocked set."""

    kind: str  # "restart"
    epoch: int
    blocked: frozenset


@dataclass(frozen=True)
class FixpointEvent:
    """The final fixpoint."""

    kind: str  # "fixpoint"
    round_number: int
    epoch: int
    interpretation: tuple
    blocked: frozenset


class TraceRecorder(EngineListener):
    """Records every engine event; attach via ``ParkEngine(listeners=[...])``.

    A recorder may be reused across runs; :attr:`events` always refers to
    the most recent run (reset on ``on_start``).
    """

    def __init__(self):
        self.events = []
        self.program = None
        self.database = None
        self.policy_name = None
        self.result = None
        self._pending_gamma = None

    # -- listener protocol ---------------------------------------------------------

    def on_start(self, program, database, policy_name):
        self.events = []
        self.program = program
        self.database = database.copy()
        self.policy_name = policy_name
        self.result = None

    def on_round(self, round_number, epoch, gamma_result):
        self._pending_gamma = (round_number, epoch, gamma_result)

    def on_apply(self, round_number, epoch, interpretation):
        _, _, gamma_result = self._pending_gamma
        self.events.append(
            RoundEvent(
                kind="round",
                round_number=round_number,
                epoch=epoch,
                new_updates=tuple(gamma_result.new_updates),
                interpretation=interpretation.freeze(),
            )
        )

    def on_conflicts(self, round_number, epoch, conflicts, decisions, blocked_added):
        _, _, gamma_result = self._pending_gamma
        # What Γ *would* have produced: the paper prints this inconsistent
        # set before resolving (e.g. step (2) in the Section 5 walkthrough).
        would_be = gamma_result.interpretation.copy()
        would_be.add_updates(gamma_result.new_updates)
        self.events.append(
            ConflictEvent(
                kind="conflict",
                round_number=round_number,
                epoch=epoch,
                conflicts=tuple(conflicts),
                decisions=tuple(decisions),
                blocked_added=frozenset(blocked_added),
                inconsistent_interpretation=would_be.freeze(),
            )
        )

    def on_restart(self, epoch, blocked):
        self.events.append(RestartEvent(kind="restart", epoch=epoch, blocked=blocked))

    def on_fixpoint(self, round_number, epoch, interpretation, blocked):
        self.events.append(
            FixpointEvent(
                kind="fixpoint",
                round_number=round_number,
                epoch=epoch,
                interpretation=interpretation.freeze(),
                blocked=blocked,
            )
        )

    def on_finish(self, result):
        self.result = result
        result.trace = self

    # -- queries ----------------------------------------------------------------------

    def rounds(self):
        """The consistent, applied rounds in order."""
        return [e for e in self.events if e.kind == "round"]

    def conflicts(self):
        """The conflict-resolution events in order."""
        return [e for e in self.events if e.kind == "conflict"]

    def interpretations(self):
        """Frozen interpretations after each applied round, in order."""
        return [e.interpretation for e in self.rounds()]

    def epochs(self):
        """Number of restart epochs observed (>= 1 once run)."""
        return 1 + sum(1 for e in self.events if e.kind == "restart")

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
