"""Run reports: a readable markdown account of one PARK computation.

``report(result, trace)`` assembles everything a reviewer would ask for
— inputs, final state, delta, conflict decisions, blocked set, counters,
and (optionally) the full paper-notation trace — into one markdown
document.  The CLI and the examples use it; tests assert its structure
so the format is stable enough to diff.
"""

from __future__ import annotations

from ..core.groundings import sort_groundings
from ..lang.pretty import render_program
from .render import (
    render_database,
    render_decision,
    render_frozen_interpretation,
    render_trace,
)


def _section(title):
    return "## %s" % title


def report(result, trace=None, title="PARK run report", include_trace=True):
    """Build a markdown report for *result* (a :class:`ParkResult`).

    *trace* may be the :class:`TraceRecorder` attached to the run; when
    omitted, ``result.trace`` is used if present.
    """
    trace = trace if trace is not None else result.trace
    lines = ["# %s" % title, ""]

    lines.append(_section("Outcome"))
    lines.append("")
    lines.append("* policy: `%s`" % result.policy_name)
    lines.append("* result database: `%s`" % render_database(result.database))
    lines.append("* delta vs. input: `%s`" % result.delta)
    lines.append(
        "* final interpretation: `%s`"
        % render_frozen_interpretation(result.interpretation.freeze())
    )
    lines.append("")

    lines.append(_section("Counters"))
    lines.append("")
    stats = result.stats
    lines.append("| rounds | restarts | conflicts | blocked instances | firings |")
    lines.append("|---|---|---|---|---|")
    lines.append(
        "| %d | %d | %d | %d | %d |"
        % (
            stats.rounds,
            stats.restarts,
            stats.conflicts_resolved,
            stats.blocked_instances,
            stats.firings_total,
        )
    )
    lines.append("")

    if result.blocked:
        lines.append(_section("Blocked rule instances"))
        lines.append("")
        for grounding in sort_groundings(result.blocked):
            lines.append("* `%s`" % grounding)
        lines.append("")

    if trace is not None and trace.conflicts():
        lines.append(_section("Conflict decisions"))
        lines.append("")
        for event in trace.conflicts():
            lines.append(
                "round %d (epoch %d):" % (event.round_number, event.epoch)
            )
            for conflict, decision in event.decisions:
                lines.append("* %s" % render_decision(conflict, decision))
            lines.append("")

    if trace is not None and include_trace:
        lines.append(_section("Trace"))
        lines.append("")
        lines.append("```")
        lines.append(render_trace(trace))
        lines.append("```")
        lines.append("")

    if trace is not None and trace.program is not None:
        lines.append(_section("Inputs"))
        lines.append("")
        lines.append("```")
        lines.append(render_program(trace.program))
        lines.append("```")
        lines.append("")
        lines.append(
            "initial database: `%s`" % render_database(trace.database)
        )
        lines.append("")

    return "\n".join(lines).rstrip() + "\n"


def save_report(result, path, **options):
    """Write :func:`report` output to *path*."""
    text = report(result, **options)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text
