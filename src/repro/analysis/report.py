"""Run reports: a readable markdown account of one PARK computation.

``report(result, trace)`` assembles everything a reviewer would ask for
— inputs, final state, delta, conflict decisions, blocked set, counters,
and (optionally) the full paper-notation trace — into one markdown
document.  The CLI and the examples use it; tests assert its structure
so the format is stable enough to diff.
"""

from __future__ import annotations

from ..core.groundings import sort_groundings
from ..lang.pretty import render_program
from .render import (
    render_database,
    render_decision,
    render_frozen_interpretation,
    render_trace,
)


def _section(title):
    return "## %s" % title


def _epoch_breakdown(trace):
    """Per-epoch ``Γ`` application counts from the recorded events.

    Every trace event except restarts stands for one ``Γ`` application:
    applied rounds, the inconsistent round a conflict resolves, and the
    final fixpoint round.  Returns ``[(epoch, count, ending), ...]`` where
    *ending* is ``"conflict"`` or ``"fixpoint"``.
    """
    per_epoch = {}
    endings = {}
    for event in trace:
        if event.kind == "restart":
            continue
        per_epoch[event.epoch] = per_epoch.get(event.epoch, 0) + 1
        if event.kind in ("conflict", "fixpoint"):
            endings[event.epoch] = event.kind
    return [
        (epoch, per_epoch[epoch], endings.get(epoch, "fixpoint"))
        for epoch in sorted(per_epoch)
    ]


def _telemetry_section(trace, metrics):
    """The Telemetry section lines, in the paper's notation."""
    lines = [_section("Telemetry"), ""]

    if trace is not None and len(trace):
        lines.append("Γ applications per epoch:")
        lines.append("")
        for epoch, count, ending in _epoch_breakdown(trace):
            outcome = (
                "reached the fixpoint Θ^ω"
                if ending == "fixpoint"
                else "ended in a conflict (restart from I∅)"
            )
            lines.append("* epoch %d: Γ^%d, %s" % (epoch, count, outcome))
        lines.append("")

    if metrics is not None:
        timers = metrics.timers
        if timers:
            lines.append("| phase | time (s) | calls |")
            lines.append("|---|---|---|")
            for name in ("phase.match", "phase.apply", "phase.policy", "phase.incorp"):
                entry = timers.get(name)
                if entry is not None:
                    lines.append(
                        "| %s | %.6f | %d |" % (name, entry[1], entry[0])
                    )
            lines.append("")
        lookups = metrics.counter("storage.index_lookups")
        hits = metrics.counter("storage.index_hits")
        ratio = metrics.ratio("storage.index_hits", "storage.index_lookups")
        lines.append(
            "* index lookups: %d (%s hit ratio), %d full scans"
            % (
                lookups,
                "%.1f%%" % (ratio * 100) if ratio is not None else "n/a",
                metrics.counter("storage.full_scans"),
            )
        )
        lines.append(
            "* rule matching: %d full Γ matches, %d delta matches, "
            "%d dirty-skips"
            % (
                metrics.counter("eval.full_matches"),
                metrics.counter("eval.delta_matches"),
                metrics.counter("eval.volatile_skipped_clean"),
            )
        )
        lines.append(
            "* conflicts resolved: %d across %d restarts"
            % (
                metrics.counter("engine.conflicts_resolved"),
                metrics.counter("engine.restarts"),
            )
        )
        lines.append("")
    return lines


def report(result, trace=None, metrics=None, title="PARK run report",
           include_trace=True):
    """Build a markdown report for *result* (a :class:`ParkResult`).

    *trace* may be the :class:`TraceRecorder` attached to the run; when
    omitted, ``result.trace`` is used if present.  Likewise *metrics*
    defaults to ``result.metrics``, so a run made with telemetry enabled
    reports its counters with no extra plumbing.
    """
    trace = trace if trace is not None else result.trace
    metrics = metrics if metrics is not None else result.metrics
    lines = ["# %s" % title, ""]

    lines.append(_section("Outcome"))
    lines.append("")
    lines.append("* policy: `%s`" % result.policy_name)
    lines.append("* result database: `%s`" % render_database(result.database))
    lines.append("* delta vs. input: `%s`" % result.delta)
    lines.append(
        "* final interpretation: `%s`"
        % render_frozen_interpretation(result.interpretation.freeze())
    )
    lines.append("")

    lines.append(_section("Counters"))
    lines.append("")
    stats = result.stats
    lines.append("| rounds | restarts | conflicts | blocked instances | firings |")
    lines.append("|---|---|---|---|---|")
    lines.append(
        "| %d | %d | %d | %d | %d |"
        % (
            stats.rounds,
            stats.restarts,
            stats.conflicts_resolved,
            stats.blocked_instances,
            stats.firings_total,
        )
    )
    lines.append("")

    if metrics is not None or (trace is not None and len(trace)):
        lines.extend(_telemetry_section(trace, metrics))

    if result.blocked:
        lines.append(_section("Blocked rule instances"))
        lines.append("")
        for grounding in sort_groundings(result.blocked):
            lines.append("* `%s`" % grounding)
        lines.append("")

    if trace is not None and trace.conflicts():
        lines.append(_section("Conflict decisions"))
        lines.append("")
        for event in trace.conflicts():
            lines.append(
                "round %d (epoch %d):" % (event.round_number, event.epoch)
            )
            for conflict, decision in event.decisions:
                lines.append("* %s" % render_decision(conflict, decision))
            lines.append("")

    if trace is not None and include_trace:
        lines.append(_section("Trace"))
        lines.append("")
        lines.append("```")
        lines.append(render_trace(trace))
        lines.append("```")
        lines.append("")

    if trace is not None and trace.program is not None:
        lines.append(_section("Inputs"))
        lines.append("")
        lines.append("```")
        lines.append(render_program(trace.program))
        lines.append("```")
        lines.append("")
        lines.append(
            "initial database: `%s`" % render_database(trace.database)
        )
        lines.append("")

    return "\n".join(lines).rstrip() + "\n"


def save_report(result, path, **options):
    """Write :func:`report` output to *path*."""
    text = report(result, **options)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text
