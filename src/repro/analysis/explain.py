"""Explanations: why did an update end up in the result — and why not?

**Why**: built on the provenance the engine records during its final
epoch — every marked literal knows the rule instances that derived it,
and each instance's ground body tells which facts and earlier updates
supported it.  Chasing those edges yields a derivation tree — the "valid
reasons for the literal" the paper's Section 4.1 discussion is about.

    >>> from repro.core import park
    >>> result = park("p -> +q. q -> +r.", "p.")
    >>> from repro.analysis.explain import Explainer
    >>> print(Explainer(result).explain_text("+r"))
    +r
      by (q -> +r)
        q  [derived]
          +q
            by (p -> +q)
              p  [base fact]

**Why not**: the negative-space question — why is a marked literal
*absent* from the final interpretation?  :meth:`Explainer.why_not` walks
a fixed taxonomy, most specific first:

* ``blocked`` — an instance deriving it is in ``B``; the conflict that
  blocked it and the *winning* side are named (from the decision trail
  when the run was audited, from final-epoch provenance otherwise);
* ``lost`` — it was derived in an earlier epoch and discarded when ``Θ``
  restarted from ``I∅`` (requires the decision trail's epoch archives);
* ``refuted`` — a candidate rule's body fails only on negation: the
  negated atom holds in the final state;
* ``never-matched`` — a candidate rule exists but some positive body
  literal never held;
* ``underivable`` — no registered rule's head even unifies with it.

    >>> blocked = park("p -> +q. p -> -q. q -> +a. q -> -a. p -> +a.", "p.",
    ...               audit=True)
    >>> print(Explainer(blocked).why_not_text("+q"))
    why not +q?
      blocked by the conflict on q: SELECT chose delete (policy inertia, epoch 1)
        winning side: (p -> -q)
        blocked instances: (p -> +q)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import EngineError
from ..lang.literals import Condition, Event
from ..lang.terms import Constant, Variable
from ..lang.updates import Update, UpdateOp


@dataclass(frozen=True)
class Support:
    """One body literal's justification inside a derivation step."""

    literal: object          # the ground body literal
    child: Optional["DerivationNode"]  # derivation of a supporting update
    note: str                # "base fact", "absent", "marked deleted", ...


@dataclass(frozen=True)
class DerivationStep:
    """One rule instance that derived the node's update."""

    grounding: object
    supports: Tuple[Support, ...]


@dataclass(frozen=True)
class DerivationNode:
    """Derivations of one marked literal (possibly several rule instances)."""

    update: Update
    steps: Tuple[DerivationStep, ...]
    cyclic: bool = False


@dataclass(frozen=True)
class Reason:
    """Why one candidate rule failed to derive the target (why-not detail)."""

    rule: str        # the rule's description, e.g. "r2" or "(p -> +q)"
    kind: str        # "refuted" | "never-matched" | "fires"
    detail: str      # human-readable account naming the failing literal

    def to_dict(self):
        return {"rule": self.rule, "kind": self.kind, "detail": self.detail}


@dataclass(frozen=True)
class WhyNot:
    """A structured why-not verdict for one absent marked literal.

    ``kind`` is one of ``present`` (nothing to explain — it *is* in the
    result), ``blocked``, ``lost``, ``refuted``, ``never-matched``, or
    ``underivable`` — see the module docstring for the taxonomy.
    """

    update: Update
    kind: str
    blocked: Tuple = ()                 # blocked instances deriving the target
    winner: Optional[Update] = None     # the winning marked literal
    winners: Tuple = ()                 # the winning side's instances
    policy: Optional[str] = None
    epoch: Optional[int] = None         # epoch of the binding verdict / loss
    lost_derivers: Tuple = ()           # instances that derived it pre-restart
    reasons: Tuple[Reason, ...] = field(default=())

    def to_dict(self):
        """JSON-ready dict (groundings rendered as text)."""
        payload = {"target": str(self.update), "kind": self.kind}
        if self.blocked:
            payload["blocked"] = [str(g) for g in self.blocked]
        if self.winner is not None:
            payload["winner"] = str(self.winner)
        if self.winners:
            payload["winners"] = [str(g) for g in self.winners]
        if self.policy is not None:
            payload["policy"] = self.policy
        if self.epoch is not None:
            payload["epoch"] = self.epoch
        if self.lost_derivers:
            payload["lost_derivers"] = [str(g) for g in self.lost_derivers]
        if self.reasons:
            payload["reasons"] = [reason.to_dict() for reason in self.reasons]
        return payload


class Explainer:
    """Builds derivation trees and why-not verdicts from a :class:`ParkResult`.

    *program* supplies the candidate rules for why-not analysis; when
    omitted it is taken from the result's decision trail (``audit=True``
    runs).  Why and why-not on blocked/derived literals work without it.
    """

    def __init__(self, result, program=None):
        if result.provenance is None:
            raise EngineError(
                "result carries no provenance; run through ParkEngine/park()"
            )
        self._result = result
        self._provenance = result.provenance
        self._interpretation = result.interpretation
        self._trail = getattr(result, "trail", None)
        if program is None and self._trail is not None:
            program = self._trail.program
        self._program = program

    # -- tree construction ------------------------------------------------------------

    def explain(self, update, max_depth=32):
        """The derivation tree of a marked literal (``Update`` or ``"+q(a)"``).

        Raises :class:`EngineError` if the literal is not in the final
        interpretation (nothing to explain).
        """
        update = self._coerce(update)
        if not self._interpretation.has_update(update):
            raise EngineError(
                "%s is not in the final i-interpretation; nothing to explain"
                % update
            )
        return self._node(update, frozenset(), max_depth)

    def _coerce(self, update):
        if isinstance(update, Update):
            return update
        if isinstance(update, str):
            text = update.strip()
            if not text or text[0] not in "+-":
                raise EngineError(
                    "explain targets are marked literals like '+q(a)'; got %r"
                    % update
                )
            from ..lang.parser import parse_atom

            op = UpdateOp.INSERT if text[0] == "+" else UpdateOp.DELETE
            return Update(op, parse_atom(text[1:]))
        raise TypeError("cannot explain %r" % (update,))

    def _node(self, update, seen, depth):
        if update in seen or depth <= 0:
            return DerivationNode(update=update, steps=(), cyclic=True)
        seen = seen | {update}
        steps = []
        from ..core.groundings import sort_groundings

        for grounding in sort_groundings(self._provenance.derivers(update)):
            supports = []
            for literal in grounding.ground_body():
                supports.append(self._support(literal, seen, depth - 1))
            steps.append(DerivationStep(grounding=grounding, supports=tuple(supports)))
        return DerivationNode(update=update, steps=tuple(steps))

    def _support(self, literal, seen, depth):
        interpretation = self._interpretation
        if isinstance(literal, Event):
            child = self._node(literal.update, seen, depth)
            return Support(literal=literal, child=child, note="event")
        if isinstance(literal, Condition) and literal.positive:
            atom = literal.atom
            if interpretation.has_unmarked(atom):
                return Support(literal=literal, child=None, note="base fact")
            plus = Update(UpdateOp.INSERT, atom)
            if interpretation.has_plus(atom):
                return Support(
                    literal=literal, child=self._node(plus, seen, depth), note="derived"
                )
            return Support(literal=literal, child=None, note="unsupported")
        # negated condition
        atom = literal.atom
        if interpretation.has_minus(atom):
            minus = Update(UpdateOp.DELETE, atom)
            return Support(
                literal=literal,
                child=self._node(minus, seen, depth),
                note="marked deleted",
            )
        return Support(literal=literal, child=None, note="absent")

    # -- rendering ---------------------------------------------------------------------

    def explain_text(self, update, max_depth=32):
        """The derivation tree rendered as an indented text outline."""
        node = self.explain(update, max_depth=max_depth)
        lines = []
        self._render_node(node, 0, lines)
        return "\n".join(lines)

    def _render_node(self, node, indent, lines):
        pad = "  " * indent
        suffix = "  [cycle]" if node.cyclic else ""
        lines.append("%s%s%s" % (pad, node.update, suffix))
        for step in node.steps:
            lines.append("%s  by %s" % (pad, step.grounding))
            for support in step.supports:
                if support.child is None:
                    lines.append(
                        "%s    %s  [%s]" % (pad, support.literal, support.note)
                    )
                else:
                    lines.append("%s    %s  [%s]" % (pad, support.literal, support.note))
                    self._render_node(support.child, indent + 3, lines)

    def explain_json(self, update, max_depth=32):
        """The derivation tree as a JSON-ready nested dict."""
        return self._node_dict(self.explain(update, max_depth=max_depth))

    def _node_dict(self, node):
        payload = {"update": str(node.update)}
        if node.cyclic:
            payload["cyclic"] = True
        payload["steps"] = [
            {
                "by": str(step.grounding),
                "rule": step.grounding.rule.describe(),
                "supports": [
                    dict(
                        {"literal": str(s.literal), "note": s.note},
                        **(
                            {"child": self._node_dict(s.child)}
                            if s.child is not None
                            else {}
                        )
                    )
                    for s in step.supports
                ],
            }
            for step in node.steps
        ]
        return payload

    # -- why not -----------------------------------------------------------------------

    def why_not(self, update):
        """Why is *update* absent from the final interpretation?

        Returns a :class:`WhyNot`; see the module docstring for the
        taxonomy.  Candidate-rule analysis (``refuted`` /
        ``never-matched`` / ``underivable``) needs the program — passed to
        the constructor or recovered from an audited run's trail; without
        it those kinds degrade to ``unknown``.
        """
        update = self._coerce(update)
        if self._interpretation.has_update(update):
            return WhyNot(update=update, kind="present")

        from ..core.groundings import sort_groundings

        blockers = sort_groundings(
            g for g in self._result.blocked if g.ground_head() == update
        )
        if blockers:
            winner, winners, policy, epoch = self._winning_side(update)
            return WhyNot(
                update=update,
                kind="blocked",
                blocked=tuple(blockers),
                winner=winner,
                winners=tuple(winners),
                policy=policy,
                epoch=epoch,
            )

        lost = None
        if self._trail is not None:
            lost = self._trail.lost_derivers(update)
        reasons = self._candidate_reasons(update)
        if lost is not None:
            epoch, derivers = lost
            return WhyNot(
                update=update,
                kind="lost",
                epoch=epoch,
                lost_derivers=tuple(sort_groundings(derivers)),
                reasons=reasons if reasons is not None else (),
            )
        if reasons is None:
            return WhyNot(update=update, kind="unknown")
        if not reasons:
            return WhyNot(update=update, kind="underivable")
        kind = (
            "refuted"
            if any(reason.kind == "refuted" for reason in reasons)
            else "never-matched"
        )
        return WhyNot(update=update, kind=kind, reasons=reasons)

    def _winning_side(self, update):
        """``(winner update, winning instances, policy, epoch)`` for a blocked target."""
        from ..core.groundings import sort_groundings

        if self._trail is not None:
            found = self._trail.verdict_for(update.atom)
            if found is not None:
                conflict, decision, policy, epoch = found
                is_insert = decision.value == "insert"
                winner_op = UpdateOp.INSERT if is_insert else UpdateOp.DELETE
                return (
                    Update(winner_op, update.atom),
                    sort_groundings(conflict.side(is_insert)),
                    policy,
                    epoch,
                )
        # No trail: the opposite literal's final-epoch derivers are the
        # side that won (it is the one still standing).
        opposite = Update(
            UpdateOp.DELETE if update.is_insert else UpdateOp.INSERT, update.atom
        )
        winners = sort_groundings(self._provenance.derivers(opposite))
        winner = opposite if self._interpretation.has_update(opposite) else None
        return winner, winners, self._result.policy_name, None

    def _candidate_reasons(self, update):
        """One :class:`Reason` per rule whose head unifies with *update*.

        Returns ``None`` when no program is available, an empty tuple when
        no head unifies (underivable).
        """
        if self._program is None:
            return None
        reasons = []
        for rule in self._program:
            head = rule.head
            if head.op is not update.op:
                continue
            bindings = _unify_atom(head.atom, update.atom)
            if bindings is None:
                continue
            reasons.append(self._rule_reason(rule, bindings))
        return tuple(reasons)

    def _rule_reason(self, rule, bindings):
        """Walk the rule body under *bindings*; name the first dead literal."""
        from ..core.validity import InterpretationView

        view = InterpretationView(self._interpretation)
        states = [dict(bindings)]
        for literal in rule.body:
            extended = []
            for state in states:
                extended.extend(_extensions(literal, state, view))
            if not extended:
                return self._dead_literal_reason(rule, literal, states)
            states = extended
        # Every body literal held for some grounding, yet the head is
        # absent and nothing was blocked — only reachable on hand-built
        # results; report it honestly rather than guessing.
        return Reason(
            rule=rule.describe(),
            kind="fires",
            detail="body holds in the final state (unexpected for an engine run)",
        )

    def _dead_literal_reason(self, rule, literal, states):
        rendered = str(literal.substitute(states[0])) if states else str(literal)
        if isinstance(literal, Condition) and not literal.positive:
            # The negation failed: the atom *holds*.  Name a ground witness
            # when the bindings pin one down.
            witness = literal.atom.substitute(states[0]) if states else literal.atom
            return Reason(
                rule=rule.describe(),
                kind="refuted",
                detail="refuted by negation: not %s fails because %s holds"
                % (witness, witness),
            )
        if isinstance(literal, Event):
            return Reason(
                rule=rule.describe(),
                kind="never-matched",
                detail="never matched: event %s did not occur" % rendered,
            )
        return Reason(
            rule=rule.describe(),
            kind="never-matched",
            detail="never matched: %s does not hold in the final state" % rendered,
        )

    def why_not_text(self, update):
        """The why-not verdict rendered as an indented text outline."""
        verdict = self.why_not(update)
        target = verdict.update
        lines = ["why not %s?" % target]
        if verdict.kind == "present":
            lines.append("  it IS in the result — use explain for its derivation")
        elif verdict.kind == "blocked":
            decision = "insert" if verdict.winner and verdict.winner.is_insert else "delete"
            where = ", epoch %d" % verdict.epoch if verdict.epoch is not None else ""
            lines.append(
                "  blocked by the conflict on %s: SELECT chose %s (policy %s%s)"
                % (target.atom, decision, verdict.policy, where)
            )
            if verdict.winners:
                lines.append(
                    "    winning side: %s"
                    % ", ".join(str(g) for g in verdict.winners)
                )
            lines.append(
                "    blocked instances: %s"
                % ", ".join(str(g) for g in verdict.blocked)
            )
        elif verdict.kind == "lost":
            lines.append(
                "  lost in a restart: derived in epoch %d by %s, discarded when "
                "Θ restarted from I∅" % (
                    verdict.epoch,
                    ", ".join(str(g) for g in verdict.lost_derivers),
                )
            )
            for reason in verdict.reasons:
                lines.append("    afterwards, rule %s: %s" % (reason.rule, reason.detail))
        elif verdict.kind == "underivable":
            lines.append("  no rule's head unifies with %s" % target)
        elif verdict.kind == "unknown":
            lines.append(
                "  not derivable from the final provenance; re-run with "
                "audit=True (or pass program=) for rule-level analysis"
            )
        else:
            lines.append("  no instance with head %s survived to the fixpoint:" % target)
            for reason in verdict.reasons:
                lines.append("    rule %s: %s" % (reason.rule, reason.detail))
        return "\n".join(lines)


def _unify_atom(pattern, ground):
    """Match a (possibly open) head atom against a ground atom.

    Returns the binding dict, or ``None`` when they cannot unify.
    """
    if (
        pattern.predicate != ground.predicate
        or pattern.arity != ground.arity
    ):
        return None
    bindings = {}
    for p_term, g_term in zip(pattern.terms, ground.terms):
        if isinstance(p_term, Variable):
            bound = bindings.get(p_term)
            if bound is None:
                bindings[p_term] = g_term
            elif bound != g_term:
                return None
        elif p_term != g_term:
            return None
    return bindings


def _extensions(literal, bindings, view):
    """All extensions of *bindings* under which *literal* is valid.

    Ground literals simply pass validity through; open positive
    conditions and events enumerate candidate rows from the
    interpretation's stores.  Open negated conditions cannot be decided
    (range restriction makes them rare here) and yield nothing.
    """
    from ..core.validity import valid

    instantiated = literal.substitute(bindings)
    if instantiated.is_ground():
        return [bindings] if valid(instantiated, view.interpretation) else []
    if isinstance(instantiated, Condition) and not instantiated.positive:
        return []
    atom = instantiated.atom if isinstance(instantiated, Condition) else instantiated.update.atom
    bound = {
        position: term.value
        for position, term in enumerate(atom.terms)
        if isinstance(term, Constant)
    }
    if isinstance(instantiated, Event):
        rows = view.event_candidates(
            instantiated.op, atom.predicate, atom.arity, bound
        )
    else:
        rows = view.condition_candidates(atom.predicate, atom.arity, bound)
    results = []
    for row in rows:
        extended = dict(bindings)
        ok = True
        for position, term in enumerate(atom.terms):
            if isinstance(term, Variable):
                value = Constant(row[position])
                existing = extended.get(term)
                if existing is None:
                    extended[term] = value
                elif existing != value:
                    ok = False
                    break
        if ok:
            results.append(extended)
    return results


def why(result, update):
    """Shorthand: ``why(result, "+q(a)")`` -> indented explanation text."""
    return Explainer(result).explain_text(update)


def why_not(result, update, program=None):
    """Shorthand: ``why_not(result, "+q(a)")`` -> why-not verdict text."""
    return Explainer(result, program=program).why_not_text(update)
