"""Explanations: why did an update end up in the result?

Built on the provenance the engine records during its final epoch: every
marked literal knows the rule instances that derived it, and each
instance's ground body tells which facts and earlier updates supported it.
Chasing those edges yields a derivation tree — the "valid reasons for the
literal" the paper's Section 4.1 discussion is about.

    >>> from repro.core import park
    >>> result = park("p -> +q. q -> +r.", "p.")
    >>> from repro.analysis.explain import Explainer
    >>> print(Explainer(result).explain_text("+r"))  # doctest: +SKIP
    +r
      by (r2, []) since q
        +q
          by (r1, []) since p
            p  [base fact]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import EngineError
from ..lang.literals import Condition, Event
from ..lang.updates import Update, UpdateOp


@dataclass(frozen=True)
class Support:
    """One body literal's justification inside a derivation step."""

    literal: object          # the ground body literal
    child: Optional["DerivationNode"]  # derivation of a supporting update
    note: str                # "base fact", "absent", "marked deleted", ...


@dataclass(frozen=True)
class DerivationStep:
    """One rule instance that derived the node's update."""

    grounding: object
    supports: Tuple[Support, ...]


@dataclass(frozen=True)
class DerivationNode:
    """Derivations of one marked literal (possibly several rule instances)."""

    update: Update
    steps: Tuple[DerivationStep, ...]
    cyclic: bool = False


class Explainer:
    """Builds derivation trees from a :class:`ParkResult`'s provenance."""

    def __init__(self, result):
        if result.provenance is None:
            raise EngineError(
                "result carries no provenance; run through ParkEngine/park()"
            )
        self._result = result
        self._provenance = result.provenance
        self._interpretation = result.interpretation

    # -- tree construction ------------------------------------------------------------

    def explain(self, update, max_depth=32):
        """The derivation tree of a marked literal (``Update`` or ``"+q(a)"``).

        Raises :class:`EngineError` if the literal is not in the final
        interpretation (nothing to explain).
        """
        update = self._coerce(update)
        if not self._interpretation.has_update(update):
            raise EngineError(
                "%s is not in the final i-interpretation; nothing to explain"
                % update
            )
        return self._node(update, frozenset(), max_depth)

    def _coerce(self, update):
        if isinstance(update, Update):
            return update
        if isinstance(update, str):
            text = update.strip()
            if not text or text[0] not in "+-":
                raise EngineError(
                    "explain targets are marked literals like '+q(a)'; got %r"
                    % update
                )
            from ..lang.parser import parse_atom

            op = UpdateOp.INSERT if text[0] == "+" else UpdateOp.DELETE
            return Update(op, parse_atom(text[1:]))
        raise TypeError("cannot explain %r" % (update,))

    def _node(self, update, seen, depth):
        if update in seen or depth <= 0:
            return DerivationNode(update=update, steps=(), cyclic=True)
        seen = seen | {update}
        steps = []
        from ..core.groundings import sort_groundings

        for grounding in sort_groundings(self._provenance.derivers(update)):
            supports = []
            for literal in grounding.ground_body():
                supports.append(self._support(literal, seen, depth - 1))
            steps.append(DerivationStep(grounding=grounding, supports=tuple(supports)))
        return DerivationNode(update=update, steps=tuple(steps))

    def _support(self, literal, seen, depth):
        interpretation = self._interpretation
        if isinstance(literal, Event):
            child = self._node(literal.update, seen, depth)
            return Support(literal=literal, child=child, note="event")
        if isinstance(literal, Condition) and literal.positive:
            atom = literal.atom
            if interpretation.has_unmarked(atom):
                return Support(literal=literal, child=None, note="base fact")
            plus = Update(UpdateOp.INSERT, atom)
            if interpretation.has_plus(atom):
                return Support(
                    literal=literal, child=self._node(plus, seen, depth), note="derived"
                )
            return Support(literal=literal, child=None, note="unsupported")
        # negated condition
        atom = literal.atom
        if interpretation.has_minus(atom):
            minus = Update(UpdateOp.DELETE, atom)
            return Support(
                literal=literal,
                child=self._node(minus, seen, depth),
                note="marked deleted",
            )
        return Support(literal=literal, child=None, note="absent")

    # -- rendering ---------------------------------------------------------------------

    def explain_text(self, update, max_depth=32):
        """The derivation tree rendered as an indented text outline."""
        node = self.explain(update, max_depth=max_depth)
        lines = []
        self._render_node(node, 0, lines)
        return "\n".join(lines)

    def _render_node(self, node, indent, lines):
        pad = "  " * indent
        suffix = "  [cycle]" if node.cyclic else ""
        lines.append("%s%s%s" % (pad, node.update, suffix))
        for step in node.steps:
            lines.append("%s  by %s" % (pad, step.grounding))
            for support in step.supports:
                if support.child is None:
                    lines.append(
                        "%s    %s  [%s]" % (pad, support.literal, support.note)
                    )
                else:
                    lines.append("%s    %s  [%s]" % (pad, support.literal, support.note))
                    self._render_node(support.child, indent + 3, lines)


def why(result, update):
    """Shorthand: ``why(result, "+q(a)")`` -> indented explanation text."""
    return Explainer(result).explain_text(update)
