"""Analysis: tracing, paper-style rendering, explanations, scaling stats."""

from .compare import RunComparison, compare_runs
from .explain import DerivationNode, DerivationStep, Explainer, Support, why
from .report import report, save_report
from .render import (
    render_database,
    render_decision,
    render_frozen_interpretation,
    render_interpretation,
    render_trace,
    trace_interpretation_strings,
)
from .stats import (
    PowerLawFit,
    SweepPoint,
    fit_power_law,
    geometric_sizes,
    summarize_sweep,
)
from .trace import (
    ConflictEvent,
    FixpointEvent,
    RestartEvent,
    RoundEvent,
    TraceRecorder,
)

__all__ = [
    "ConflictEvent",
    "DerivationNode",
    "DerivationStep",
    "Explainer",
    "FixpointEvent",
    "PowerLawFit",
    "RestartEvent",
    "RunComparison",
    "compare_runs",
    "RoundEvent",
    "Support",
    "SweepPoint",
    "TraceRecorder",
    "fit_power_law",
    "geometric_sizes",
    "render_database",
    "report",
    "save_report",
    "render_decision",
    "render_frozen_interpretation",
    "render_interpretation",
    "render_trace",
    "summarize_sweep",
    "trace_interpretation_strings",
    "why",
]
