"""Render interpretations and traces in the paper's notation.

The paper writes i-interpretations as ``{p, +q, -a}`` — unmarked atoms
bare, insertions prefixed ``+``, deletions prefixed ``-`` (the paper's
``?a`` is its typesetting of ``-a``).  These helpers produce exactly that
notation from frozen interpretation triples and recorded traces, so the
golden tests in ``tests/integration`` can assert against strings lifted
verbatim from the paper.
"""

from __future__ import annotations

from ..lang.pretty import render_atom


def render_frozen_interpretation(frozen):
    """``(I∅, I+, I-)`` triple -> ``{p, +q, -a}`` with deterministic order.

    Atoms are sorted by their unsigned text, so ``+q`` sorts where ``q``
    would — matching how the paper lists interpretations.
    """
    unmarked, plus, minus = frozen
    entries = [(render_atom(a), "") for a in unmarked]
    entries += [(render_atom(a), "+") for a in plus]
    entries += [(render_atom(a), "-") for a in minus]
    entries.sort(key=lambda pair: (pair[0], pair[1]))
    return "{%s}" % ", ".join("%s%s" % (sign, text) for text, sign in entries)


def render_interpretation(interpretation):
    """Render a live :class:`IInterpretation` in paper notation."""
    return render_frozen_interpretation(interpretation.freeze())


def render_database(database):
    """Render a database instance as ``{p, q(a)}``."""
    atoms = sorted(render_atom(a) for a in database.atoms())
    return "{%s}" % ", ".join(atoms)


def render_decision(conflict, decision):
    """One line describing a policy decision on a conflict."""
    ins_rules = sorted({g.rule.describe() for g in conflict.ins})
    del_rules = sorted({g.rule.describe() for g in conflict.dels})
    return "conflict on %s: ins={%s} del={%s} -> %s" % (
        render_atom(conflict.atom),
        ", ".join(ins_rules),
        ", ".join(del_rules),
        decision,
    )


def render_trace(trace, include_decisions=True):
    """A multi-line, paper-style account of a recorded run.

    Numbered lines are the interpretations after each applied round, as in
    the paper's ``(1) {p, +a, +q}``; conflict steps show the inconsistent
    set ``Γ`` would have produced, the decisions taken, and the restart.
    """
    lines = []
    step = 0
    for event in trace.events:
        if event.kind == "round":
            step += 1
            lines.append(
                "(%d) %s" % (step, render_frozen_interpretation(event.interpretation))
            )
        elif event.kind == "conflict":
            step += 1
            lines.append(
                "(%d) %s   <- inconsistent"
                % (step, render_frozen_interpretation(event.inconsistent_interpretation))
            )
            if include_decisions:
                for conflict, decision in event.decisions:
                    lines.append("    %s" % render_decision(conflict, decision))
                blocked = sorted(str(g) for g in event.blocked_added)
                lines.append("    blocked += {%s}" % ", ".join(blocked))
        elif event.kind == "restart":
            lines.append("    restart from I0 (epoch %d)" % event.epoch)
        elif event.kind == "fixpoint":
            lines.append(
                "fixpoint: %s" % render_frozen_interpretation(event.interpretation)
            )
    return "\n".join(lines)


def trace_interpretation_strings(trace):
    """Just the numbered interpretation strings, for golden comparisons."""
    result = []
    for event in trace.events:
        if event.kind == "round":
            result.append(render_frozen_interpretation(event.interpretation))
        elif event.kind == "conflict":
            result.append(
                render_frozen_interpretation(event.inconsistent_interpretation)
            )
    return result
