"""Run-statistics aggregation and scaling analysis for benchmarks.

The paper claims polynomial tractability (Section 3's requirement,
discharged in Section 4.2: "computable in polynomial time in the size of
D", with at most ``size(P)`` conflict-resolution restarts).  The scaling
benchmarks verify the *shape* of those claims by sweeping input sizes,
timing runs, and fitting a power law ``t ≈ c · n^k``; :func:`fit_power_law`
does the fit by least squares in log-log space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class PowerLawFit:
    """``t ≈ coefficient * n ** exponent`` with an r² goodness measure."""

    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, n):
        return self.coefficient * (n ** self.exponent)

    def __str__(self):
        return "t ~ %.3g * n^%.2f (r^2=%.3f)" % (
            self.coefficient,
            self.exponent,
            self.r_squared,
        )


def fit_power_law(sizes: Sequence[float], times: Sequence[float]) -> PowerLawFit:
    """Least-squares fit of ``log t = k log n + log c``.

    Pure-python (no numpy dependency at the library level) and exact for
    the two-parameter model.  Requires at least two distinct sizes and
    strictly positive inputs.
    """
    if len(sizes) != len(times):
        raise ValueError("sizes and times must have equal length")
    if len(sizes) < 2:
        raise ValueError("need at least two points to fit")
    if any(s <= 0 for s in sizes) or any(t <= 0 for t in times):
        raise ValueError("sizes and times must be strictly positive")

    xs = [math.log(s) for s in sizes]
    ys = [math.log(t) for t in times]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("need at least two distinct sizes")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x

    ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return PowerLawFit(
        exponent=slope, coefficient=math.exp(intercept), r_squared=r_squared
    )


@dataclass(frozen=True)
class SweepPoint:
    """One measurement in a parameter sweep."""

    size: int
    seconds: float
    stats: object = None


def summarize_sweep(points: Sequence[SweepPoint]):
    """Fit and pretty-print a sweep; returns ``(fit, table_text)``.

    The table mirrors how the benchmarks print series: one row per size
    with time and (when available) engine counters.
    """
    fit = fit_power_law([p.size for p in points], [p.seconds for p in points])
    lines = ["%10s  %12s  %8s  %8s" % ("size", "seconds", "rounds", "restarts")]
    for point in points:
        rounds = getattr(point.stats, "rounds", "")
        restarts = getattr(point.stats, "restarts", "")
        lines.append(
            "%10d  %12.6f  %8s  %8s" % (point.size, point.seconds, rounds, restarts)
        )
    lines.append(str(fit))
    return fit, "\n".join(lines)


def geometric_sizes(start, stop, steps):
    """Geometrically spaced integer sizes, deduplicated, inclusive of ends."""
    if steps < 2 or start <= 0 or stop < start:
        raise ValueError("need steps >= 2 and 0 < start <= stop")
    ratio = (stop / start) ** (1.0 / (steps - 1))
    sizes = []
    for index in range(steps):
        size = int(round(start * ratio ** index))
        if not sizes or size > sizes[-1]:
            sizes.append(size)
    return sizes
