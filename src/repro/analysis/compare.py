"""Comparing runs: what did two policies (or two programs) do differently?

``compare_runs`` takes named :class:`ParkResult` objects over the *same*
input database and produces a structured comparison — atoms unique to
each outcome, blocked-set differences, counter deltas — plus a markdown
table.  This is the analysis behind the paper's Section 5 point that the
policy is orthogonal to the machinery: same program, same fixpoint
engine, observably different (and explainable) outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from ..lang.pretty import render_atom


@dataclass(frozen=True)
class RunComparison:
    """Pairwise comparison of named run outcomes."""

    names: Tuple[str, ...]
    atoms: Dict[str, frozenset]
    common_atoms: frozenset
    unique_atoms: Dict[str, frozenset]
    blocked_rules: Dict[str, Tuple[str, ...]]
    stats: Dict[str, object]

    def agreement(self):
        """True iff every run produced the same database."""
        return all(not unique for unique in self.unique_atoms.values())

    def to_markdown(self):
        """A compact markdown table of the comparison."""
        lines = [
            "| run | result size | unique atoms | blocked rules | restarts |",
            "|---|---|---|---|---|",
        ]
        for name in self.names:
            unique = ", ".join(
                sorted(render_atom(a) for a in self.unique_atoms[name])
            )
            blocked = ", ".join(self.blocked_rules[name])
            lines.append(
                "| %s | %d | %s | %s | %d |"
                % (
                    name,
                    len(self.atoms[name]),
                    unique or "—",
                    blocked or "—",
                    self.stats[name].restarts,
                )
            )
        lines.append("")
        lines.append(
            "common atoms: %d; runs agree: %s"
            % (len(self.common_atoms), self.agreement())
        )
        return "\n".join(lines)


def compare_runs(results: Mapping[str, object]) -> RunComparison:
    """Compare named ParkResults; names preserve insertion order.

    >>> compare_runs({"inertia": r1, "priority": r2}).agreement()  # doctest: +SKIP
    """
    if len(results) < 2:
        raise ValueError("compare_runs needs at least two runs")
    names = tuple(results)
    atoms = {name: results[name].atoms for name in names}
    common = frozenset.intersection(*atoms.values())
    unique = {name: atoms[name] - common for name in names}
    blocked = {
        name: tuple(results[name].blocked_rules()) for name in names
    }
    stats = {name: results[name].stats for name in names}
    return RunComparison(
        names=names,
        atoms=atoms,
        common_atoms=common,
        unique_atoms=unique,
        blocked_rules=blocked,
        stats=stats,
    )
