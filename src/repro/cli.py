"""Command-line interface: run PARK computations from files or stdin.

Usage (also via ``python -m repro``)::

    python -m repro run --rules rules.park --db facts.park
    python -m repro run --rules rules.park --db facts.park \
        --update '+q(b)' --update '-active(joe)' \
        --policy priority --trace
    python -m repro check examples/                   # static analysis
    python -m repro check rules.park --json --strict  # CI gating
    python -m repro query --db facts.park --query 'p(X), not q(X)'
    python -m repro explain --rules r.park --db d.park --target '+q'
    python -m repro explain --rules r.park --db d.park --target '+q' \
        --why-not --json                              # why is +q absent?
    python -m repro profile examples/quickstart.park  # hot-spot report
    python -m repro journal verify commits.journal    # WAL integrity check
    python -m repro audit show commits.journal.audit --tx 17 --atom 'q(a)'

Policies: ``inertia`` (default), ``priority``, ``specificity``,
``random[:seed]``, ``insert``, ``delete``.  Exit status is 0 on success,
1 on usage/parse errors, 2 on engine errors.

``check`` runs the static analyzer (:mod:`repro.lint`) over one or more
``.park`` files or directories: classification, ``PARK0xx`` diagnostics
with source spans, and the derived program facts.  Exit status: 1 when
any *error* diagnostic is present (also for warnings under ``--strict``);
info diagnostics never gate.  ``run`` and ``profile`` take ``--facts`` to
let the engine use the same analysis for its static fast paths, and both
warn once (to stderr) when the program has safety violations, excluding
the unsafe rules from the run instead of failing inside grounding.

Telemetry: ``run`` takes ``--metrics`` (print the counter registry),
``--trace-out FILE`` (write the span trace as JSON lines), and
``--max-rounds`` / ``--max-restarts`` budgets.  ``profile`` always runs
with telemetry on and prints the per-rule/per-phase hot-spot table (or
``--json``).  Both flush whatever telemetry was recorded even when the
engine errors out mid-run, so a diverging program still yields a usable
partial trace and profile.  Both also take ``--prom-out FILE``
(Prometheus text-format metrics snapshot) and ``--chrome-out FILE``
(chrome://tracing JSON of the span trace).

``explain`` always runs with the decision trail enabled; ``--why-not``
asks the negative-space question (why is the target *absent*: blocked by
which conflict and winning side, lost in a restart, refuted by negation,
or never matched), and ``--json`` emits either answer structurally.
``audit`` reads the ``<journal>.audit`` sidecar an
``ActiveDatabase(audit=True)`` writes: one CRC-framed decision-trail
record per committed transaction, filterable by ``--tx`` and ``--atom``.
"""

from __future__ import annotations

import argparse
import json
import sys
from time import perf_counter

from .analysis.explain import Explainer
from .analysis.render import render_database, render_trace
from .analysis.trace import TraceRecorder
from .core.blocking import BlockingMode
from .core.engine import ParkEngine
from .engine.plancache import DEFAULT_PLAN_CACHE
from .errors import EngineError, ParkError
from .lang.parser import parse_atom, parse_database, parse_program
from .lang.updates import Update, UpdateOp
from .obs import Metrics
from .storage.database import Database


def _read(path):
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _parse_update(text):
    text = text.strip()
    if not text or text[0] not in "+-":
        raise ParkError(
            "update %r must start with '+' or '-' (e.g. '+q(b)')" % text
        )
    op = UpdateOp.INSERT if text[0] == "+" else UpdateOp.DELETE
    return Update(op, parse_atom(text[1:]))


def _make_policy(spec):
    from .policies.composite import ConstantPolicy
    from .policies.inertia import InertiaPolicy
    from .policies.priority import PriorityPolicy
    from .policies.random_choice import RandomPolicy
    from .policies.specificity import SpecificityPolicy

    name, _, argument = spec.partition(":")
    name = name.strip().lower()
    if name == "inertia":
        return InertiaPolicy()
    if name == "priority":
        return PriorityPolicy()
    if name == "specificity":
        return SpecificityPolicy()
    if name == "random":
        return RandomPolicy(seed=int(argument) if argument else 0)
    if name in ("insert", "delete"):
        return ConstantPolicy(name)
    raise ParkError(
        "unknown policy %r (try inertia, priority, specificity, "
        "random[:seed], insert, delete)" % spec
    )


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PARK semantics for active rules (Gottlob, Moerkotte, "
        "Subrahmanian; EDBT 1996)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="evaluate PARK(D, P, U)")
    run.add_argument("--rules", required=True, help="rule file ('-' = stdin)")
    run.add_argument("--db", default=None, help="fact file ('-' = stdin)")
    run.add_argument(
        "--update", action="append", default=[], metavar="±atom",
        help="transaction update, e.g. '+q(b)' (repeatable)",
    )
    run.add_argument("--policy", default="inertia")
    run.add_argument(
        "--blocking", choices=["all", "minimal"], default="all",
        help="conflict blocking granularity",
    )
    run.add_argument(
        "--evaluation", choices=["naive", "seminaive", "incremental"],
        default="naive",
        help="Γ evaluation strategy (bit-identical results; "
        "'incremental' delta-matches events and skips clean rules)",
    )
    run.add_argument(
        "--matcher", choices=["compiled", "interpreted"], default=None,
        help="body-matching backend (bit-identical results; defaults to "
        "$REPRO_MATCHER or 'compiled')",
    )
    run.add_argument(
        "--storage", choices=["columnar", "row"], default=None,
        help="relation storage layout (bit-identical results; defaults to "
        "$REPRO_STORAGE or 'columnar')",
    )
    run.add_argument("--trace", action="store_true", help="print the trace")
    run.add_argument("--stats", action="store_true", help="print run counters")
    run.add_argument(
        "--metrics", action="store_true",
        help="record the telemetry registry and print every counter",
    )
    run.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write the span trace as JSON lines ('-' = stdout); flushed "
        "even if the engine errors out mid-run",
    )
    run.add_argument(
        "--prom-out", default=None, metavar="FILE",
        help="write a Prometheus text-format metrics snapshot "
        "(implies --metrics recording)",
    )
    run.add_argument(
        "--chrome-out", default=None, metavar="FILE",
        help="write the span trace as chrome://tracing JSON "
        "(implies trace recording)",
    )
    run.add_argument(
        "--max-rounds", type=int, default=None, metavar="N",
        help="abort with an engine error after N Γ rounds",
    )
    run.add_argument(
        "--max-restarts", type=int, default=None, metavar="N",
        help="abort with an engine error after N conflict restarts",
    )
    run.add_argument(
        "--facts", action="store_true",
        help="analyze the program first and enable the static fast paths "
        "(conflict-scan skip, auto-seminaive, dead-rule pruning, "
        "group-batched collection); results are bit-identical",
    )
    run.add_argument(
        "--sanitize", choices=["independence"], default=None,
        help="runtime sanitizer (implies --facts): 'independence' checks "
        "each round's observed effects against the certified parallel "
        "groups and fails (exit 2) on a certificate violation; also "
        "enabled by $REPRO_SANITIZE",
    )
    run.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="collect Γ firings on N worker processes over hash-sharded "
        "partitions (bit-identical results; defaults to $REPRO_PARALLEL; "
        "below 2 stays sequential)",
    )

    profile = commands.add_parser(
        "profile",
        help="run with telemetry on and print the hot-spot report",
    )
    profile.add_argument("rules", help="rule file ('-' = stdin)")
    profile.add_argument("--db", default=None, help="fact file ('-' = stdin)")
    profile.add_argument(
        "--update", action="append", default=[], metavar="±atom",
        help="transaction update, e.g. '+q(b)' (repeatable)",
    )
    profile.add_argument("--policy", default="inertia")
    profile.add_argument(
        "--blocking", choices=["all", "minimal"], default="all",
    )
    profile.add_argument(
        "--evaluation", choices=["naive", "seminaive", "incremental"],
        default="naive",
    )
    profile.add_argument(
        "--matcher", choices=["compiled", "interpreted"], default=None,
    )
    profile.add_argument(
        "--storage", choices=["columnar", "row"], default=None,
    )
    profile.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="show only the N slowest rules",
    )
    profile.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    profile.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="also write the span trace as JSON lines",
    )
    profile.add_argument(
        "--prom-out", default=None, metavar="FILE",
        help="write a Prometheus text-format metrics snapshot",
    )
    profile.add_argument(
        "--chrome-out", default=None, metavar="FILE",
        help="write the span trace as chrome://tracing JSON",
    )
    profile.add_argument("--max-rounds", type=int, default=None, metavar="N")
    profile.add_argument("--max-restarts", type=int, default=None, metavar="N")
    profile.add_argument(
        "--facts", action="store_true",
        help="enable the engine's static fast paths (bit-identical results)",
    )
    profile.add_argument(
        "--sanitize", choices=["independence"], default=None,
        help="runtime sanitizer (implies --facts); see 'repro run'",
    )
    profile.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="collect Γ firings on N worker processes (see 'repro run')",
    )

    check = commands.add_parser(
        "check", help="statically analyze programs (PARK0xx diagnostics)"
    )
    check.add_argument(
        "paths", nargs="*", metavar="PATH",
        help=".park files or directories (directories glob *.park)",
    )
    check.add_argument(
        "--rules", default=None,
        help="a rule file to analyze (same as a positional PATH)",
    )
    check.add_argument(
        "--db", default=None,
        help="fact file; sharpens dead-rule analysis with actual EDB rows",
    )
    check.add_argument(
        "--policy", default=None,
        help="policy the program will run under; enables the "
        "policy-specific conflict diagnostics (PARK021/PARK022)",
    )
    check.add_argument(
        "--json", action="store_true", help="emit diagnostics as JSON"
    )
    check.add_argument(
        "--strict", action="store_true",
        help="exit 1 on warnings too (errors always exit 1)",
    )

    journal = commands.add_parser(
        "journal", help="inspect, verify, or repair a commit journal"
    )
    journal.add_argument(
        "action", choices=["inspect", "verify", "repair"],
        help="inspect: list records; verify: integrity-check framing and "
        "CRCs; repair: truncate a torn final record",
    )
    journal.add_argument("path", help="journal file written by ActiveDatabase")
    journal.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    journal.add_argument(
        "--strict", action="store_true",
        help="verify: treat a (recoverable) torn tail as a failure too",
    )

    query = commands.add_parser("query", help="ad-hoc conjunctive query")
    query.add_argument("--db", required=True, help="fact file ('-' = stdin)")
    query.add_argument(
        "--query", required=True,
        help="body literals, e.g. 'payroll(X, S), not active(X)'",
    )

    explain = commands.add_parser(
        "explain", help="derivation (or why-not verdict) of one update"
    )
    explain.add_argument("--rules", required=True)
    explain.add_argument("--db", default=None)
    explain.add_argument("--update", action="append", default=[])
    explain.add_argument("--policy", default="inertia")
    explain.add_argument(
        "--target", required=True, help="marked literal to explain, e.g. '+q'"
    )
    explain.add_argument(
        "--why-not", action="store_true", dest="why_not",
        help="explain why the target is ABSENT from the result (blocked, "
        "lost in a restart, refuted by negation, never matched, ...)",
    )
    explain.add_argument(
        "--json", action="store_true",
        help="emit the derivation tree / why-not verdict as JSON",
    )

    audit = commands.add_parser(
        "audit", help="inspect a persisted decision-trail sidecar"
    )
    audit.add_argument(
        "action", choices=["inspect", "show", "verify"],
        help="inspect: one line per transaction; show: full decision "
        "trail of --tx (or all); verify: integrity-check framing/CRCs",
    )
    audit.add_argument(
        "path",
        help="audit sidecar written by ActiveDatabase(audit=True) "
        "(<journal>.audit)",
    )
    audit.add_argument(
        "--tx", type=int, default=None, metavar="N",
        help="restrict to transaction N",
    )
    audit.add_argument(
        "--atom", default=None, metavar="ATOM",
        help="show only events mentioning this atom, e.g. 'q(a)'",
    )
    audit.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    audit.add_argument(
        "--strict", action="store_true",
        help="verify: treat a (recoverable) torn tail as a failure too",
    )
    return parser


def _parse_rules_for_run(text, origin):
    """Parse rule text for ``run``/``profile`` with a friendly safety path.

    Syntax, duplicate-name, and arity problems still fail the command with
    the strict parser's located error.  Safety violations instead warn
    once on stderr — pointing at ``repro check`` — and the unsafe rules
    are excluded from the run, rather than the whole command failing.
    """
    from .lang.parser import parse_source
    from .lang.program import Program
    from .lang.source import SAFETY

    parsed = parse_source(text)
    if any(issue.kind != SAFETY for issue in parsed.issues):
        return parse_program(text)  # raises the located strict error
    safety_issues = parsed.issues_of(SAFETY)
    if not safety_issues:
        return parsed.program()
    sys.stderr.write(
        "warning: %s: %d unsafe rule(s) excluded from this run "
        "(see 'repro check %s'):\n" % (origin, len(safety_issues), origin)
    )
    for issue in safety_issues:
        sys.stderr.write("  %s: %s\n" % (issue.span, issue.message))
    unsafe = {issue.rule_index for issue in safety_issues}
    return Program(
        tuple(
            rule
            for index, rule in enumerate(parsed.rules)
            if index not in unsafe
        )
    )


def _load_inputs(args):
    program = _parse_rules_for_run(_read(args.rules), args.rules)
    database = (
        Database(parse_database(_read(args.db))) if args.db else Database()
    )
    updates = [_parse_update(u) for u in getattr(args, "update", [])]
    return program, database, updates


def _flush_trace(tracer, path, out):
    """Write the span trace as JSON lines; ``-`` streams to *out*."""
    if path == "-":
        out.write(tracer.to_jsonl())
    else:
        tracer.write_jsonl(path)


def _command_run(args, out):
    if getattr(args, "matcher", None):
        from .engine.match import set_matcher_backend

        set_matcher_backend(args.matcher)
    if getattr(args, "storage", None):
        from .storage.relation import set_storage_backend

        set_storage_backend(args.storage)
    program, database, updates = _load_inputs(args)
    recorder = TraceRecorder() if args.trace else None
    metrics = Metrics() if args.metrics or args.prom_out else None
    if args.trace_out or args.chrome_out:
        from .obs import Tracer

        tracer = Tracer()
    else:
        tracer = None
    sanitize_spec = getattr(args, "sanitize", None)
    sanitizer_previous = None
    if sanitize_spec:
        from .testing import sanitize as _sanitize

        sanitizer_previous = _sanitize.set_active(
            _sanitize.from_spec(sanitize_spec)
        )
    engine = ParkEngine(
        policy=_make_policy(args.policy),
        blocking_mode=BlockingMode.MINIMAL
        if args.blocking == "minimal"
        else BlockingMode.ALL,
        max_rounds=args.max_rounds,
        max_restarts=args.max_restarts,
        listeners=(recorder,) if recorder is not None else (),
        evaluation=getattr(args, "evaluation", "naive"),
        metrics=metrics,
        tracer=tracer,
        # The sanitizer checks certificates, so it needs the facts on.
        facts=True
        if getattr(args, "facts", False) or sanitize_spec
        else None,
        plan_cache=DEFAULT_PLAN_CACHE,
        parallel=getattr(args, "parallel", None),
    )
    try:
        result = engine.run(program, database, updates=updates)
    finally:
        if sanitize_spec:
            _sanitize.set_active(sanitizer_previous)
        # Engine errors still surface (exit 2 via main), but whatever
        # telemetry was recorded up to the failure is flushed first.
        if tracer is not None and args.trace_out:
            _flush_trace(tracer, args.trace_out, out)
        if tracer is not None and args.chrome_out:
            from .obs.export import write_chrome_trace

            write_chrome_trace(tracer, args.chrome_out)
        if metrics is not None and args.prom_out:
            from .obs.export import write_prometheus

            write_prometheus(metrics, args.prom_out)
    if recorder is not None:
        out.write(render_trace(recorder) + "\n\n")
    out.write("result: %s\n" % render_database(result.database))
    out.write("delta : %s\n" % result.delta)
    if result.blocked:
        out.write("blocked rules: %s\n" % ", ".join(result.blocked_rules()))
    if args.stats:
        out.write("%s\n" % result.summary())
    if metrics is not None and args.metrics:
        out.write("metrics:\n")
        for name, value in sorted(metrics.counters.items()):
            out.write("  %-36s %d\n" % (name, value))
        for name, value in sorted(metrics.gauges.items()):
            out.write("  %-36s %d\n" % (name, value))
        for name, entry in sorted(metrics.timers.items()):
            out.write(
                "  %-36s %.6f s over %d calls\n" % (name, entry[1], entry[0])
            )
    return 0


def _command_profile(args, out):
    from .engine.match import get_matcher_backend, set_matcher_backend
    from .obs import Tracer, hotspot_report, render_profile
    from .storage.relation import get_storage_backend, set_storage_backend

    if args.matcher:
        set_matcher_backend(args.matcher)
    if args.storage:
        set_storage_backend(args.storage)
    program = _parse_rules_for_run(_read(args.rules), args.rules)
    database = (
        Database(parse_database(_read(args.db))) if args.db else Database()
    )
    updates = [_parse_update(u) for u in args.update]
    metrics = Metrics()
    tracer = Tracer() if args.trace_out or args.chrome_out else None
    sanitizer_previous = None
    if args.sanitize:
        from .testing import sanitize as _sanitize

        sanitizer_previous = _sanitize.set_active(
            _sanitize.from_spec(args.sanitize)
        )
    engine = ParkEngine(
        policy=_make_policy(args.policy),
        blocking_mode=BlockingMode.MINIMAL
        if args.blocking == "minimal"
        else BlockingMode.ALL,
        max_rounds=args.max_rounds,
        max_restarts=args.max_restarts,
        evaluation=args.evaluation,
        metrics=metrics,
        tracer=tracer,
        facts=True if args.facts or args.sanitize else None,
        plan_cache=DEFAULT_PLAN_CACHE,
        parallel=args.parallel,
    )
    meta = {
        "rules": args.rules,
        "policy": args.policy,
        "evaluation": args.evaluation,
        "matcher": args.matcher or get_matcher_backend(),
        "storage": args.storage or get_storage_backend(),
        "blocking": args.blocking,
    }
    if engine.parallel > 1:
        meta["parallel"] = engine.parallel
    if args.db:
        meta["db"] = args.db
    result = None
    error = None
    start = perf_counter()
    try:
        result = engine.run(program, database, updates=updates)
    except EngineError as engine_error:
        # Report the partial profile: everything recorded up to the
        # failure is still valid telemetry (a SanitizerError lands here
        # too — the certificate violation is the profile's headline).
        error = engine_error
        meta["error"] = str(engine_error)
    finally:
        if args.sanitize:
            _sanitize.set_active(sanitizer_previous)
    wall_time = perf_counter() - start
    if tracer is not None and args.trace_out:
        _flush_trace(tracer, args.trace_out, out)
    if tracer is not None and args.chrome_out:
        from .obs.export import write_chrome_trace

        write_chrome_trace(tracer, args.chrome_out)
    if args.prom_out:
        from .obs.export import write_prometheus

        write_prometheus(metrics, args.prom_out)
    report = hotspot_report(
        metrics, result=result, wall_time=wall_time, top=args.top, meta=meta
    )
    if args.json:
        json.dump(report, out, indent=2)
        out.write("\n")
    else:
        out.write(render_profile(report))
    if error is not None:
        sys.stderr.write("error: %s\n" % error)
        return 2
    return 0


def _check_targets(paths):
    """Expand files/directories into the list of files to analyze."""
    import glob
    import os

    files = []
    seen_stdin = False
    for path in paths:
        if path == "-":
            # stdin can only be read once; analyzing it twice would hand
            # the second pass an empty program.
            if not seen_stdin:
                seen_stdin = True
                files.append(path)
            continue
        if not os.path.isdir(path):
            files.append(path)
            continue
        matched = sorted(glob.glob(os.path.join(path, "*.park")))
        if not matched:
            raise ParkError("no .park files in directory %r" % path)
        files.extend(matched)
    return files


def _command_check(args, out):
    from .lint import LintReport, analyze_path, analyze_text
    from .lint.report import render_lint_report

    paths = list(args.paths)
    if args.rules:
        paths.append(args.rules)
    if not paths:
        raise ParkError(
            "repro check: give one or more .park files or directories "
            "(or --rules FILE)"
        )
    database = Database(parse_database(_read(args.db))) if args.db else None
    report = LintReport()
    for path in _check_targets(paths):
        if path == "-":
            report.add(
                analyze_text(
                    sys.stdin.read(),
                    path="<stdin>",
                    policy=args.policy,
                    database=database,
                )
            )
        else:
            report.add(
                analyze_path(path, policy=args.policy, database=database)
            )
    if args.json:
        json.dump(report.to_json(strict=args.strict), out, indent=2)
        out.write("\n")
    else:
        render_lint_report(report, out)
    return report.exit_code(strict=args.strict)


def _journal_report(journal):
    """Scan *journal*; returns (records, damage_message_or_None)."""
    from .errors import StorageError

    try:
        return journal.records(), None
    except StorageError as error:
        return [], str(error)


def _command_journal(args, out):
    from .active.journal import Journal
    from .lang.pretty import render_update

    journal = Journal(args.path)
    if args.action == "repair":
        records, damage = _journal_report(journal)
        if damage is not None:
            sys.stderr.write(
                "error: %s\n"
                "       (corruption before intact records is not a torn "
                "tail; repair refuses to guess)\n" % damage
            )
            return 1
        repaired = journal.repair_tail()
        out.write(
            "repaired: torn tail truncated, %d records kept\n" % len(records)
            if repaired
            else "clean: nothing to repair (%d records)\n" % len(records)
        )
        return 0

    records, damage = _journal_report(journal)
    tail = (
        "damaged"
        if damage is not None
        else ("torn" if journal.corrupt_tail is not None else "clean")
    )
    if args.json:
        report = {
            "path": args.path,
            "records": [
                {
                    "tx": record.transaction_id,
                    "version": record.version,
                    "requested": [render_update(u) for u in record.requested],
                    "inserts": len(record.delta.inserts),
                    "deletes": len(record.delta.deletes),
                }
                for record in records
            ],
            "tail": tail,
        }
        if damage is not None:
            report["damage"] = damage
        json.dump(report, out, indent=2)
        out.write("\n")
    elif args.action == "inspect":
        out.write("journal: %s\n" % args.path)
        if records:
            out.write(
                "  %6s  %4s  %10s  %8s  %8s\n"
                % ("tx", "ver", "requested", "inserts", "deletes")
            )
            for record in records:
                out.write(
                    "  %6d  v%-3d  %10d  %8d  %8d\n"
                    % (
                        record.transaction_id,
                        record.version,
                        len(record.requested),
                        len(record.delta.inserts),
                        len(record.delta.deletes),
                    )
                )
        out.write("  %d records, tail: %s\n" % (len(records), tail))
        if journal.corrupt_tail is not None:
            out.write("  torn tail: %r\n" % journal.corrupt_tail.strip())
    if damage is not None:
        sys.stderr.write("error: %s\n" % damage)
        return 1
    if args.action == "verify":
        versions = {}
        for record in records:
            versions[record.version] = versions.get(record.version, 0) + 1
        breakdown = ", ".join(
            "%d v%d" % (count, version)
            for version, count in sorted(versions.items())
        )
        if not args.json:
            out.write(
                "ok: %d records (%s), tail %s\n"
                % (len(records), breakdown or "empty", tail)
            )
        if journal.corrupt_tail is not None:
            sys.stderr.write(
                "warning: torn final record (recoverable; "
                "'repro journal repair' truncates it)\n"
            )
            if args.strict:
                return 1
    return 0


def _command_query(args, out):
    from .engine.query import query_rows

    database = Database(parse_database(_read(args.db)))
    rows = query_rows(args.query, database)
    if not rows:
        out.write("no answers\n")
        return 0
    variables = sorted(rows[0])
    if variables:
        out.write("\t".join(variables) + "\n")
        for row in rows:
            out.write("\t".join(str(row[v]) for v in variables) + "\n")
    else:
        out.write("yes\n")
    out.write("(%d answer%s)\n" % (len(rows), "" if len(rows) == 1 else "s"))
    return 0


def _command_explain(args, out):
    program, database, updates = _load_inputs(args)
    # Audit the run so why-not can name winning sides, epochs, and
    # restart losses; the overhead is irrelevant at CLI scale.
    engine = ParkEngine(policy=_make_policy(args.policy), audit=True)
    result = engine.run(program, database, updates=updates)
    explainer = Explainer(result)
    if args.why_not:
        verdict = explainer.why_not(args.target)
        if args.json:
            json.dump(verdict.to_dict(), out, indent=2)
            out.write("\n")
        else:
            out.write(explainer.why_not_text(args.target) + "\n")
        return 0
    if args.json:
        json.dump(explainer.explain_json(args.target), out, indent=2)
        out.write("\n")
    else:
        out.write(explainer.explain_text(args.target) + "\n")
    return 0


def _audit_report(log):
    """Scan *log*; returns (records, damage_message_or_None)."""
    from .errors import StorageError

    try:
        return log.records(), None
    except StorageError as error:
        return [], str(error)


def _command_audit(args, out):
    from .obs.audit import AuditLog

    log = AuditLog(args.path)
    records, damage = _audit_report(log)
    if args.tx is not None:
        records = [r for r in records if r.transaction_id == args.tx]
    tail = (
        "damaged"
        if damage is not None
        else ("torn" if log.corrupt_tail is not None else "clean")
    )

    def _events(record):
        if args.atom is None:
            return list(record.events)
        from .obs.audit import DecisionTrail

        marked = ("+" + args.atom, "-" + args.atom)
        return [
            event
            for event in record.events
            if DecisionTrail._mentions(event, args.atom, marked)
        ]

    if args.json:
        report = {
            "path": args.path,
            "tail": tail,
            "records": [
                {
                    "tx": record.transaction_id,
                    "events": _events(record),
                    "verdicts": len(record.verdicts()),
                    "restarts": len(record.restarts()),
                    "conflicts": len(record.conflicts()),
                }
                for record in records
            ],
        }
        if damage is not None:
            report["damage"] = damage
        json.dump(report, out, indent=2)
        out.write("\n")
    elif args.action == "inspect":
        out.write("audit log: %s\n" % args.path)
        if records:
            out.write(
                "  %6s  %8s  %10s  %9s  %8s\n"
                % ("tx", "events", "conflicts", "verdicts", "restarts")
            )
            for record in records:
                out.write(
                    "  %6d  %8d  %10d  %9d  %8d\n"
                    % (
                        record.transaction_id,
                        len(record.events),
                        len(record.conflicts()),
                        len(record.verdicts()),
                        len(record.restarts()),
                    )
                )
        out.write("  %d records, tail: %s\n" % (len(records), tail))
        if log.corrupt_tail is not None:
            out.write("  torn tail: %r\n" % log.corrupt_tail.strip())
    elif args.action == "show":
        for record in records:
            out.write("tx %d:\n" % record.transaction_id)
            for event in _events(record):
                rendered = ", ".join(
                    "%s=%s" % (key, value)
                    for key, value in sorted(event.items())
                    if key not in ("kind", "epoch", "round")
                )
                out.write(
                    "  [epoch %d round %d] %-9s %s\n"
                    % (event["epoch"], event["round"], event["kind"], rendered)
                )
    if damage is not None:
        sys.stderr.write("error: %s\n" % damage)
        return 1
    if args.action == "verify":
        if not args.json:
            out.write(
                "ok: %d records, %d events, tail %s\n"
                % (
                    len(records),
                    sum(len(r.events) for r in records),
                    tail,
                )
            )
        if log.corrupt_tail is not None:
            sys.stderr.write(
                "warning: torn final audit record (recoverable; the next "
                "append truncates it)\n"
            )
            if args.strict:
                return 1
    return 0


def main(argv=None, out=None):
    """CLI entry point; returns the process exit status."""
    out = out if out is not None else sys.stdout
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exit_error:
        return int(exit_error.code or 0)
    handlers = {
        "run": _command_run,
        "profile": _command_profile,
        "check": _command_check,
        "journal": _command_journal,
        "audit": _command_audit,
        "query": _command_query,
        "explain": _command_explain,
    }
    try:
        return handlers[args.command](args, out)
    except ParkError as error:
        sys.stderr.write("error: %s\n" % error)
        return 2
    except OSError as error:
        sys.stderr.write("error: %s\n" % error)
        return 1


if __name__ == "__main__":
    sys.exit(main())
