"""The well-founded semantics of Van Gelder, Ross & Schlipf [4].

The paper lists the well-founded semantics among the deductive semantics
that "do not have any conflict resolution strategy"; we implement it as a
comparator for the deductive fragment (insert-only datalog¬ programs) via
the classical **alternating fixpoint** construction:

Let ``A(J)`` be the least model of the positive program obtained by
evaluating every negated literal ``not b`` against the fixed set ``J``
(``not b`` holds iff ``b ∉ J``).  ``A`` is antimonotone, so ``A∘A`` is
monotone; iterating from the empty set::

    K0 = ∅,  U0 = A(K0),  K1 = A(U0),  U1 = A(K1), ...

converges to the least fixpoint ``K∞`` of ``A∘A`` (the *true* atoms) and
the greatest fixpoint ``U∞`` (true-or-unknown).  The well-founded model
is: true = ``K∞``; false = everything not in ``U∞``; unknown = the rest.

For stratified or negation-free programs the unknown set is empty and the
model coincides with the perfect / least model — property-tested against
the datalog engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

from ..engine.match import fireable_heads
from ..engine.views import FactsView, _atom_from_row
from ..errors import EngineError, NonTerminationError
from ..lang.program import Program
from ..storage.database import Database, ensure_storage


@dataclass(frozen=True)
class WellFoundedModel:
    """The three-valued well-founded model of a datalog¬ program."""

    true: FrozenSet
    unknown: FrozenSet

    def is_true(self, atom):
        return atom in self.true

    def is_unknown(self, atom):
        return atom in self.unknown

    def is_false(self, atom):
        return atom not in self.true and atom not in self.unknown

    @property
    def total(self):
        """Whether the model is two-valued (no unknown atoms)."""
        return not self.unknown


class _ReductView(FactsView):
    """Positive literals from the growing database; negation fixed by ``J``."""

    __slots__ = ("current", "assumed")

    def __init__(self, current, assumed):
        self.current = current
        self.assumed = assumed

    def condition_candidates(self, predicate, arity, bound):
        relation = self.current.relation(predicate)
        if relation is None or relation.arity != arity:
            return ()
        return relation.candidates(bound)

    def condition_holds(self, atom):
        return atom in self.current

    def negation_holds(self, atom):
        return atom not in self.assumed

    def event_candidates(self, op, predicate, arity, bound):
        return ()

    def event_holds(self, op, atom):
        return False

    def estimate(self, predicate):
        return self.current.count(predicate)

    # -- row-level fast paths (compiled matcher) ---------------------------------

    def condition_candidates_key(self, predicate, arity, columns, key):
        relation = self.current.relation(predicate)
        if relation is None or relation.arity != arity:
            return ()
        return relation.candidates_key(columns, key)

    def event_candidates_key(self, op, predicate, arity, columns, key):
        return ()

    def condition_holds_row(self, predicate, arity, row):
        return self.current.has_row(predicate, arity, row)

    def negation_holds_row(self, predicate, arity, row):
        # ``assumed`` is a frozenset of atoms (a frozen fixpoint), not a
        # Database, so this check reconstructs the atom.
        return _atom_from_row(predicate, row) not in self.assumed

    def event_holds_row(self, op, predicate, arity, row):
        return False

    def register_lookup(self, predicate, arity, columns):
        self.current.register_lookup(predicate, arity, columns)


def _validate(program):
    for rule in program:
        if not rule.head.is_insert:
            raise EngineError(
                "well-founded semantics requires insert-only heads; rule %s "
                "deletes" % rule.describe()
            )
        if rule.event_literals():
            raise EngineError(
                "well-founded semantics has no events; rule %s uses one"
                % rule.describe()
            )


def _least_model_against(program, database, assumed, max_rounds=None):
    """``A(J)``: least model with negation evaluated against *assumed*."""
    current = database.copy()
    rounds = 0
    while True:
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            raise NonTerminationError("reduct evaluation exceeded %d rounds" % max_rounds)
        view = _ReductView(current, assumed)
        new_atoms = []
        for rule in program:
            for update in fireable_heads(rule, view):
                if update.atom not in current:
                    new_atoms.append(update.atom)
        if not new_atoms:
            return current.freeze()
        for atom in new_atoms:
            current.add(atom)


def well_founded(program, database, max_alternations=None):
    """Compute the well-founded model of an insert-only datalog¬ program."""
    if isinstance(program, str):
        from ..lang.parser import parse_program

        program = parse_program(program)
    elif not isinstance(program, Program):
        program = Program(tuple(program))
    if isinstance(database, str):
        database = Database.from_text(database)
    elif not isinstance(database, Database):
        database = Database(database)
    else:
        database = ensure_storage(database)
    _validate(program)

    true_set = frozenset()
    alternations = 0
    while True:
        alternations += 1
        if max_alternations is not None and alternations > max_alternations:
            raise NonTerminationError(
                "alternating fixpoint exceeded %d alternations" % max_alternations
            )
        upper = _least_model_against(program, database, true_set)
        new_true = _least_model_against(program, database, upper)
        if new_true == true_set:
            return WellFoundedModel(true=true_set, unknown=frozenset(upper - true_set))
        true_set = new_true
