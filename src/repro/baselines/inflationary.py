"""The inflationary fixpoint semantics of Kolaitis & Papadimitriou [6].

This is the deductive semantics PARK builds on: iterate the immediate
consequence operator, always *adding* its output to the current
interpretation, with negation-as-failure evaluated against the current
(growing) interpretation.  It terminates in polynomially many rounds and
yields a unique result — but it has no notion of conflict, which is why it
cannot serve as an active-rule semantics by itself.

Two entry points:

* :func:`inflationary_fixpoint` — classical datalog¬ (insert-only rules),
  returning a database.  On positive programs it coincides with the least
  fixpoint; with negation it computes the (order-independent, inflationary)
  Kolaitis–Papadimitriou semantics.
* :func:`stubborn_fixpoint` — the paper's "stubbornly apply the immediate
  consequence operator" computation of Section 4.1: full active rules,
  marked literals accumulated with *no* conflict handling, so the final
  i-interpretation may be inconsistent.  It is the first half of the flawed
  fixpoint-then-eliminate semantics and the conflict-free core of PARK.
"""

from __future__ import annotations

from ..core.consequence import gamma
from ..core.eca import extend_with_updates
from ..core.interpretation import IInterpretation
from ..errors import EngineError, NonTerminationError
from ..lang.program import Program
from ..storage.database import Database


def _coerce(program, database):
    if isinstance(program, str):
        from ..lang.parser import parse_program

        program = parse_program(program)
    elif not isinstance(program, Program):
        program = Program(tuple(program))
    if isinstance(database, str):
        database = Database.from_text(database)
    elif not isinstance(database, Database):
        database = Database(database)
    return program, database


def stubborn_fixpoint(program, database, updates=None, max_rounds=None):
    """Iterate ``Γ_{P,∅}`` to its fixpoint with no conflict resolution.

    Returns the final :class:`~repro.core.interpretation.IInterpretation`,
    which may be inconsistent (that possibility is the whole point of the
    Section 4.1 discussion).
    """
    program, database = _coerce(program, database)
    if updates:
        program = extend_with_updates(program, updates)
    interpretation = IInterpretation.from_database(database)
    rounds = 0
    while True:
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            raise NonTerminationError(
                "stubborn fixpoint exceeded %d rounds" % max_rounds
            )
        result = gamma(program, frozenset(), interpretation)
        if result.reached_fixpoint:
            return interpretation
        interpretation = result.apply()


def inflationary_fixpoint(program, database, max_rounds=None):
    """Kolaitis–Papadimitriou inflationary semantics for datalog¬ programs.

    Requires insert-only heads (a deductive program); the growing
    interpretation is the database itself, and ``not a`` holds iff ``a`` is
    not (yet) derived.  Returns a new :class:`Database`.
    """
    program, database = _coerce(program, database)
    for rule in program:
        if not rule.head.is_insert:
            raise EngineError(
                "inflationary semantics requires insert-only heads; rule %s "
                "deletes" % rule.describe()
            )
        if rule.event_literals():
            raise EngineError(
                "inflationary semantics has no events; rule %s uses one"
                % rule.describe()
            )
    interpretation = stubborn_fixpoint(program, database, max_rounds=max_rounds)
    result = database.copy()
    for atom in interpretation.plus.atoms():
        result.add(atom)
    return result
