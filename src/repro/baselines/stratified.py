"""Stratified (perfect-model) evaluation for stratifiable datalog¬.

The classical semantics between positive datalog and the well-founded
model: when negation never occurs inside a recursive component, evaluate
the strata bottom-up, each stratum's negation reading the *completed*
lower strata.  On stratifiable programs it coincides with the total
well-founded model (property-tested), while being cheaper to compute —
and it is another member of the deductive-semantics family the paper
builds PARK on top of.
"""

from __future__ import annotations

from ..engine.dependency import DependencyGraph
from ..engine.match import fireable_heads
from ..engine.views import FactsView
from ..errors import EngineError, NonTerminationError
from ..lang.program import Program
from ..storage.database import Database, ensure_storage


class _StratumView(FactsView):
    """Positives from the growing store; negation against the frozen base.

    ``settled`` holds everything decided by lower strata (plus EDB);
    within the stratum, negation may only mention settled predicates (the
    stratification guarantees it), so reading negation against
    ``settled`` is sound even while the stratum itself still grows.
    """

    __slots__ = ("current", "settled")

    def __init__(self, current, settled):
        self.current = current
        self.settled = settled

    def condition_candidates(self, predicate, arity, bound):
        relation = self.current.relation(predicate)
        if relation is None or relation.arity != arity:
            return ()
        return relation.candidates(bound)

    def condition_holds(self, atom):
        return atom in self.current

    def negation_holds(self, atom):
        return atom not in self.settled

    def event_candidates(self, op, predicate, arity, bound):
        return ()

    def event_holds(self, op, atom):
        return False

    def estimate(self, predicate):
        return self.current.count(predicate)

    # -- row-level fast paths (compiled matcher) ---------------------------------

    def condition_candidates_key(self, predicate, arity, columns, key):
        relation = self.current.relation(predicate)
        if relation is None or relation.arity != arity:
            return ()
        return relation.candidates_key(columns, key)

    def event_candidates_key(self, op, predicate, arity, columns, key):
        return ()

    def condition_holds_row(self, predicate, arity, row):
        return self.current.has_row(predicate, arity, row)

    def negation_holds_row(self, predicate, arity, row):
        return not self.settled.has_row(predicate, arity, row)

    def event_holds_row(self, op, predicate, arity, row):
        return False

    def register_lookup(self, predicate, arity, columns):
        self.current.register_lookup(predicate, arity, columns)


def _validate(program):
    for rule in program:
        if not rule.head.is_insert:
            raise EngineError(
                "stratified evaluation requires insert-only heads; rule %s "
                "deletes" % rule.describe()
            )
        if rule.event_literals():
            raise EngineError(
                "stratified evaluation has no events; rule %s uses one"
                % rule.describe()
            )


def stratified_fixpoint(program, database, max_rounds=None):
    """The perfect model of a stratifiable program as a :class:`Database`.

    Raises :class:`EngineError` when the program is not stratifiable (use
    :func:`repro.baselines.wellfounded.well_founded` there instead).
    """
    if isinstance(program, str):
        from ..lang.parser import parse_program

        program = parse_program(program)
    elif not isinstance(program, Program):
        program = Program(tuple(program))
    if isinstance(database, str):
        database = Database.from_text(database)
    elif not isinstance(database, Database):
        database = Database(database)
    else:
        database = ensure_storage(database)
    _validate(program)

    graph = DependencyGraph(program)
    strata = graph.stratification()  # raises if not stratifiable

    stratum_of = {}
    for level, predicates in enumerate(strata):
        for predicate in predicates:
            stratum_of[predicate] = level

    current = database.copy()
    for level in range(len(strata)):
        stratum_rules = [
            rule
            for rule in program
            if stratum_of.get(rule.head.atom.predicate, 0) == level
        ]
        if not stratum_rules:
            continue
        settled = current.copy()
        rounds = 0
        while True:
            rounds += 1
            if max_rounds is not None and rounds > max_rounds:
                raise NonTerminationError(
                    "stratum %d exceeded %d rounds" % (level, max_rounds)
                )
            view = _StratumView(current, settled)
            new_atoms = []
            for rule in stratum_rules:
                for update in fireable_heads(rule, view):
                    if update.atom not in current:
                        new_atoms.append(update.atom)
            if not new_atoms:
                break
            for atom in new_atoms:
                current.add(atom)
    return current
