"""Comparator semantics from the paper's related-work discussion.

* Kolaitis–Papadimitriou inflationary fixpoint [6] — what PARK reduces to
  when no conflict ever arises;
* the Section 4.1 "fixpoint, then eliminate conflicts" strawman — kept to
  reproduce the paper's counterexamples;
* the well-founded semantics [4] — the canonical three-valued deductive
  semantics, for the insert-only fragment;
* (the positive-datalog least fixpoint lives in :mod:`repro.engine.datalog`.)
"""

from .inflationary import inflationary_fixpoint, stubborn_fixpoint
from .naive_elimination import NaiveResult, naive_elimination
from .stratified import stratified_fixpoint
from .wellfounded import WellFoundedModel, well_founded

__all__ = [
    "NaiveResult",
    "WellFoundedModel",
    "inflationary_fixpoint",
    "naive_elimination",
    "stratified_fixpoint",
    "stubborn_fixpoint",
    "well_founded",
]
