"""The flawed "fixpoint, then eliminate conflicts" semantics (Section 4.1).

The paper's introductory strawman: stubbornly compute the fixpoint of the
immediate consequence operator, *then* drop the conflicting marked pairs
according to the conflict-resolution policy, then incorporate.  The paper
demonstrates with programs P2 and P3 why this is wrong:

* **obsolete consequences** (P2): a fact derived *from* a conflicting
  literal survives even though its justification was eliminated — the
  strawman keeps ``s`` although ``+a`` (its only support) was cancelled;
* **false conflicts** (P3): literals derived from an ambiguous literal can
  manufacture conflicts that would never arise once the ambiguous literal
  is resolved — the strawman cancels ``a`` although PARK correctly keeps
  ``+a``.

We implement it faithfully so tests and benchmarks can reproduce both
counterexamples side by side with PARK (experiment E2/E3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

from ..core.incorporate import incorp
from ..policies.base import Decision
from ..policies.inertia import InertiaPolicy
from .inflationary import stubborn_fixpoint


@dataclass
class NaiveResult:
    """Outcome of the fixpoint-then-eliminate computation.

    Attributes:
        database: the result after elimination and incorporation.
        fixpoint: the (possibly inconsistent) raw fixpoint i-interpretation.
        ambiguous_atoms: atoms whose ``+``/``-`` pair was eliminated.
    """

    database: object
    fixpoint: object
    ambiguous_atoms: FrozenSet

    @property
    def atoms(self):
        return self.database.freeze()


def naive_elimination(program, database, updates=None, policy=None):
    """Fixpoint-then-eliminate semantics with an inertia-style elimination.

    For each conflicting atom the *policy* (default: principle of inertia)
    decides which action survives; under inertia both marks are simply
    removed, leaving the atom's original status — exactly the procedure the
    paper walks through before showing it is broken.

    Note the policy here only sees the conflicting atom: this semantics
    resolves conflicts after the fact, when the rule-instance context is
    gone — a symptom of its shallowness.  Atom-level policies (inertia,
    constants) work; policies that inspect ``ins``/``dels`` raise.
    """
    if policy is None:
        policy = InertiaPolicy()

    fixpoint = stubborn_fixpoint(program, database, updates=updates)
    ambiguous = frozenset(fixpoint.conflicting_atoms())

    cleaned = fixpoint.copy()
    for atom in ambiguous:
        decision = _atom_decision(policy, atom, database, program, fixpoint)
        # Drop the losing mark; under inertia both actions cancel because
        # the winner is a no-op relative to D by construction.
        cleaned.plus.remove(atom)
        cleaned.minus.remove(atom)
        if decision is Decision.INSERT and atom in _as_db(database):
            pass  # atom already present; nothing to re-add
        elif decision is Decision.INSERT:
            cleaned.plus.add(atom)
        # DELETE on an atom absent from D is likewise a no-op.
        elif atom in _as_db(database):
            cleaned.minus.add(atom)

    result = incorp(cleaned)
    return NaiveResult(database=result, fixpoint=fixpoint, ambiguous_atoms=ambiguous)


def _as_db(database):
    from ..storage.database import Database, ensure_storage

    if isinstance(database, Database):
        return ensure_storage(database)
    if isinstance(database, str):
        return Database.from_text(database)
    return Database(database)


def _atom_decision(policy, atom, database, program, fixpoint):
    """Ask the policy about an atom-level conflict (no instance context)."""
    from ..policies.base import ConflictContext, check_decision

    context = ConflictContext(
        database=_as_db(database),
        program=program,
        interpretation=fixpoint,
        conflict=_AtomOnlyConflict(atom),
    )
    return check_decision(policy.select(context), policy, context.conflict)


class _AtomOnlyConflict:
    """A conflict stub carrying only the atom (ins/del sets unavailable)."""

    __slots__ = ("atom",)

    def __init__(self, atom):
        self.atom = atom

    @property
    def ins(self):
        raise AttributeError(
            "the fixpoint-then-eliminate semantics has no rule-instance "
            "context; use an atom-level policy (e.g. inertia)"
        )

    dels = ins
