"""repro — a reference implementation of the PARK semantics for active rules.

Reproduces *The PARK Semantics for Active Rules* (Gottlob, Moerkotte,
Subrahmanian; EDBT 1996): an inflationary-fixpoint semantics for
event-condition-action rules, parameterized by a pluggable conflict
resolution policy.

Quickstart::

    from repro import park

    result = park(
        '''
        @name(r1) p -> +q.
        @name(r2) p -> -a.
        @name(r3) q -> +a.
        ''',
        "p.",
    )
    assert str(result.database) == "{p, q}"

Layers (each usable on its own):

* :mod:`repro.lang` — the rule language (AST, parser, pretty-printer, DSL);
* :mod:`repro.storage` — indexed ground-atom storage, deltas, snapshots;
* :mod:`repro.engine` — body matching, planning, datalog fixpoints;
* :mod:`repro.core` — the PARK semantics itself;
* :mod:`repro.policies` — the SELECT strategies of the paper's Section 5;
* :mod:`repro.baselines` — comparator semantics (inflationary, strawman,
  well-founded);
* :mod:`repro.active` — a DBMS-shaped facade with triggers and transactions;
* :mod:`repro.workloads`, :mod:`repro.analysis` — benchmarking and tracing.
"""

from .active import ActiveDatabase
from .analysis import Explainer, TraceRecorder, render_trace, why
from .core import (
    BlockingMode,
    Conflict,
    IInterpretation,
    ParkEngine,
    ParkResult,
    RuleGrounding,
    park,
)
from .errors import (
    ArityError,
    EngineError,
    LanguageError,
    NonTerminationError,
    ParkError,
    ParseError,
    PolicyError,
    SafetyError,
    SchemaError,
    StorageError,
    TransactionError,
)
from .lang import (
    Atom,
    Program,
    Rule,
    Update,
    UpdateOp,
    atom,
    delete,
    insert,
    parse_atom,
    parse_database,
    parse_program,
    parse_rule,
)
from .policies import (
    Decision,
    InertiaPolicy,
    InteractivePolicy,
    PriorityPolicy,
    RandomPolicy,
    ScriptedPolicy,
    SelectPolicy,
    SpecificityPolicy,
    VotingPolicy,
)
from .storage import Database, Delta

__version__ = "1.0.0"

__all__ = [
    "ActiveDatabase",
    "ArityError",
    "Atom",
    "BlockingMode",
    "Conflict",
    "Database",
    "Decision",
    "Delta",
    "EngineError",
    "Explainer",
    "IInterpretation",
    "InertiaPolicy",
    "InteractivePolicy",
    "LanguageError",
    "NonTerminationError",
    "ParkEngine",
    "ParkError",
    "ParkResult",
    "ParseError",
    "PolicyError",
    "PriorityPolicy",
    "Program",
    "RandomPolicy",
    "Rule",
    "RuleGrounding",
    "SafetyError",
    "SchemaError",
    "ScriptedPolicy",
    "SelectPolicy",
    "SpecificityPolicy",
    "StorageError",
    "TraceRecorder",
    "TransactionError",
    "Update",
    "UpdateOp",
    "VotingPolicy",
    "atom",
    "delete",
    "insert",
    "park",
    "parse_atom",
    "parse_database",
    "parse_program",
    "parse_rule",
    "render_trace",
    "why",
    "__version__",
]
