"""The HR/payroll workload from the paper's introduction.

Section 2's motivating rule — "if a non-active employee has a record in
the salary relation, then this record should be deleted" — scaled to
``n`` employees, plus ECA bookkeeping rules (audit on payroll deletion,
severance scheduling) so the workload exercises events and transaction
updates, not just condition-action cleanup.
"""

from __future__ import annotations

import random

from ..lang.atoms import Atom
from ..lang.literals import neg, on_delete, pos
from ..lang.program import Program
from ..lang.rules import Rule
from ..lang.terms import Constant, Variable
from ..lang.updates import delete, insert
from ..storage.database import Database
from .base import Workload


def hr_program():
    """The payroll rule set: cleanup (paper, Section 2) + ECA bookkeeping."""
    x, s = Variable("X"), Variable("Salary")
    return Program(
        (
            # The paper's rule, verbatim.
            Rule(
                head=delete(Atom("payroll", (x, s))),
                body=(
                    pos(Atom("emp", (x,))),
                    neg(Atom("active", (x,))),
                    pos(Atom("payroll", (x, s))),
                ),
                name="cleanup",
            ),
            # ECA: deleting a payroll record leaves an audit trail.
            Rule(
                head=insert(Atom("audit", (x, s))),
                body=(on_delete(Atom("payroll", (x, s))),),
                name="audit_trail",
            ),
            # ECA: deactivation schedules severance for employees on payroll.
            Rule(
                head=insert(Atom("severance", (x,))),
                body=(
                    on_delete(Atom("active", (x,))),
                    pos(Atom("payroll", (x, s))),
                ),
                name="severance",
            ),
        )
    )


def hr_database(num_employees, inactive_fraction=0.0, seed=0):
    """``n`` employees with payroll rows; a fraction pre-deactivated."""
    rng = random.Random(seed)
    database = Database()
    for index in range(num_employees):
        name = "e%d" % index
        salary = 1000 + (index % 50) * 10
        database.add(Atom("emp", (Constant(name),)))
        database.add(Atom("payroll", (Constant(name), Constant(salary))))
        if rng.random() >= inactive_fraction:
            database.add(Atom("active", (Constant(name),)))
    return database


def payroll_cleanup(num_employees, inactive_fraction=0.2, seed=0):
    """Condition-action sweep: stale payroll rows get deleted.

    Empty update set; the cleanup rule fires purely on the state.
    """
    database = hr_database(num_employees, inactive_fraction, seed)
    return Workload(
        name="hr-cleanup-%d" % num_employees,
        program=hr_program(),
        database=database,
        description="payroll cleanup sweep over %d employees (%d%% inactive)"
        % (num_employees, round(inactive_fraction * 100)),
    )


def deactivation_batch(num_employees, batch_size, seed=0):
    """ECA transaction: deactivate a batch of employees in one commit.

    The transaction's ``-active(e)`` updates trigger the severance rule
    (event literal), which interacts with the cleanup + audit rules.
    """
    database = hr_database(num_employees, inactive_fraction=0.0, seed=seed)
    rng = random.Random(seed + 1)
    chosen = rng.sample(range(num_employees), min(batch_size, num_employees))
    updates = tuple(
        delete(Atom("active", (Constant("e%d" % i),))) for i in sorted(chosen)
    )
    return Workload(
        name="hr-deactivate-%d-of-%d" % (len(updates), num_employees),
        program=hr_program(),
        database=database,
        updates=updates,
        description="deactivate %d of %d employees via one ECA transaction"
        % (len(updates), num_employees),
    )
