"""Conflict-heavy workloads: ladders and cascades.

Experiment C2 needs programs whose *restart count* grows with the program
size.  Two shapes:

* :func:`conflict_ladder` — ``width`` independent conflicting pairs, all
  detectable in the first round.  ``ALL`` blocking resolves them in one
  restart; ``MINIMAL`` blocking needs one restart per pair — the A1
  ablation in miniature.
* :func:`conflict_cascade` — a generalization of the paper's Section 5
  example: a growing chain ``c1 -> +c2 -> ...`` where every chain node
  toggles a shared atom ``q`` with alternating sign.  Each restart lets
  the chain grow one toggle further before the next conflict appears, so
  even ``ALL`` blocking restarts ``Θ(depth)`` times — matching the
  paper's "at most size(P) restarts" bound tightly.
"""

from __future__ import annotations

from ..lang.atoms import Atom
from ..lang.literals import pos
from ..lang.program import Program
from ..lang.rules import Rule
from ..lang.updates import delete, insert
from ..storage.database import Database
from .base import Workload


def conflict_ladder(width):
    """``width`` independent conflicts: ``p -> +a_i`` vs ``p -> -a_i``.

    Under inertia every ``a_i`` is absent from ``D``, so delete wins each
    conflict and the expected result is just ``{p}``.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    rules = []
    p = pos(Atom("p"))
    for index in range(width):
        atom = Atom("a%d" % index)
        rules.append(Rule(head=insert(atom), body=(p,), name="ins%d" % index))
        rules.append(Rule(head=delete(atom), body=(p,), name="del%d" % index))
    database = Database([Atom("p")])
    return Workload(
        name="ladder-%d" % width,
        program=Program(tuple(rules)),
        database=database,
        expected=frozenset({Atom("p")}),
        description="%d independent +/- conflicts on one trigger" % width,
    )


def conflict_cascade(depth):
    """A chain of ``depth`` toggles of one atom ``q`` (Section 5, scaled).

    Rules: ``step_i: c_i -> +c_{i+1}`` and ``tog_i: c_i -> ±q`` with signs
    alternating ``+ - + - ...``; ``D = {c1}``.  Each epoch advances the
    chain until the newest toggle contradicts the surviving older one,
    forcing another restart.  Under inertia (``q ∉ D``) all insert-side
    toggles end up blocked, so the expected result is the chain itself —
    plus ``q`` exactly when the number of toggles is odd... which it never
    is in the surviving set: ``q`` stays out.
    """
    if depth < 2:
        raise ValueError("depth must be >= 2 (need at least one conflict)")
    rules = []
    q = Atom("q")
    for index in range(1, depth + 1):
        ci = Atom("c%d" % index)
        if index < depth:
            rules.append(
                Rule(
                    head=insert(Atom("c%d" % (index + 1))),
                    body=(pos(ci),),
                    name="step%d" % index,
                )
            )
        head = insert(q) if index % 2 == 1 else delete(q)
        rules.append(Rule(head=head, body=(pos(ci),), name="tog%d" % index))
    database = Database([Atom("c1")])
    expected = frozenset(Atom("c%d" % i) for i in range(1, depth + 1))
    return Workload(
        name="cascade-%d" % depth,
        program=Program(tuple(rules)),
        database=database,
        expected=expected,
        description="alternating toggle cascade of depth %d" % depth,
    )
