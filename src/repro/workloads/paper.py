"""The paper's worked examples as ready-to-run workloads (E1–E9).

One :class:`~repro.workloads.base.Workload` per example, with the
expected final state attached, so tests, benchmarks, examples and user
experiments all draw the paper's programs from a single registry:

    from repro.workloads.paper import paper_example, PAPER_EXAMPLES

    result = paper_example("E7").run()

``expected`` encodes the typo-corrected results documented in
EXPERIMENTS.md (this matters only for E6).
"""

from __future__ import annotations

from ..lang.parser import parse_atom, parse_database, parse_program
from ..lang.updates import insert
from ..policies.base import Decision, SelectPolicy
from ..policies.priority import PriorityPolicy
from ..storage.database import Database
from .base import Workload


class Section42Policy(SelectPolicy):
    """The custom SELECT of the Section 4.2 graph example."""

    name = "sec42-custom"

    def __init__(self, cut_pair=("a", "c")):
        self.cut_pair = frozenset(cut_pair)

    def select(self, context):
        x, y = (str(t) for t in context.conflict.atom.terms)
        if x == y or {x, y} == self.cut_pair:
            return Decision.DELETE
        return Decision.INSERT


def _workload(name, rules, facts, expected, description,
              updates=(), policy=None):
    return Workload(
        name=name,
        program=parse_program(rules),
        database=Database.from_text(facts),
        updates=tuple(updates),
        policy=policy,
        expected=frozenset(parse_database(expected)),
        description=description,
    )


def _build_examples():
    examples = {}

    examples["E1"] = _workload(
        "E1-P1",
        """
        @name(r1) p -> +q.
        @name(r2) p -> -a.
        @name(r3) q -> +a.
        """,
        "p.",
        "p. q.",
        "Section 4.1 P1: cross-round conflict on a, inertia",
    )

    examples["E2"] = _workload(
        "E2-P2",
        """
        @name(r1) p -> +q.
        @name(r2) p -> -a.
        @name(r3) q -> +a.
        @name(r4) not a -> +r.
        @name(r5) a -> +s.
        """,
        "p.",
        "p. q. r.",
        "Section 4.1 P2: obsolete consequences discarded on restart",
    )

    examples["E3"] = _workload(
        "E3-P3",
        """
        @name(r1) p -> +q.
        @name(r2) p -> -q.
        @name(r3) q -> +a.
        @name(r4) q -> -a.
        @name(r5) p -> +a.
        """,
        "p.",
        "p. a.",
        "Section 4.1 P3: false conflict on a avoided",
    )

    examples["E4"] = _workload(
        "E4-graph",
        """
        @name(r1) p(X), p(Y) -> +q(X, Y).
        @name(r2) q(X, X) -> -q(X, X).
        @name(r3) q(X, Y), q(X, Z), q(Z, Y) -> -q(X, Y).
        """,
        "p(a). p(b). p(c).",
        "p(a). p(b). p(c). q(a, b). q(b, a). q(b, c). q(c, b).",
        "Section 4.2 irreflexive graph with the custom SELECT",
        policy=Section42Policy(),
    )

    examples["E5"] = _workload(
        "E5-eca1",
        """
        @name(r1) p(X) -> +q(X).
        @name(r2) q(X) -> +r(X).
        @name(r3) +r(X) -> -s(X).
        """,
        "p(a). s(a). s(b).",
        "p(a). q(a). q(b). r(a). r(b).",
        "Section 4.3 first ECA example (no conflict), U = {+q(b)}",
        updates=(insert(parse_atom("q(b)")),),
    )

    examples["E6"] = _workload(
        "E6-eca2",
        """
        @name(r1) q(X, a) -> -p(X, a).
        @name(r2) q(a, X) -> +r(a, X).
        @name(r3) +r(X, a) -> +p(X, a).
        """,
        "p(a, a). p(a, b). p(a, c).",
        # typo-corrected: the transaction's q(a, a) survives incorp
        "p(a, a). p(a, b). p(a, c). q(a, a). r(a, a).",
        "Section 4.3 second ECA example (inertia), U = {+q(a, a)}",
        updates=(insert(parse_atom("q(a, a)")),),
    )

    sec5_rules = """
    @name(r1) @priority(1) p -> +a.
    @name(r2) @priority(2) p -> +q.
    @name(r3) @priority(3) a -> +b.
    @name(r4) @priority(4) a -> -q.
    @name(r5) @priority(5) b -> +q.
    """
    examples["E7"] = _workload(
        "E7-sec5-inertia", sec5_rules, "p.", "p. a. b.",
        "Section 5 walkthrough under inertia",
    )
    examples["E8"] = _workload(
        "E8-sec5-priority", sec5_rules, "p.", "p. a. b. q.",
        "Section 5 walkthrough under rule priority",
        policy=PriorityPolicy(),
    )

    examples["E9"] = _workload(
        "E9-counterintuitive",
        """
        @name(r1) a -> +b.
        @name(r2) a -> +d.
        @name(r3) b -> +c.
        @name(r4) b -> -d.
        @name(r5) c -> -b.
        """,
        "a.",
        "a.",
        "Section 5 counterintuitive-inertia example",
    )

    return examples


PAPER_EXAMPLES = _build_examples()


def paper_example(identifier):
    """Fetch one of the paper's examples by id (``"E1"`` ... ``"E9"``)."""
    try:
        return PAPER_EXAMPLES[identifier.upper()]
    except KeyError:
        raise KeyError(
            "unknown paper example %r (known: %s)"
            % (identifier, ", ".join(sorted(PAPER_EXAMPLES)))
        )


def run_all(**engine_options):
    """Run and check every paper example; returns ``{id: ParkResult}``."""
    results = {}
    for identifier in sorted(PAPER_EXAMPLES):
        workload = PAPER_EXAMPLES[identifier]
        results[identifier] = workload.check(workload.run(**engine_options))
    return results
