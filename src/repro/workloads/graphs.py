"""Graph workloads: transitive closure and the Section 4.2 graph program.

``transitive_closure`` is the classical recursive-datalog stress test
(conflict-free; used for the polynomial-scaling experiment C1).
``irreflexive_graph`` scales the paper's Section 4.2 worked example — the
"irreflexive graph without transitively implied arcs" program — to ``n``
nodes, producing a conflict volume that grows with ``n³`` rule instances,
which is what the blocking-granularity ablation (A1) sweeps.
"""

from __future__ import annotations

import random

from ..lang.atoms import Atom
from ..lang.literals import pos
from ..lang.program import Program
from ..lang.rules import Rule
from ..lang.terms import Constant, Variable
from ..lang.updates import delete, insert
from ..policies.base import Decision, SelectPolicy
from ..storage.database import Database
from .base import Workload


def random_edges(num_nodes, num_edges, seed=0):
    """A reproducible random edge set over ``n0 ... n<num_nodes-1>``."""
    rng = random.Random(seed)
    edges = set()
    attempts = 0
    while len(edges) < num_edges and attempts < num_edges * 20:
        attempts += 1
        a = rng.randrange(num_nodes)
        b = rng.randrange(num_nodes)
        if a != b:
            edges.add(("n%d" % a, "n%d" % b))
    return sorted(edges)


def transitive_closure(num_nodes, num_edges=None, seed=0):
    """Transitive closure of a random graph (conflict-free, recursive).

    Defaults to ``2 * num_nodes`` edges — sparse enough to keep the closure
    from saturating, dense enough to recurse several levels.
    """
    if num_edges is None:
        num_edges = 2 * num_nodes
    x, y, z = Variable("X"), Variable("Y"), Variable("Z")
    rules = (
        Rule(
            head=insert(Atom("tc", (x, y))),
            body=(pos(Atom("edge", (x, y))),),
            name="base",
        ),
        Rule(
            head=insert(Atom("tc", (x, y))),
            body=(pos(Atom("tc", (x, z))), pos(Atom("edge", (z, y)))),
            name="step",
        ),
    )
    database = Database()
    for a, b in random_edges(num_nodes, num_edges, seed):
        database.add(Atom("edge", (Constant(a), Constant(b))))
    return Workload(
        name="tc-%d" % num_nodes,
        program=Program(rules),
        database=database,
        description="transitive closure, %d nodes / %d edges (seed %d)"
        % (num_nodes, num_edges, seed),
    )


class IrreflexiveGraphPolicy(SelectPolicy):
    """The Section 4.2 custom SELECT, generalized to ``n`` nodes.

    Reflexive arcs always lose (delete wins); arcs connecting the
    designated *cut pair* lose; every other conflict keeps the arc
    (insert wins, blocking the transitivity-deleting instances).
    """

    name = "irreflexive-graph"

    def __init__(self, cut_pair=("a", "c")):
        self.cut_pair = frozenset(cut_pair)

    def select(self, context):
        terms = context.conflict.atom.terms
        x, y = str(terms[0]), str(terms[1])
        if x == y or {x, y} == self.cut_pair:
            return Decision.DELETE
        return Decision.INSERT


def irreflexive_graph(node_names=("a", "b", "c"), cut_pair=("a", "c")):
    """The paper's Section 4.2 program over arbitrary node sets.

    With the default three nodes and cut pair this *is* experiment E4,
    expected result ``q`` arcs: every ordered non-reflexive pair except
    the cut pair.
    """
    x, y, z = Variable("X"), Variable("Y"), Variable("Z")
    rules = (
        Rule(
            head=insert(Atom("q", (x, y))),
            body=(pos(Atom("p", (x,))), pos(Atom("p", (y,)))),
            name="r1",
        ),
        Rule(
            head=delete(Atom("q", (x, x))),
            body=(pos(Atom("q", (x, x))),),
            name="r2",
        ),
        Rule(
            head=delete(Atom("q", (x, y))),
            body=(
                pos(Atom("q", (x, y))),
                pos(Atom("q", (x, z))),
                pos(Atom("q", (z, y))),
            ),
            name="r3",
        ),
    )
    database = Database(Atom("p", (Constant(n),)) for n in node_names)
    cut = frozenset(cut_pair)
    expected = set(database.atoms())
    for a in node_names:
        for b in node_names:
            if a != b and {a, b} != cut:
                expected.add(Atom("q", (Constant(a), Constant(b))))
    return Workload(
        name="irreflexive-%d" % len(tuple(node_names)),
        program=Program(rules),
        database=database,
        policy=IrreflexiveGraphPolicy(cut_pair),
        expected=frozenset(expected),
        description="Section 4.2 irreflexive graph over %d nodes"
        % len(tuple(node_names)),
    )
