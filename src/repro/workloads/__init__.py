"""Workload generators for benchmarks, fuzzing and examples."""

from .base import Workload
from .chains import propositional_chain, relational_reachability
from .conflicts import conflict_cascade, conflict_ladder
from .games import chain_game, random_game, win_move_program
from .graphs import (
    IrreflexiveGraphPolicy,
    irreflexive_graph,
    random_edges,
    transitive_closure,
)
from .hr import deactivation_batch, hr_database, hr_program, payroll_cleanup
from .paper import PAPER_EXAMPLES, Section42Policy, paper_example, run_all
from .random_programs import ProgramGenerator, random_workload

__all__ = [
    "IrreflexiveGraphPolicy",
    "PAPER_EXAMPLES",
    "Section42Policy",
    "ProgramGenerator",
    "Workload",
    "conflict_cascade",
    "conflict_ladder",
    "chain_game",
    "random_game",
    "win_move_program",
    "deactivation_batch",
    "hr_database",
    "hr_program",
    "irreflexive_graph",
    "paper_example",
    "run_all",
    "payroll_cleanup",
    "propositional_chain",
    "random_edges",
    "random_workload",
    "relational_reachability",
    "transitive_closure",
]
