"""Win–move game workloads for the deductive-semantics comparisons.

The classical datalog¬ benchmark: ``win(X) :- move(X, Y), not win(Y)``.
Its well-founded model distinguishes won / lost / *drawn* positions,
which makes it the canonical separator between the inflationary and the
well-founded semantics (and unstratifiable whenever the move graph has
cycles — so it also exercises the stratification checker's rejection
path).
"""

from __future__ import annotations

import random

from ..lang.atoms import Atom
from ..lang.literals import neg, pos
from ..lang.program import Program
from ..lang.rules import Rule
from ..lang.terms import Constant, Variable
from ..lang.updates import insert
from ..storage.database import Database
from .base import Workload


def win_move_program():
    """``move(X, Y), not win(Y) -> +win(X)`` as a one-rule program."""
    x, y = Variable("X"), Variable("Y")
    return Program(
        (
            Rule(
                head=insert(Atom("win", (x,))),
                body=(pos(Atom("move", (x, y))), neg(Atom("win", (y,)))),
                name="win",
            ),
        )
    )


def chain_game(length):
    """An acyclic chain ``n0 -> n1 -> ... -> n<length>``.

    Positions alternate won/lost from the dead end backwards; stratified
    only in the degenerate sense (the program is never stratifiable, but
    the *model* is total on acyclic graphs).
    """
    database = Database()
    for index in range(length):
        database.add(
            Atom(
                "move",
                (Constant("n%d" % index), Constant("n%d" % (index + 1))),
            )
        )
    return Workload(
        name="game-chain-%d" % length,
        program=win_move_program(),
        database=database,
        description="win-move game on an acyclic %d-chain" % length,
    )


def random_game(num_positions, num_moves=None, seed=0):
    """A random move graph; cycles produce genuinely drawn positions."""
    if num_moves is None:
        num_moves = 2 * num_positions
    rng = random.Random(seed)
    database = Database()
    seen = set()
    attempts = 0
    while len(seen) < num_moves and attempts < 20 * num_moves:
        attempts += 1
        a = rng.randrange(num_positions)
        b = rng.randrange(num_positions)
        if a != b and (a, b) not in seen:
            seen.add((a, b))
            database.add(
                Atom("move", (Constant("n%d" % a), Constant("n%d" % b)))
            )
    return Workload(
        name="game-random-%d" % num_positions,
        program=win_move_program(),
        database=database,
        description="win-move game on a random graph (%d positions, seed %d)"
        % (num_positions, seed),
    )
