"""Workload containers shared by the generators in this package."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass
class Workload:
    """A ready-to-run PARK scenario.

    Attributes:
        name: short identifier (appears in benchmark output).
        program: the rule :class:`~repro.lang.program.Program`.
        database: the initial :class:`~repro.storage.database.Database`.
        updates: transaction updates ``U`` (empty for CA workloads).
        policy: a policy instance when the workload needs a specific one
            (``None`` means "caller's choice / default inertia").
        expected: optionally, the expected result atoms (for self-checks).
        description: one line about what the workload exercises.
    """

    name: str
    program: object
    database: object
    updates: Tuple = ()
    policy: Optional[object] = None
    expected: Optional[frozenset] = None
    description: str = ""

    def run(self, **engine_options):
        """Run this workload through :func:`repro.core.engine.park`."""
        from ..core.engine import park

        policy = engine_options.pop("policy", self.policy)
        return park(
            self.program,
            self.database,
            updates=self.updates,
            policy=policy,
            **engine_options,
        )

    def check(self, result):
        """Verify *result* against :attr:`expected` (no-op when unset)."""
        if self.expected is not None and result.atoms != self.expected:
            raise AssertionError(
                "workload %s: expected %d atoms, got %d; missing=%s spurious=%s"
                % (
                    self.name,
                    len(self.expected),
                    len(result.atoms),
                    sorted(str(a) for a in self.expected - result.atoms)[:5],
                    sorted(str(a) for a in result.atoms - self.expected)[:5],
                )
            )
        return result
