"""Chain workloads: long derivation chains, no conflicts.

These stress the inner ``Γ`` loop (many rounds, one new fact per round in
the propositional variant) and the matcher (in the relational variant),
while guaranteeing conflict-freedom — PARK must behave exactly like the
inflationary fixpoint here, which tests and benchmarks exploit.
"""

from __future__ import annotations

from ..lang.atoms import Atom
from ..lang.literals import pos
from ..lang.program import Program
from ..lang.rules import Rule
from ..lang.terms import Constant, Variable
from ..lang.updates import insert
from ..storage.database import Database
from .base import Workload


def propositional_chain(length):
    """``p0 -> +p1 -> ... -> +p<length>``; one Γ round per link.

    Expected result: all ``length + 1`` propositions.
    """
    if length < 1:
        raise ValueError("length must be >= 1")
    rules = []
    for index in range(length):
        rules.append(
            Rule(
                head=insert(Atom("p%d" % (index + 1))),
                body=(pos(Atom("p%d" % index)),),
                name="link%d" % index,
            )
        )
    database = Database([Atom("p0")])
    expected = frozenset(Atom("p%d" % i) for i in range(length + 1))
    return Workload(
        name="prop-chain-%d" % length,
        program=Program(tuple(rules)),
        database=database,
        expected=expected,
        description="propositional chain of %d links; %d Γ rounds" % (length, length),
    )


def relational_reachability(num_nodes, fanout=1):
    """Reachability along a chain (or braided chain) of *num_nodes* nodes.

    One recursive rule ``at(X), step(X, Y) -> +at(Y)`` over a ``step``
    relation laid out as ``fanout`` parallel chains sharing nodes — the
    relational analogue of :func:`propositional_chain`, exercising joins
    and indexes instead of proposition lookups.
    """
    if num_nodes < 2:
        raise ValueError("num_nodes must be >= 2")
    x, y = Variable("X"), Variable("Y")
    rule = Rule(
        head=insert(Atom("at", (y,))),
        body=(pos(Atom("at", (x,))), pos(Atom("step", (x, y)))),
        name="walk",
    )
    database = Database()
    for index in range(num_nodes - 1):
        for lane in range(max(1, fanout)):
            offset = lane + 1
            target = index + offset
            if target < num_nodes:
                database.add(
                    Atom(
                        "step",
                        (Constant("n%d" % index), Constant("n%d" % target)),
                    )
                )
    database.add(Atom("at", (Constant("n0"),)))
    expected = frozenset(
        {Atom("at", (Constant("n%d" % i),)) for i in range(num_nodes)}
        | set(database.atoms("step"))
    )
    return Workload(
        name="reach-%d" % num_nodes,
        program=Program((rule,)),
        database=database,
        expected=expected,
        description="reachability over a %d-node chain (fanout %d)"
        % (num_nodes, fanout),
    )
