"""Seeded random program/database generation for fuzzing and properties.

The generator only emits *safe* rules (Section 2's conditions hold by
construction): bodies start with at least one positive literal, head
variables are drawn from binding-literal variables, and negated literals
reuse already-bound variables.  Determinism: the same seed always yields
the same workload, so failures shrink and replay.

Used by property-based tests (PARK terminates / is deterministic /
produces consistent output on arbitrary safe programs) and the baseline
comparison benchmark.
"""

from __future__ import annotations

import random

from ..lang.atoms import Atom
from ..lang.literals import Event, neg, on_delete, on_insert, pos
from ..lang.program import Program
from ..lang.rules import Rule
from ..lang.terms import Constant, Variable
from ..lang.updates import delete, insert
from ..storage.database import Database
from .base import Workload


class ProgramGenerator:
    """Configurable random generator of safe active-rule workloads."""

    def __init__(
        self,
        seed=0,
        num_predicates=4,
        max_arity=2,
        num_constants=4,
        negation_probability=0.25,
        delete_head_probability=0.3,
        event_probability=0.0,
        max_body_literals=3,
    ):
        self.seed = seed
        self.num_predicates = num_predicates
        self.max_arity = max_arity
        self.num_constants = num_constants
        self.negation_probability = negation_probability
        self.delete_head_probability = delete_head_probability
        self.event_probability = event_probability
        self.max_body_literals = max_body_literals
        self._arities = None

    def _rng(self):
        return random.Random(self.seed)

    def _predicate_arities(self, rng):
        if self._arities is None:
            self._arities = {
                "q%d" % i: rng.randint(0, self.max_arity)
                for i in range(self.num_predicates)
            }
        return self._arities

    def _random_atom(self, rng, arities, variables, allow_new_vars):
        predicate = rng.choice(sorted(arities))
        arity = arities[predicate]
        terms = []
        for _ in range(arity):
            roll = rng.random()
            if allow_new_vars and roll < 0.5:
                # reuse or mint a variable
                if variables and rng.random() < 0.6:
                    terms.append(rng.choice(sorted(variables, key=str)))
                else:
                    fresh = Variable("V%d" % len(variables))
                    variables.add(fresh)
                    terms.append(fresh)
            elif variables and roll < 0.7:
                terms.append(rng.choice(sorted(variables, key=str)))
            else:
                terms.append(Constant("k%d" % rng.randrange(self.num_constants)))
        return Atom(predicate, tuple(terms))

    def _random_rule(self, rng, arities, index):
        variables = set()
        body = []
        body_size = rng.randint(1, self.max_body_literals)
        # First literal binds; it is positive or an event (both bind).
        first_atom = self._random_atom(rng, arities, variables, allow_new_vars=True)
        if rng.random() < self.event_probability:
            maker = on_insert if rng.random() < 0.5 else on_delete
            body.append(maker(first_atom))
        else:
            body.append(pos(first_atom))
        for _ in range(body_size - 1):
            if variables and rng.random() < self.negation_probability:
                bound_only = self._random_atom(
                    rng, arities, set(variables), allow_new_vars=False
                )
                if bound_only.variables() <= variables:
                    body.append(neg(bound_only))
                    continue
            atom = self._random_atom(rng, arities, variables, allow_new_vars=True)
            if rng.random() < self.event_probability:
                maker = on_insert if rng.random() < 0.5 else on_delete
                body.append(maker(atom))
            else:
                body.append(pos(atom))
        # Head: variables restricted to what the body binds.
        binding_vars = set()
        for literal in body:
            if literal.binds:
                binding_vars |= literal.variables()
        head_atom = self._head_atom(rng, arities, binding_vars)
        head = (
            delete(head_atom)
            if rng.random() < self.delete_head_probability
            else insert(head_atom)
        )
        return Rule(head=head, body=tuple(body), name="g%d" % index)

    def _head_atom(self, rng, arities, binding_vars):
        predicate = rng.choice(sorted(arities))
        arity = arities[predicate]
        ordered_vars = sorted(binding_vars, key=str)
        terms = []
        for _ in range(arity):
            if ordered_vars and rng.random() < 0.7:
                terms.append(rng.choice(ordered_vars))
            else:
                terms.append(Constant("k%d" % rng.randrange(self.num_constants)))
        return Atom(predicate, tuple(terms))

    def program(self, num_rules):
        """Generate a safe program of *num_rules* rules."""
        rng = self._rng()
        arities = self._predicate_arities(rng)
        return Program(
            tuple(self._random_rule(rng, arities, i) for i in range(num_rules))
        )

    def database(self, num_facts):
        """Generate a random ground database over the same predicates."""
        rng = random.Random(self.seed + 1)
        arities = self._predicate_arities(rng)
        database = Database()
        names = sorted(arities)
        for _ in range(num_facts):
            predicate = rng.choice(names)
            terms = tuple(
                Constant("k%d" % rng.randrange(self.num_constants))
                for _ in range(arities[predicate])
            )
            database.add(Atom(predicate, terms))
        return database

    def workload(self, num_rules, num_facts):
        """A complete random workload."""
        return Workload(
            name="random-s%d-r%d-f%d" % (self.seed, num_rules, num_facts),
            program=self.program(num_rules),
            database=self.database(num_facts),
            description="random safe program (seed %d)" % self.seed,
        )


def random_workload(seed, num_rules=8, num_facts=12, **options):
    """One-call random workload with the given seed."""
    return ProgramGenerator(seed=seed, **options).workload(num_rules, num_facts)
