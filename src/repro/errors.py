"""Exception hierarchy for the PARK reproduction library.

Every error raised by the library derives from :class:`ParkError`, so callers
can catch one type at the API boundary.  Subclasses are grouped by subsystem:
language (parsing, safety), storage (schema violations), and engine
(evaluation limits, policy failures).
"""

from __future__ import annotations


class ParkError(Exception):
    """Base class for all errors raised by this library."""


class LanguageError(ParkError):
    """Base class for errors in the rule language layer."""


class ParseError(LanguageError):
    """Raised when rule or database text cannot be parsed.

    Carries the source position so callers can point at the offending token.
    """

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        if line is not None:
            message = "line %d, column %d: %s" % (line, column, message)
        super().__init__(message)


class SafetyError(LanguageError):
    """Raised when a rule violates the safety conditions of Section 2.

    Condition 1: every head variable must occur in the rule body.
    Condition 2: every variable in a negated body literal must occur in a
    positive (binding) body literal.
    """


class ArityError(LanguageError):
    """Raised when a predicate is used with inconsistent arities."""


class StorageError(ParkError):
    """Base class for errors in the storage layer."""


class SchemaError(StorageError):
    """Raised when a fact violates the declared schema of a relation."""


class EngineError(ParkError):
    """Base class for errors raised during rule evaluation."""


class NonTerminationError(EngineError):
    """Raised when a fixpoint computation exceeds its iteration budget.

    The PARK semantics provably terminates; hitting this error indicates
    either a bug or an adversarial custom policy that keeps resolving
    conflicts without blocking anything.
    """


class PolicyError(EngineError):
    """Raised when a conflict-resolution policy misbehaves.

    Examples: returning something other than ``insert``/``delete``, or an
    interactive policy whose script ran out of answers.
    """


class TransactionError(ParkError):
    """Raised on invalid transaction usage in the active-database facade."""
