#!/usr/bin/env python3
"""Quickstart: the PARK semantics in five minutes.

Runs the paper's first example program (Section 4.1, P1) step by step:
parse rules, evaluate them under the principle of inertia, inspect the
conflict that arises, and print the full computation trace in the
paper's notation.

    python examples/quickstart.py
"""

from repro import ParkEngine, TraceRecorder, park, render_trace, why


def main():
    # Rules are written in a datalog-like syntax.  Heads are updates:
    # '+' inserts, '-' deletes.  'not' is negation by failure.
    rules = """
    @name(r1) p -> +q.
    @name(r2) p -> -a.
    @name(r3) q -> +a.
    """

    # A database instance is just a set of ground facts.
    facts = "p."

    # --- one-shot evaluation -------------------------------------------------
    result = park(rules, facts)

    print("input database : {p}")
    print("result database:", result.database)
    print("net delta      :", result.delta)
    print("run summary    :", result.summary())
    print()

    # r2 wants to delete 'a', r3 (eventually) wants to insert it.  Under
    # the default policy — the paper's *principle of inertia* — the
    # conflicting actions cancel and 'a' keeps its original status
    # (absent).  The losing rule instance, r3, is blocked:
    print("blocked rules  :", result.blocked_rules())
    assert result.blocked_rules() == ["r3"]
    assert str(result.database) == "{p, q}"

    # --- why is q in the result? ----------------------------------------------
    print()
    print("derivation of +q:")
    print(why(result, "+q"))

    # --- watching the fixpoint computation ------------------------------------
    print()
    print("full trace (paper notation):")
    recorder = TraceRecorder()
    ParkEngine(listeners=[recorder]).run(rules, facts)
    print(render_trace(recorder))


if __name__ == "__main__":
    main()
