#!/usr/bin/env python3
"""Durability: checkpoints, a commit journal, and crash recovery.

The active-database facade can journal every committed delta to disk and
rebuild its state from a base snapshot plus the journal — the classical
write-ahead-log recipe, with the twist that what is journaled is the
*outcome of the PARK computation* (the applied delta), so recovery does
not depend on the rule set that produced it.

    python examples/durability.py
"""

import os
import tempfile

from repro import ActiveDatabase


def main():
    workdir = tempfile.mkdtemp(prefix="park-durability-")
    snapshot = os.path.join(workdir, "base.park")
    journal = os.path.join(workdir, "commits.journal")

    # --- a journaled database ---------------------------------------------------
    db = ActiveDatabase.from_text(
        "account(alice). account(bob). balance_ok(alice). balance_ok(bob).",
        journal=journal,
    )
    db.add_rule(
        "@name(suspend) account(X), not balance_ok(X) -> +suspended(X)."
    )
    db.add_rule("@name(notify) +suspended(X) -> +letter_queued(X).")
    db.checkpoint(snapshot)
    print("checkpoint written to", snapshot)

    # --- commits accumulate in the journal ----------------------------------------
    with db.transaction() as tx:
        tx.delete("balance_ok", "alice")
    with db.transaction() as tx:
        tx.insert("account", "carol")
        tx.insert("balance_ok", "carol")

    print()
    print("live state after two commits:")
    print("  suspended    :", db.rows("suspended"))
    print("  letter_queued:", db.rows("letter_queued"))
    print("  journal lines:", len(db.journal))
    assert db.rows("suspended") == [("alice",)]

    with open(journal, "r", encoding="utf-8") as handle:
        print()
        print("journal contents:")
        for line in handle:
            print("  " + line.rstrip())

    # --- simulate a crash: rebuild from snapshot + journal --------------------------
    recovered = ActiveDatabase.recover(snapshot, journal)
    print()
    print("recovered state equals live state:",
          recovered.database == db.database)
    assert recovered.database == db.database

    # recovery replays *deltas*, so it works even with different rules loaded
    recovered_other_rules = ActiveDatabase.recover(
        snapshot, journal, rules=["@name(unrelated) p0 -> +q0."]
    )
    assert recovered_other_rules.database == db.database
    print("recovery is independent of the current rule set: True")

    # --- group commit: one fsync per batch of auto-commits ------------------------
    before = len(db.journal)
    with db.group_commit(4):
        for name in ("dave", "erin", "frank"):
            db.insert("account", name)
            db.insert("balance_ok", name)
    print()
    print("group commit appended", len(db.journal) - before,
          "records with batched fsyncs")
    recovered_batch = ActiveDatabase.recover(snapshot, journal)
    assert recovered_batch.database == db.database
    print("recovery after group commit still matches: True")

    # --- checkpointing truncates the journal ------------------------------------------
    db.checkpoint(snapshot)
    print()
    print("after re-checkpoint: journal lines =", len(db.journal))
    assert len(db.journal) == 0
    recovered_fresh = ActiveDatabase.recover(snapshot, journal)
    assert recovered_fresh.database == db.database
    print("recovery from the fresh checkpoint still matches: True")


if __name__ == "__main__":
    main()
