#!/usr/bin/env python3
"""Inventory management with full ECA rules and rule priorities.

A small order-processing database where triggers react to *events*
(Section 4.3): placing an order decrements availability, unavailable
items go on backlog, and two deliberately conflicting reorder policies —
a cautious one and an aggressive one — are arbitrated by rule priority
(Section 5's second strategy).

    python examples/inventory_eca.py
"""

from repro import ActiveDatabase, PriorityPolicy
from repro.active.triggers import on
from repro.lang.builder import Pred

order = Pred("order")
available = Pred("available")
backlog = Pred("backlog")
reorder = Pred("reorder")
discontinued = Pred("discontinued")
notify = Pred("notify")


def build():
    db = ActiveDatabase.from_text(
        """
        available(widget).
        available(gizmo).
        discontinued(gizmo).
        """,
        policy=PriorityPolicy(),
    )

    # ECA: an incoming order for an available item consumes availability.
    db.add_rule(
        on(+order("Id", "Item"))
        .if_(available("Item"))
        .then("-", available("Item"), name="consume", priority=1)
    )
    # ECA: losing availability puts the item on backlog.
    db.add_rule(
        on(-available("Item")).then("+", backlog("Item"), name="to_backlog",
                                     priority=1)
    )
    # Conflicting policies about backlogged items:
    #   aggressive: anything on backlog is reordered      (+reorder, prio 5)
    #   cautious:   discontinued items are never reordered (-reorder, prio 10)
    db.add_rule(
        "@name(aggressive) @priority(5) backlog(Item) -> +reorder(Item)."
    )
    db.add_rule(
        "@name(cautious) @priority(10) backlog(Item), discontinued(Item)"
        " -> -reorder(Item)."
    )
    # ECA: reordering notifies purchasing.
    db.add_rule(
        on(+reorder("Item")).then("+", notify("Item"), name="purchasing",
                                  priority=1)
    )
    return db


def main():
    db = build()

    print("stock before:", db.rows("available"))

    # One transaction, two orders.  The gizmo is discontinued, so its
    # +reorder (aggressive) conflicts with -reorder (cautious); the
    # cautious rule has higher priority and wins.
    with db.transaction() as tx:
        tx.insert("order", 1, "widget")
        tx.insert("order", 2, "gizmo")

    print()
    print("after the order transaction:")
    print("  available:", db.rows("available"))
    print("  backlog  :", db.rows("backlog"))
    print("  reorder  :", db.rows("reorder"))
    print("  notify   :", db.rows("notify"))

    assert db.rows("available") == []
    assert db.rows("backlog") == [("gizmo",), ("widget",)]
    assert db.rows("reorder") == [("widget",)]       # gizmo suppressed
    assert db.rows("notify") == [("widget",)]        # event fired only once

    result = db.log.last()
    print()
    print("commit record:", result)
    print("blocked rules:", list(result.blocked_rules))
    assert list(result.blocked_rules) == ["aggressive"]

    # Blocking is per-commit state: the next commit starts with an empty
    # blocked set, so the aggressive rule still reorders ordinary items.
    db.insert("available", "doohickey")  # restock first ...
    with db.transaction() as tx:         # ... then order in a fresh commit
        tx.insert("order", 3, "doohickey")
    print()
    print("after ordering a doohickey:")
    print("  reorder  :", db.rows("reorder"))
    assert ("doohickey",) in db.rows("reorder")


if __name__ == "__main__":
    main()
