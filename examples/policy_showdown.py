#!/usr/bin/env python3
"""One program, six conflict-resolution strategies (paper, Section 5).

The paper's central modularity claim: "the conflict resolution strategy
is orthogonal to the fixpoint computation".  This example runs the same
program and database under every strategy the paper discusses — inertia,
rule priority, specificity, voting, interactive (scripted), and random —
and tabulates how the outcomes differ while the machinery stays fixed.

    python examples/policy_showdown.py
"""

from repro import (
    InertiaPolicy,
    PriorityPolicy,
    RandomPolicy,
    ScriptedPolicy,
    SpecificityPolicy,
    VotingPolicy,
    park,
)
from repro.policies.composite import ConstantPolicy

# The paper's Section 5 program (priorities = rule index).
PROGRAM = """
@name(r1) @priority(1) p -> +a.
@name(r2) @priority(2) p -> +q.
@name(r3) @priority(3) a -> +b.
@name(r4) @priority(4) a -> -q.
@name(r5) @priority(5) b -> +q.
"""
FACTS = "p."


def showdown():
    policies = [
        InertiaPolicy(),
        PriorityPolicy(),
        SpecificityPolicy(),  # bodies here are incomparable -> falls back to inertia
        VotingPolicy(
            [InertiaPolicy(), PriorityPolicy(), ConstantPolicy("insert")]
        ),
        ScriptedPolicy(["insert"]),  # "the user" keeps q at the first conflict
        RandomPolicy(seed=42),
    ]

    print("program under test (paper, Section 5):")
    print(PROGRAM)
    print("%-12s  %-22s  %-18s  %s" % ("policy", "result", "blocked", "restarts"))
    print("-" * 72)

    outcomes = {}
    for policy in policies:
        result = park(PROGRAM, FACTS, policy=policy)
        outcomes[policy.name] = result
        print(
            "%-12s  %-22s  %-18s  %d"
            % (
                policy.name,
                str(result.database),
                ",".join(result.blocked_rules()) or "-",
                result.stats.restarts,
            )
        )
    return outcomes


def check(outcomes):
    # The paper's two fully-worked outcomes:
    assert str(outcomes["inertia"].database) == "{a, b, p}"
    assert outcomes["inertia"].blocked_rules() == ["r2", "r5"]
    assert str(outcomes["priority"].database) == "{a, b, p, q}"
    assert outcomes["priority"].blocked_rules() == ["r2", "r4"]
    # Specificity cannot separate these rules; its inertia fallback applies.
    assert outcomes["specificity"].atoms == outcomes["inertia"].atoms
    # The scripted user kept q by answering "insert" at the first conflict.
    assert str(outcomes["scripted"].database) == "{a, b, p, q}"
    # Every policy produced *some* unique, consistent state — requirement 1.
    for result in outcomes.values():
        assert result.interpretation.is_consistent()


def determinism_of_random():
    a = park(PROGRAM, FACTS, policy=RandomPolicy(seed=7))
    b = park(PROGRAM, FACTS, policy=RandomPolicy(seed=7))
    assert a.atoms == b.atoms
    print()
    print("random policy with a fixed seed is reproducible: %s" % a.database)


if __name__ == "__main__":
    results = showdown()
    check(results)
    determinism_of_random()
    print()
    print("same fixpoint machinery, six different outcomes - as designed.")
