#!/usr/bin/env python3
"""The paper's motivating scenario: payroll cleanup in an active database.

Section 2 of the paper introduces the rule "if a non-active employee has
a record in the salary relation, then this record should be deleted".
This example runs that rule — plus ECA bookkeeping triggers — through the
DBMS-shaped facade: tables, transactions, savepoints, commit-time rule
processing, and an audit of the commit log.

    python examples/payroll_cleanup.py
"""

from repro import ActiveDatabase


def build_database():
    db = ActiveDatabase.from_text(
        """
        emp(joe).   active(joe).   payroll(joe, 4200).
        emp(ann).   active(ann).   payroll(ann, 5100).
        emp(raj).   active(raj).   payroll(raj, 4700).
        """
    )
    # The paper's rule, verbatim (Section 2).
    db.add_rule(
        "@name(cleanup) emp(X), not active(X), payroll(X, Salary)"
        " -> -payroll(X, Salary)."
    )
    # ECA bookkeeping: react to the *events* the cleanup rule generates.
    db.add_rule("@name(audit) -payroll(X, Salary) -> +audit(X, Salary).")
    db.add_rule(
        "@name(severance) -active(X), payroll(X, Salary) -> +severance(X)."
    )
    return db


def main():
    db = build_database()
    print("before:", sorted(db.rows("payroll")))

    # --- a transaction that deactivates one employee ---------------------------
    with db.transaction() as tx:
        tx.delete("active", "joe")

    print()
    print("after deactivating joe:")
    print("  payroll  :", db.rows("payroll"))
    print("  audit    :", db.rows("audit"))
    print("  severance:", db.rows("severance"))
    assert db.rows("payroll") == [("ann", 5100), ("raj", 4700)]
    assert db.rows("audit") == [("joe", 4200)]
    assert db.rows("severance") == [("joe",)]

    # --- savepoints: stage, reconsider, commit ---------------------------------
    with db.transaction() as tx:
        tx.delete("active", "ann")
        tx.savepoint("keep_ann")
        tx.delete("active", "raj")
        # Second thoughts about raj:
        tx.rollback_to("keep_ann")
    assert db.contains("active", "raj")
    assert not db.contains("active", "ann")
    print()
    print("after the savepoint transaction:")
    print("  payroll  :", db.rows("payroll"))

    # --- the commit log ----------------------------------------------------------
    print()
    print("commit log:")
    for record in db.log:
        print("  %s" % record)
        print("    rules blocked: %s" % (list(record.blocked_rules) or "none"))

    # Which commits touched ann's payroll row?
    from repro import parse_atom

    culprits = db.log.for_atom(parse_atom("payroll(ann, 5100)"))
    print()
    print(
        "payroll(ann, 5100) was touched by transaction(s): %s"
        % [r.transaction_id for r in culprits]
    )


if __name__ == "__main__":
    main()
