#!/usr/bin/env python3
"""Graph maintenance: the paper's Section 4.2 worked example, then scaled.

The program builds an irreflexive graph over the nodes of ``p`` and
removes arcs implied by transitivity:

    r1: p(X), p(Y)               -> +q(X, Y)
    r2: q(X, X)                  -> -q(X, X)
    r3: q(X, Y), q(X, Z), q(Z, Y) -> -q(X, Y)

Every candidate arc is simultaneously inserted (r1) and deleted (r2/r3)
— a conflict on each of the n² atoms — and the *application-specific*
SELECT policy decides arc by arc: reflexive arcs and the designated cut
pair lose; every other arc is kept.  This is the paper's flagship
demonstration of flexible, atom-level conflict resolution.

    python examples/graph_maintenance.py
"""

from repro import ParkEngine, TraceRecorder, park, render_trace
from repro.workloads import IrreflexiveGraphPolicy, irreflexive_graph


def paper_instance():
    """The exact three-node instance from the paper."""
    workload = irreflexive_graph(("a", "b", "c"), cut_pair=("a", "c"))
    recorder = TraceRecorder()
    engine = ParkEngine(policy=workload.policy, listeners=[recorder])
    result = engine.run(workload.program, workload.database)

    print("=== the paper's instance (nodes a, b, c; cut pair {a, c}) ===")
    print(render_trace(recorder))
    print()
    print("result:", result.database)
    workload.check(result)
    assert str(result.database) == (
        "{p(a), p(b), p(c), q(a, b), q(b, a), q(b, c), q(c, b)}"
    )
    print(
        "blocked %d rule instances over rules %s, %d restart(s)"
        % (len(result.blocked), result.blocked_rules(), result.stats.restarts)
    )


def scaled_instance(n=8):
    """The same program over n nodes: conflicts grow as n², still one restart."""
    names = tuple("n%d" % i for i in range(n))
    workload = irreflexive_graph(names, cut_pair=(names[0], names[-1]))
    result = workload.run()
    workload.check(result)

    kept = result.database.count("q")
    print()
    print("=== scaled to %d nodes ===" % n)
    print(
        "kept %d arcs (all ordered non-reflexive pairs minus the cut pair: %d)"
        % (kept, n * (n - 1) - 2)
    )
    print(
        "conflicts resolved: %d; blocked instances: %d; restarts: %d"
        % (
            result.stats.conflicts_resolved,
            result.stats.blocked_instances,
            result.stats.restarts,
        )
    )
    assert kept == n * (n - 1) - 2


def custom_policy_variant():
    """Swap in a different cut pair without touching the rules —
    the policy is a parameter, not part of the semantics."""
    workload = irreflexive_graph(("a", "b", "c"))
    other_policy = IrreflexiveGraphPolicy(cut_pair=("b", "c"))
    result = park(workload.program, workload.database, policy=other_policy)

    print()
    print("=== same rules, different SELECT (cut pair {b, c}) ===")
    print("result:", result.database)
    from repro import parse_atom

    assert result.database.count("q") == 4
    assert parse_atom("q(b, c)") not in result.database
    assert parse_atom("q(c, b)") not in result.database
    assert parse_atom("q(a, c)") in result.database


if __name__ == "__main__":
    paper_instance()
    scaled_instance()
    custom_policy_variant()
