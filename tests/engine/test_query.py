"""Tests for ad-hoc conjunctive queries."""

import pytest

from repro.engine.query import conjunctive_query, holds, query_rows
from repro.errors import LanguageError, SafetyError
from repro.lang import neg, parse_body, pos
from repro.lang.atoms import atom
from repro.storage.database import Database

DB = Database.from_text(
    "payroll(joe, 10). payroll(ann, 20). payroll(raj, 20). "
    "active(ann). active(raj). emp(joe). emp(ann). emp(raj)."
)


class TestQueryRows:
    def test_join_with_negation(self):
        rows = query_rows("payroll(X, S), not active(X)", DB)
        assert rows == [{"S": 10, "X": "joe"}]

    def test_plain_join(self):
        rows = query_rows("emp(X), payroll(X, 20)", DB)
        assert rows == [{"X": "ann"}, {"X": "raj"}]

    def test_constants_filter(self):
        assert query_rows("payroll(joe, S)", DB) == [{"S": 10}]

    def test_ground_query_satisfied(self):
        assert query_rows("emp(joe)", DB) == [{}]

    def test_ground_query_unsatisfied(self):
        assert query_rows("emp(zoe)", DB) == []

    def test_literal_objects_accepted(self):
        rows = query_rows([pos(atom("emp", "X")), neg(atom("active", "X"))], DB)
        assert rows == [{"X": "joe"}]

    def test_deduplicated_answers(self):
        # Y ranges over two payroll rows but X answers collapse.
        rows = query_rows("emp(X), payroll(Y, 20)", DB)
        assert len(rows) == len({tuple(sorted(r.items())) for r in rows})


class TestHoldsAndSubstitutions:
    def test_holds(self):
        assert holds("payroll(X, 20)", DB)
        assert not holds("payroll(X, 999)", DB)

    def test_conjunctive_query_returns_substitutions(self):
        answers = conjunctive_query("payroll(joe, S)", DB)
        assert len(answers) == 1
        assert str(answers[0]) == "[S <- 10]"


class TestQuerySafety:
    def test_unbound_negation_rejected(self):
        with pytest.raises(SafetyError):
            query_rows("not active(X)", DB)

    def test_empty_query_rejected(self):
        from repro.errors import ParseError

        with pytest.raises((LanguageError, ParseError)):
            query_rows("", DB)

    def test_junk_elements_rejected(self):
        with pytest.raises(LanguageError):
            query_rows([atom("emp", "X")], DB)  # raw atoms are not literals

    def test_trailing_period_tolerated(self):
        assert parse_body("emp(X).") == parse_body("emp(X)")


class TestQuerySources:
    def test_interpretation_source_with_events(self):
        from repro.core import park

        result = park("p -> +q(a). p -> -stale(b).", "p. stale(b).")
        assert query_rows("+q(X)", result.interpretation) == [{"X": "a"}]
        assert query_rows("-stale(X)", result.interpretation) == [{"X": "b"}]

    def test_database_source_events_never_hold(self):
        assert query_rows("+payroll(X, S)", DB) == []

    def test_bad_source_rejected(self):
        with pytest.raises(TypeError):
            query_rows("emp(X)", {"not": "a source"})


class TestActiveDatabaseQuery:
    def test_query_and_ask(self):
        from repro.active import ActiveDatabase

        db = ActiveDatabase(DB.copy())
        assert db.query("payroll(X, S), not active(X)") == [{"S": 10, "X": "joe"}]
        assert db.ask("emp(ann), active(ann)")
        assert not db.ask("emp(ann), not active(ann)")

    def test_query_sees_committed_state(self):
        from repro.active import ActiveDatabase

        db = ActiveDatabase(DB.copy())
        db.add_rule("emp(X), not active(X), payroll(X, S) -> -payroll(X, S).")
        db.delete("active", "ann")
        assert db.query("payroll(ann, S)") == []
