"""Tests for the join planner."""

from repro.engine.planner import explain_plan, plan_body
from repro.lang import parse_rule


def kinds(rule_text):
    return [(str(s.literal), s.kind) for s in plan_body(parse_rule(rule_text))]


class TestOrdering:
    def test_empty_body(self):
        assert plan_body(parse_rule("-> +q(b).")) == ()

    def test_single_literal(self):
        assert kinds("p(X) -> +q(X).") == [("p(X)", "bind")]

    def test_negation_scheduled_after_binding(self):
        plan = kinds("p(X), not r(X) -> +q(X).")
        assert plan == [("p(X)", "bind"), ("not r(X)", "check")]

    def test_negation_first_in_source_still_delayed(self):
        plan = kinds("not r(X), p(X) -> +q(X).")
        assert plan == [("p(X)", "bind"), ("not r(X)", "check")]

    def test_ground_negation_scheduled_first(self):
        plan = kinds("p(X), not r(a) -> +q(X).")
        assert plan[0] == ("not r(a)", "check")

    def test_most_bound_literal_preferred(self):
        # After binding X via p(X), s(X, Y) has one bound position while
        # t(Z, W) has none, so s comes first.
        plan = kinds("p(X), t(Z, W), s(X, Y) -> +q(X).")
        assert plan[0] == ("p(X)", "bind")
        assert plan[1] == ("s(X, Y)", "bind")

    def test_constants_count_as_bound(self):
        # t(a, Z) has a bound constant position; u(Z, W) has none.
        plan = kinds("u(Z, W), t(a, Z) -> +q(Z).")
        assert plan[0] == ("t(a, Z)", "bind")

    def test_fully_bound_positive_literal_becomes_check(self):
        plan = kinds("p(X), p2(X) -> +q(X).")
        assert plan == [("p(X)", "bind"), ("p2(X)", "check")]

    def test_events_are_binding(self):
        plan = kinds("+r(X), not s(X) -> +q(X).")
        assert plan == [("+r(X)", "bind"), ("not s(X)", "check")]

    def test_deterministic_tie_break_by_position(self):
        plan = kinds("m(X), n(Y) -> +q(X).")
        assert plan[0][0] == "m(X)"


class TestExplain:
    def test_explain_plan_lines(self):
        text = explain_plan(parse_rule("p(X), not r(X) -> +q(X)."))
        lines = text.splitlines()
        assert len(lines) == 2
        assert "[bind]" in lines[0]
        assert "[check]" in lines[1]


class _StatsView:
    """Minimal stand-in exposing only the planner's statistics hook."""

    def __init__(self, counts):
        self.counts = counts

    def estimate(self, predicate):
        return self.counts.get(predicate, 0)


def kinds_with_stats(rule_text, counts):
    view = _StatsView(counts)
    return [
        (str(s.literal), s.kind)
        for s in plan_body(parse_rule(rule_text), view)
    ]


class TestStatsTieBreak:
    def test_smaller_relation_scanned_first(self):
        # Equal bound/free counts: the view's cardinality estimate breaks
        # the tie, so the smaller relation drives the join.
        plan = kinds_with_stats(
            "m(X), n(Y) -> +q(X, Y).", {"m": 1000, "n": 3}
        )
        assert plan[0][0] == "n(Y)"

    def test_equal_estimates_fall_back_to_position(self):
        plan = kinds_with_stats(
            "m(X), n(Y) -> +q(X, Y).", {"m": 5, "n": 5}
        )
        assert plan[0][0] == "m(X)"

    def test_bound_count_still_dominates_estimate(self):
        # s(X, Y) has a bound column once X is known; a huge estimate must
        # not demote it below the unbound t(Z, W).
        plan = kinds_with_stats(
            "p(X), t(Z, W), s(X, Y) -> +q(X).",
            {"p": 1, "s": 10_000, "t": 1},
        )
        assert plan[1][0] == "s(X, Y)"

    def test_no_view_means_position_tie_break(self):
        plan = kinds("m(X), n(Y) -> +q(X, Y).")
        assert plan[0][0] == "m(X)"
