"""Tests for naive and semi-naive positive-datalog evaluation."""

import pytest

from repro.engine.datalog import (
    naive_least_fixpoint,
    query,
    seminaive_least_fixpoint,
)
from repro.errors import EngineError
from repro.lang import parse_atom, parse_program
from repro.lang.atoms import atom
from repro.storage.database import Database

TC = parse_program("""
edge(X, Y) -> +tc(X, Y).
tc(X, Z), edge(Z, Y) -> +tc(X, Y).
""")


class TestNaive:
    def test_transitive_closure(self):
        db = Database.from_text("edge(a, b). edge(b, c). edge(c, d).")
        result = naive_least_fixpoint(TC, db)
        assert atom("tc", "a", "d") in result
        assert result.count("tc") == 6

    def test_input_not_modified(self):
        db = Database.from_text("edge(a, b).")
        naive_least_fixpoint(TC, db)
        assert len(db) == 1

    def test_cyclic_graph_terminates(self):
        db = Database.from_text("edge(a, b). edge(b, a).")
        result = naive_least_fixpoint(TC, db)
        assert result.count("tc") == 4  # all pairs incl. self-loops via cycle

    def test_rejects_deletion_heads(self):
        bad = parse_program("p(X) -> -q(X).")
        with pytest.raises(EngineError, match="insert-only"):
            naive_least_fixpoint(bad, Database())

    def test_rejects_negation(self):
        bad = parse_program("p(X), not r(X) -> +q(X).")
        with pytest.raises(EngineError, match="positive"):
            naive_least_fixpoint(bad, Database())

    def test_round_budget(self):
        chain = parse_program("n(X, Y), at(X) -> +at(Y).")
        db = Database.from_text("at(a). n(a, b). n(b, c). n(c, d).")
        with pytest.raises(EngineError, match="rounds"):
            naive_least_fixpoint(chain, db, max_rounds=2)


class TestSemiNaive:
    @pytest.mark.parametrize("facts", [
        "edge(a, b).",
        "edge(a, b). edge(b, c). edge(c, d). edge(d, e).",
        "edge(a, b). edge(b, a). edge(b, c).",
        "",
    ])
    def test_agrees_with_naive(self, facts):
        db = Database.from_text(facts)
        assert seminaive_least_fixpoint(TC, db) == naive_least_fixpoint(TC, db)

    def test_multi_rule_program(self):
        program = parse_program("""
        parent(X, Y) -> +anc(X, Y).
        anc(X, Z), parent(Z, Y) -> +anc(X, Y).
        anc(X, Y) -> +related(X, Y).
        """)
        db = Database.from_text("parent(a, b). parent(b, c).")
        result = seminaive_least_fixpoint(program, db)
        assert atom("related", "a", "c") in result

    def test_no_shadow_relations_leak(self):
        db = Database.from_text("edge(a, b). edge(b, c).")
        result = seminaive_least_fixpoint(TC, db)
        assert all(not p.startswith("__delta__") for p in result.predicates())


class TestQuery:
    def test_query_binds_goal_variables(self):
        db = Database.from_text("edge(a, b). edge(b, c).")
        answers = query(TC, db, parse_atom("tc(a, X)"))
        bound = {str(s[next(iter(v for v in s if v.name == "X"))]) for s in answers}
        assert bound == {"b", "c"}

    def test_query_ground_goal(self):
        db = Database.from_text("edge(a, b).")
        assert len(query(TC, db, parse_atom("tc(a, b)"))) == 1
        assert len(query(TC, db, parse_atom("tc(b, a)"))) == 0
