"""Tests for the slot compiler and its register-machine executor."""

from repro.engine.compiler import (
    CompiledProgram,
    clear_program_cache,
    compile_program,
)
from repro.engine.views import DatabaseView
from repro.lang import parse_rule, substitution
from repro.storage.database import Database


def setup_function(function):
    clear_program_cache()


def view_of(facts_text):
    return DatabaseView(Database.from_text(facts_text))


def subs(rule_text, facts_text):
    rule = parse_rule(rule_text)
    view = view_of(facts_text)
    return sorted(compile_program(rule).substitutions(view), key=str)


class TestCompilation:
    def test_slots_cover_all_rule_variables(self):
        rule = parse_rule("edge(X, Y), edge(Y, Z) -> +path(X, Z).")
        program = compile_program(rule)
        assert program.nslots == 3
        assert {v for v, _ in program.sub_items} == rule.variables()

    def test_sub_items_sorted_by_name(self):
        rule = parse_rule("edge(Z, A), p(M) -> +q(A, M, Z).")
        program = compile_program(rule)
        names = [v.name for v, _ in program.sub_items]
        assert names == sorted(names)

    def test_compile_cached_per_rule(self):
        rule = parse_rule("p(X) -> +q(X).")
        assert compile_program(rule) is compile_program(rule)
        clear_program_cache()
        fresh = compile_program(rule)
        assert fresh is compile_program(rule)

    def test_check_steps_fold_into_preceding_bind(self):
        rule = parse_rule("p(X), not r(X) -> +q(X).")
        program = compile_program(rule)
        assert len(program.bind_steps) == 1
        assert len(program.bind_steps[0].post_checks) == 1
        assert not program.prefix_checks

    def test_ground_check_before_any_bind_is_prefix(self):
        rule = parse_rule("not r(a), p(X) -> +q(X).")
        program = compile_program(rule)
        assert len(program.prefix_checks) == 1

    def test_registrations_only_for_composite_signatures(self):
        # Second literal probes with Y bound (1 column of 2) — a
        # single-column signature, never registered.
        rule = parse_rule("edge(X, Y), edge(Y, Z) -> +path(X, Z).")
        assert compile_program(rule).registrations == ()
        # Probing r(X, Y, Z) with X and Y bound: 2 of 3 columns — the
        # composite case the handshake exists for.
        wide = parse_rule("p(X, Y), r(X, Y, Z) -> +s(Z).")
        program = compile_program(wide)
        assert program.registrations == (("r", 3, (0, 1)),)


class TestExecution:
    def test_join(self):
        found = subs(
            "edge(X, Y), edge(Y, Z) -> +path(X, Z).",
            "edge(a, b). edge(b, c).",
        )
        assert found == [substitution(X="a", Y="b", Z="c")]

    def test_constants_rechecked(self):
        found = subs("edge(a, Y) -> +q(Y).", "edge(a, b). edge(c, d).")
        assert found == [substitution(Y="b")]

    def test_repeated_variable_within_literal(self):
        found = subs("edge(X, X) -> +loop(X).", "edge(a, a). edge(a, b).")
        assert found == [substitution(X="a")]

    def test_negation(self):
        found = subs(
            "p(X), not r(X) -> +q(X).", "p(a). p(b). r(a)."
        )
        assert found == [substitution(X="b")]

    def test_bodyless_rule_yields_one_empty_solution(self):
        rule = parse_rule("-> +q(b).")
        program = compile_program(rule)
        assert list(program.substitutions(view_of("p(a)."))) == [substitution()]

    def test_zero_arity_literals(self):
        found = subs("flag, p(X) -> +q(X).", "flag. p(a).")
        assert found == [substitution(X="a")]
        assert subs("flag, p(X) -> +q(X).", "p(a).") == []

    def test_deep_join_backtracks_correctly(self):
        # Three-way join forces the cursor stack to resume suspended
        # iterators at every depth; a probe returning a restartable
        # iterable (rather than an iterator) would duplicate results.
        found = subs(
            "edge(X, Y), edge(Y, Z), edge(Z, W) -> +p3(X, W).",
            "edge(a, b). edge(b, c). edge(c, d). edge(b, d). edge(d, e).",
        )
        assert found == sorted(
            [
                substitution(X="a", Y="b", Z="c", W="d"),
                substitution(X="a", Y="b", Z="d", W="e"),
                substitution(X="b", Y="c", Z="d", W="e"),
            ],
            key=str,
        )

    def test_freeze_false_yields_dicts(self):
        rule = parse_rule("p(X) -> +q(X).")
        program = compile_program(rule)
        rows = list(program.substitutions(view_of("p(a)."), freeze=False))
        assert rows == [substitution(X="a")]
        assert isinstance(rows[0], dict)

    def test_substitutions_interned_across_calls(self):
        rule = parse_rule("p(X) -> +q(X).")
        program = compile_program(rule)
        view = view_of("p(a).")
        (first,) = program.substitutions(view)
        (second,) = program.substitutions(view)
        assert first is second


class TestFireableUpdates:
    def test_head_grounded_from_slots(self):
        rule = parse_rule("edge(X, Y) -> +reach(Y).")
        program = compile_program(rule)
        heads = sorted(
            str(u) for u in program.fireable_updates(view_of("edge(a, b). edge(c, d)."))
        )
        assert heads == ["+reach(b)", "+reach(d)"]

    def test_deduplicates_identical_heads(self):
        rule = parse_rule("edge(X, Y) -> +reach(Y).")
        program = compile_program(rule)
        heads = [
            str(u)
            for u in program.fireable_updates(view_of("edge(a, b). edge(c, b)."))
        ]
        assert heads == ["+reach(b)"]

    def test_ground_head_yields_once(self):
        rule = parse_rule("p(X) -> +q(b).")
        program = compile_program(rule)
        heads = [str(u) for u in program.fireable_updates(view_of("p(a). p(c)."))]
        assert heads == ["+q(b)"]

    def test_head_updates_interned_across_calls(self):
        rule = parse_rule("edge(X, Y) -> +reach(Y).")
        program = compile_program(rule)
        view = view_of("edge(a, b).")
        (first,) = program.fireable_updates(view)
        (second,) = program.fireable_updates(view)
        assert first is second


class TestIndexHandshake:
    def test_composite_signatures_registered_on_database(self):
        # r(X, Y, Z) probed with X and Y bound — a 2-of-3 composite
        # signature the compiler must hand to the storage layer.
        rule = parse_rule("p(X, Y), r(X, Y, Z) -> +s(Z).")
        database = Database.from_text(
            "p(a, b). r(a, b, c1). r(a, b, c2). r(a, x, c3)."
        )
        view = DatabaseView(database)
        program = compile_program(rule)
        found = sorted(program.substitutions(view), key=str)
        assert len(found) == 2
        relation = database.relation("r")
        assert any(len(cols) == 2 for cols in relation._registered)

    def test_matches_once(self):
        rule = parse_rule("p(X), q(X) -> +r(X).")
        program = compile_program(rule)
        assert program.matches_once(view_of("p(a). q(a)."))
        assert not program.matches_once(view_of("p(a). q(b)."))
