"""Tests for the brute-force grounding utilities."""

from repro.engine.grounder import (
    ground_instances,
    ground_program,
    ground_substitutions,
    herbrand_base,
    herbrand_universe,
)
from repro.lang import parse_program, parse_rule
from repro.lang.atoms import atom
from repro.storage.database import Database


class TestHerbrand:
    def test_universe_joins_program_and_database(self):
        program = parse_program("p(a) -> +q(b).")
        database = Database.from_text("p(c).")
        universe = herbrand_universe(program, database)
        assert {c.value for c in universe} == {"a", "b", "c"}

    def test_universe_sorted_deterministic(self):
        program = parse_program("p(z), p(y) -> +q(z).")
        database = Database.from_text("p(a).")
        values = [c.value for c in herbrand_universe(program, database)]
        assert values == sorted(values, key=str)

    def test_base_covers_all_signatures(self):
        program = parse_program("p(X) -> +q(X).")
        database = Database.from_text("p(a). p(b).")
        base = herbrand_base(program, database)
        # p/1 and q/1 over {a, b} -> 4 atoms
        assert base == {
            atom("p", "a"), atom("p", "b"), atom("q", "a"), atom("q", "b"),
        }

    def test_base_includes_zero_ary(self):
        program = parse_program("p -> +q.")
        base = herbrand_base(program, Database())
        assert base == {atom("p"), atom("q")}


class TestGrounding:
    def test_ground_substitutions_count(self):
        from repro.lang.terms import Constant

        rule = parse_rule("p(X), s(Y) -> +q(X, Y).")
        subs = list(ground_substitutions(rule, [Constant("a"), Constant("b")]))
        assert len(subs) == 4  # 2 constants ^ 2 variables

    def test_rule_without_variables(self):
        rule = parse_rule("p -> +q.")
        subs = list(ground_substitutions(rule, []))
        assert len(subs) == 1
        assert len(subs[0]) == 0

    def test_ground_instances_are_ground(self):
        rule = parse_rule("p(X) -> +q(X).")
        program = parse_program("p(X) -> +q(X).")
        database = Database.from_text("p(a). p(b).")
        for _, _, ground_rule in ground_program(program, database):
            assert ground_rule.head.is_ground()
            assert all(l.is_ground() for l in ground_rule.body)

    def test_ground_program_size(self):
        program = parse_program("p(X), p(Y) -> +q(X, Y).")
        database = Database.from_text("p(a). p(b). p(c).")
        triples = ground_program(program, database)
        assert len(triples) == 9
