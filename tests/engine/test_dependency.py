"""Tests for the dependency graph, SCCs, stratification, classification."""

import pytest

from repro.engine.dependency import DependencyGraph, classify_program
from repro.errors import EngineError
from repro.lang import parse_program


def graph(text):
    return DependencyGraph(parse_program(text))


class TestGraphStructure:
    def test_edges_and_nodes(self):
        g = graph("p(X), not r(X) -> +q(X).")
        assert g.nodes == {"p", "q", "r"}
        assert g.predecessors("q") == ["p", "r"]
        assert g.successors("p") == ["q"]
        negatives = g.negative_edges()
        assert {(e.source, e.target) for e in negatives} == {("r", "q")}

    def test_event_edges_flagged(self):
        g = graph("+p(X) -> +q(X).")
        (edge,) = g.edges
        assert edge.through_event

    def test_deletion_head_still_an_edge(self):
        g = graph("p(X) -> -q(X).")
        assert g.successors("p") == ["q"]


class TestSccs:
    def test_acyclic_singletons(self):
        g = graph("p -> +q. q -> +r.")
        components = g.sccs()
        assert all(len(c) == 1 for c in components)
        assert len(components) == 3

    def test_cycle_detected(self):
        g = graph("p -> +q. q -> +p.")
        components = [c for c in g.sccs() if len(c) > 1]
        assert components == [frozenset({"p", "q"})]

    def test_reverse_topological_order(self):
        g = graph("a0 -> +b0. b0 -> +c0.")
        components = g.sccs()
        # Tarjan emits a node's dependants (deeper in the DFS) before it:
        # with edges a0 -> b0 -> c0, c0 is finished first.
        assert components.index(frozenset({"c0"})) < components.index(
            frozenset({"a0"})
        )

    def test_self_loop_recursive(self):
        g = graph("tc(X, Z), e(Z, Y) -> +tc(X, Y).")
        assert "tc" in g.recursive_predicates()
        assert "e" not in g.recursive_predicates()


class TestStratification:
    def test_simple_strata(self):
        g = graph("""
        edge(Y, X) -> +reached(X).
        node(X), not reached(X) -> +isolated(X).
        """)
        strata = g.stratification()
        level = {p: i for i, s in enumerate(strata) for p in s}
        assert level["reached"] < level["isolated"]

    def test_positive_recursion_fine(self):
        g = graph("e(X, Y) -> +tc(X, Y). tc(X, Z), e(Z, Y) -> +tc(X, Y).")
        assert g.is_stratifiable()

    def test_negation_in_cycle_rejected(self):
        g = graph("not q0 -> +p0. not p0 -> +q0.")
        assert not g.is_stratifiable()
        with pytest.raises(EngineError, match="not stratifiable"):
            g.stratification()

    def test_self_negation_rejected(self):
        g = graph("p(X), not q(X) -> +q(X).")
        assert not g.is_stratifiable()

    def test_long_negative_chain_levels(self):
        g = graph("""
        not a0 -> +b0.
        not b0 -> +c0.
        not c0 -> +d0.
        """)
        strata = g.stratification()
        level = {p: i for i, s in enumerate(strata) for p in s}
        assert level["a0"] < level["b0"] < level["c0"] < level["d0"]


class TestClassification:
    def test_positive_program(self):
        c = classify_program(parse_program("e(X, Y) -> +tc(X, Y)."))
        assert c.positive
        assert c.deductive
        assert not c.recursive

    def test_recursive_flag(self):
        c = classify_program(
            parse_program("e(X, Y) -> +tc(X, Y). tc(X, Z), e(Z, Y) -> +tc(X, Y).")
        )
        assert c.recursive

    def test_semipositive(self):
        c = classify_program(parse_program("p(X), not edb(X) -> +q(X)."))
        assert c.semipositive
        negated_idb = classify_program(
            parse_program("p(X) -> +q(X). p(X), not q(X) -> +r(X).")
        )
        assert not negated_idb.semipositive

    def test_active_features(self):
        c = classify_program(parse_program("+p(X) -> -q(X)."))
        assert c.uses_events
        assert c.uses_deletion
        assert not c.deductive


class TestEdgeWitnesses:
    """Satellite: edges carry witnessing rules and (optionally) spans."""

    def test_witnesses_merged_per_structural_edge(self):
        g = graph("p(X) -> +q(X). p(X), r(X) -> +q(X).")
        (edge,) = [e for e in g.edges if e.source == "p"]
        assert edge.rules == (0, 1)
        assert g.witnesses("p", "q") == [0, 1]
        assert g.witnesses("r", "q") == [1]
        assert g.witnesses("q", "p") == []

    def test_polarity_splits_edges_but_witnesses_union(self):
        g = graph("p(X), q(X) -> +s(X). p(X), not q(X) -> +t(X).")
        kinds = {(e.target, e.negative) for e in g.edges if e.source == "q"}
        assert kinds == {("s", False), ("t", True)}
        assert g.witnesses("q", "s") == [0]
        assert g.witnesses("q", "t") == [1]

    def test_spans_attached_from_source_map(self):
        from repro.lang import parse_source

        parsed = parse_source("p(X) -> +q(X).\nr(X), p(X) -> +s(X).\n")
        g = DependencyGraph(parsed.rules, spans=parsed.spans)
        (edge,) = [e for e in g.edges if e.source == "r"]
        assert edge.span.line == 2
        assert edge.span.column == 1
        (edge,) = [e for e in g.edges if e.source == "p" and e.target == "s"]
        assert edge.span.column == len("r(X), ") + 1

    def test_spans_default_to_none(self):
        g = graph("p(X) -> +q(X).")
        (edge,) = g.edges
        assert edge.span is None

    def test_negative_cycle_edges(self):
        g = graph("p(X), not q(X) -> +q(X). p(X), not s(X) -> +t(X).")
        (edge,) = g.negative_cycle_edges()
        assert (edge.source, edge.target) == ("q", "q")
        assert edge.negative
        stratifiable = graph("p(X), not s(X) -> +t(X).")
        assert stratifiable.negative_cycle_edges() == []
