"""Tests for the body-matching engine."""

import pytest

from repro.engine.match import (
    clear_compile_cache,
    compile_rule,
    fireable_heads,
    match_body_once,
    match_rule,
)
from repro.engine.views import DatabaseView
from repro.lang import parse_rule, substitution
from repro.lang.atoms import atom
from repro.storage.database import Database


def matches(rule_text, facts_text):
    rule = parse_rule(rule_text)
    view = DatabaseView(Database.from_text(facts_text))
    return sorted(match_rule(rule, view), key=str)


class TestPositiveMatching:
    def test_single_literal(self):
        found = matches("p(X) -> +q(X).", "p(a). p(b).")
        assert found == [substitution(X="a"), substitution(X="b")]

    def test_join_two_literals(self):
        found = matches("edge(X, Y), edge(Y, Z) -> +path(X, Z).",
                        "edge(a, b). edge(b, c).")
        assert found == [substitution(X="a", Y="b", Z="c")]

    def test_constants_in_pattern(self):
        found = matches("edge(a, Y) -> +q(Y).", "edge(a, b). edge(c, d).")
        assert found == [substitution(Y="b")]

    def test_repeated_variable(self):
        found = matches("edge(X, X) -> +loop(X).", "edge(a, a). edge(a, b).")
        assert found == [substitution(X="a")]

    def test_propositional(self):
        assert matches("p -> +q.", "p.") == [substitution()]
        assert matches("p -> +q.", "r.") == []

    def test_bodyless_rule_matches_once(self):
        assert matches("-> +q(b).", "") == [substitution()]

    def test_no_match(self):
        assert matches("p(X), r(X) -> +q(X).", "p(a).") == []

    def test_cross_product(self):
        found = matches("p(X), s(Y) -> +q(X, Y).", "p(a). p(b). s(c).")
        assert len(found) == 2


class TestNegation:
    def test_negation_filters(self):
        found = matches("p(X), not blocked(X) -> +q(X).",
                        "p(a). p(b). blocked(b).")
        assert found == [substitution(X="a")]

    def test_negation_over_missing_predicate(self):
        found = matches("p(X), not blocked(X) -> +q(X).", "p(a).")
        assert found == [substitution(X="a")]

    def test_ground_negation(self):
        assert matches("p(X), not stop -> +q(X).", "p(a). stop.") == []


class TestHelpers:
    def test_match_body_once(self):
        rule = parse_rule("p(X) -> +q(X).")
        assert match_body_once(rule, DatabaseView(Database.from_text("p(a).")))
        assert not match_body_once(rule, DatabaseView(Database.from_text("r(a).")))

    def test_fireable_heads_dedup(self):
        # Two bindings of Y produce the same head q(a).
        rule = parse_rule("p(X), s(X, Y) -> +q(X).")
        view = DatabaseView(Database.from_text("p(a). s(a, u). s(a, v)."))
        heads = list(fireable_heads(rule, view))
        assert [str(h) for h in heads] == ["+q(a)"]

    def test_unfrozen_matching(self):
        rule = parse_rule("p(X) -> +q(X).")
        view = DatabaseView(Database.from_text("p(a)."))
        raw = list(match_rule(rule, view, freeze=False))
        assert len(raw) == 1
        assert isinstance(raw[0], dict)

    def test_compile_cache(self):
        clear_compile_cache()
        rule = parse_rule("p(X) -> +q(X).")
        compiled1 = compile_rule(rule)
        compiled2 = compile_rule(rule)
        assert compiled1 is compiled2
        clear_compile_cache()
        assert compile_rule(rule) is not compiled1

    def test_substitutions_cover_all_rule_variables(self):
        rule = parse_rule("p(X), s(X, Y) -> +q(X).")
        view = DatabaseView(Database.from_text("p(a). s(a, b)."))
        (sub,) = match_rule(rule, view)
        assert set(v.name for v in sub) == {"X", "Y"}
