"""Tests for fact views (closed-world adapters)."""

from repro.engine.views import AtomSetView, DatabaseView
from repro.lang.atoms import atom
from repro.lang.updates import UpdateOp
from repro.storage.database import Database


class TestDatabaseView:
    def setup_method(self):
        self.view = DatabaseView(Database.from_text("edge(a, b). edge(a, c). p."))

    def test_condition_holds(self):
        assert self.view.condition_holds(atom("edge", "a", "b"))
        assert not self.view.condition_holds(atom("edge", "b", "a"))

    def test_negation_is_absence(self):
        assert self.view.negation_holds(atom("edge", "b", "a"))
        assert not self.view.negation_holds(atom("edge", "a", "b"))

    def test_candidates_filtered(self):
        rows = set(self.view.condition_candidates("edge", 2, {0: "a"}))
        assert rows == {("a", "b"), ("a", "c")}

    def test_candidates_unknown_predicate(self):
        assert list(self.view.condition_candidates("zzz", 1, {})) == []

    def test_candidates_wrong_arity(self):
        assert list(self.view.condition_candidates("edge", 3, {})) == []

    def test_events_never_hold(self):
        assert not self.view.event_holds(UpdateOp.INSERT, atom("edge", "a", "b"))
        assert list(self.view.event_candidates(UpdateOp.DELETE, "edge", 2, {})) == []

    def test_estimate(self):
        assert self.view.estimate("edge") == 2
        assert self.view.estimate("zzz") == 0


class TestAtomSetView:
    def setup_method(self):
        self.view = AtomSetView({atom("edge", "a", "b"), atom("edge", "c", "b"), atom("p")})

    def test_condition_holds(self):
        assert self.view.condition_holds(atom("p"))
        assert not self.view.condition_holds(atom("q"))

    def test_negation(self):
        assert self.view.negation_holds(atom("q"))

    def test_candidates(self):
        rows = set(self.view.condition_candidates("edge", 2, {1: "b"}))
        assert rows == {("a", "b"), ("c", "b")}

    def test_candidates_no_bound(self):
        assert len(list(self.view.condition_candidates("edge", 2, {}))) == 2

    def test_events_never_hold(self):
        assert not self.view.event_holds(UpdateOp.INSERT, atom("p"))

    def test_estimate(self):
        assert self.view.estimate("edge") == 2
