"""Unit tests for the parallel Γ executor.

The property suite (``tests/property/test_parallel.py``) establishes
parallel/sequential bit-identity on random programs; here the executor's
moving parts are pinned down directly: the wire codecs (no lang object
ever crosses the pipe with a cached hash), the shard plan, the decline
conditions, the delta-response merge bookkeeping, and a deterministic
engine matrix over the scenarios the random generator reaches rarely —
conflicts with restarts, negation, events, transaction updates, and a
program listing the same rule twice.
"""

import pytest

from repro.core.engine import ParkEngine
from repro.engine.match import (
    clear_compile_cache,
    get_matcher_backend,
    set_matcher_backend,
)
from repro.engine.parallel import (
    ParallelExecutor,
    _decode_database,
    _decode_mark,
    _decode_rule,
    _encode_database,
    _encode_mark,
    _encode_rule,
    _sorted_binding_variables,
)
from repro.engine.planner import shard_plan
from repro.lang import parse_program, parse_atom
from repro.lang.updates import Update, UpdateOp
from repro.storage.database import Database
from repro.storage.relation import (
    get_storage_backend,
    set_storage_backend,
)

STRATEGIES = ("naive", "seminaive", "incremental")
BACKENDS = ("interpreted", "compiled")


def _run(program, database, updates=(), parallel=0, strategy="naive"):
    engine = ParkEngine(evaluation=strategy, parallel=parallel)
    result = engine.run(program, database, updates=updates)
    return (
        result.atoms,
        result.blocked,
        result.delta.inserts,
        result.delta.deletes,
        result.stats.rounds,
        result.stats.restarts,
        result.stats.conflicts_resolved,
        result.stats.firings_total,
    )


SCENARIOS = {
    "recursion": (
        "edge(X, Y) -> +tc(X, Y). tc(X, Z), edge(Z, Y) -> +tc(X, Y).",
        "edge(a, b). edge(b, c). edge(c, d). edge(d, a).",
        (),
    ),
    "negation": (
        "emp(X), not active(X) -> -emp(X). emp(X), active(X) -> +keep(X).",
        "emp(a). emp(b). emp(c). active(b).",
        (),
    ),
    "conflict-restart": (
        "p(X) -> +q(X). q(X) -> -q(X).",
        "p(a). p(b).",
        (),
    ),
    "events": (
        "+q(X) -> +seen(X). p(X) -> +q(X).",
        "p(a). p(b).",
        (),
    ),
    "updates": (
        "emp(X), not active(X) -> -emp(X).",
        "emp(a). emp(b). active(a). active(b).",
        ("-active(a)",),
    ),
    "duplicate-rule": (
        "p(X) -> +q(X). p(X) -> +q(X).",
        "p(a). p(b). p(c).",
        (),
    ),
}


def _updates(specs):
    out = []
    for spec in specs:
        op = UpdateOp.INSERT if spec[0] == "+" else UpdateOp.DELETE
        out.append(Update(op, parse_atom(spec[1:])))
    return tuple(out)


class TestEngineMatrix:
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_parallel_matches_sequential(self, scenario, strategy, backend):
        rules, facts, update_specs = SCENARIOS[scenario]
        program = parse_program(rules)
        updates = _updates(update_specs)
        previous = get_matcher_backend()
        set_matcher_backend(backend)
        clear_compile_cache()
        try:
            sequential = _run(
                program, Database.from_text(facts), updates, 0, strategy
            )
            for workers in (2, 3):
                parallel = _run(
                    program,
                    Database.from_text(facts),
                    updates,
                    workers,
                    strategy,
                )
                assert parallel == sequential, (scenario, strategy, workers)
        finally:
            set_matcher_backend(previous)
            clear_compile_cache()

    def test_row_layout_matches_too(self):
        rules, facts, _ = SCENARIOS["recursion"]
        program = parse_program(rules)
        previous = get_storage_backend()
        set_storage_backend("row")
        try:
            sequential = _run(program, Database.from_text(facts))
            parallel = _run(program, Database.from_text(facts), parallel=2)
            assert parallel == sequential
        finally:
            set_storage_backend(previous)


class TestCodecs:
    def test_rule_roundtrip(self):
        program = parse_program(
            "@name(r) @priority(3) emp(X), not gone(X), +hired(X) -> +active(X)."
        )
        rule = next(iter(program))
        decoded = _decode_rule(_encode_rule(rule))
        assert decoded == rule
        assert decoded.name == rule.name
        assert decoded.priority == rule.priority
        assert _sorted_binding_variables(decoded) == _sorted_binding_variables(
            rule
        )

    def test_database_roundtrip_is_sorted(self):
        database = Database.from_text("b(2). a(x, y). b(1). a(p, q).")
        payload = _encode_database(database)
        assert [predicate for predicate, _ in payload] == sorted(
            predicate for predicate, _ in payload
        )
        for _, rows in payload:
            assert rows == sorted(rows, key=repr)
        decoded = _decode_database(payload)
        assert set(decoded.atoms()) == set(database.atoms())

    def test_mark_roundtrip(self):
        update = Update(UpdateOp.DELETE, parse_atom("payroll(joe, 10)"))
        assert _decode_mark(_encode_mark(update)) == update


class TestExecutorLifecycle:
    def test_declines_below_two_workers(self):
        program = tuple(parse_program("p(X) -> +q(X)."))
        executor = ParallelExecutor(1)
        assert not executor.begin_run(program, Database.from_text("p(a)."))

    def test_declines_empty_program(self):
        executor = ParallelExecutor(2)
        assert not executor.begin_run((), Database.from_text("p(a)."))

    def test_declines_below_threshold(self):
        program = tuple(parse_program("p(X) -> +q(X)."))
        executor = ParallelExecutor(2, threshold=1000)
        assert not executor.begin_run(program, Database.from_text("p(a)."))

    def test_close_is_idempotent(self):
        program = tuple(parse_program("p(X) -> +q(X)."))
        executor = ParallelExecutor(2)
        assert executor.begin_run(program, Database.from_text("p(a)."))
        executor.close()
        executor.close()
        assert not executor._procs

    def test_collect_declines_unknown_rule(self):
        program = tuple(parse_program("p(X) -> +q(X)."))
        stranger = next(iter(parse_program("z(X) -> +w(X).")))
        executor = ParallelExecutor(2)
        assert executor.begin_run(program, Database.from_text("p(a)."))
        try:
            executor.begin_epoch()
            assert (
                executor.collect_all((stranger,), frozenset(), None, {})
                is None
            )
        finally:
            executor.close()


class TestShardPlan:
    def test_all_rules_scheduled_once(self):
        rules = tuple(parse_program("p(X) -> +a(X). p(X) -> +b(X). p(X) -> +c(X)."))
        plan = shard_plan(rules, None, 4)
        scheduled = [index for batch in plan.batches for index in batch]
        assert sorted(scheduled) == [0, 1, 2]
        assert plan.nshards == 4
        assert plan.rule_count == 3

    def test_groups_shape_batches(self):
        rules = tuple(parse_program("p(X) -> +a(X). p(X) -> +b(X). p(X) -> +c(X)."))
        groups = ((rules[0], rules[2]),)
        plan = shard_plan(rules, groups, 2)
        scheduled = [index for batch in plan.batches for index in batch]
        assert sorted(scheduled) == [0, 1, 2]
        assert (0, 2) in plan.batches
