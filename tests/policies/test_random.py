"""Tests for seeded random conflict resolution."""

import random

import pytest

from repro.core.engine import park
from repro.policies.base import Decision
from repro.policies.random_choice import RandomPolicy

LADDER = """
@name(i0) p -> +a0. @name(d0) p -> -a0.
@name(i1) p -> +a1. @name(d1) p -> -a1.
@name(i2) p -> +a2. @name(d2) p -> -a2.
@name(i3) p -> +a3. @name(d3) p -> -a3.
"""


class TestDeterminism:
    def test_same_seed_same_run(self):
        first = park(LADDER, "p.", policy=RandomPolicy(seed=13))
        second = park(LADDER, "p.", policy=RandomPolicy(seed=13))
        assert first.atoms == second.atoms
        assert first.blocked == second.blocked

    def test_different_seeds_eventually_differ(self):
        outcomes = {
            park(LADDER, "p.", policy=RandomPolicy(seed=s)).atoms
            for s in range(12)
        }
        assert len(outcomes) > 1

    def test_shared_rng_instance(self, simple_conflict):
        rng = random.Random(5)
        policy = RandomPolicy(seed=rng)
        expected = [
            Decision.INSERT if random.Random(5).random() < 0.5 else Decision.DELETE
        ][0]
        assert policy.select(simple_conflict) is expected


class TestBias:
    def test_bias_one_always_inserts(self, simple_conflict):
        policy = RandomPolicy(seed=0, insert_bias=1.0)
        assert all(
            policy.select(simple_conflict) is Decision.INSERT for _ in range(20)
        )

    def test_bias_zero_always_deletes(self, simple_conflict):
        policy = RandomPolicy(seed=0, insert_bias=0.0)
        assert all(
            policy.select(simple_conflict) is Decision.DELETE for _ in range(20)
        )

    def test_bias_bounds_checked(self):
        with pytest.raises(ValueError):
            RandomPolicy(insert_bias=1.5)
