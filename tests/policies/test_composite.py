"""Tests for policy combinators."""

import pytest

from tests.policies.conftest import make_context

from repro.core.engine import park
from repro.errors import PolicyError
from repro.lang import parse_atom
from repro.lang.updates import delete, insert
from repro.policies.base import Decision, SelectPolicy
from repro.policies.composite import (
    ConstantPolicy,
    FirstDecisivePolicy,
    PerPredicatePolicy,
    TransactionWinsPolicy,
)


class TestConstant:
    def test_always_same(self, simple_conflict, present_conflict):
        policy = ConstantPolicy(Decision.INSERT)
        assert policy.select(simple_conflict) is Decision.INSERT
        assert policy.select(present_conflict) is Decision.INSERT

    def test_accepts_strings(self, simple_conflict):
        assert ConstantPolicy("delete").select(simple_conflict) is Decision.DELETE

    def test_name(self):
        assert ConstantPolicy(Decision.INSERT).name == "always-insert"


class TestFirstDecisive:
    class NoOpinion(SelectPolicy):
        name = "shrug"

        def select(self, context):
            return None

    def test_falls_through_to_decisive(self, simple_conflict):
        chain = FirstDecisivePolicy(
            [self.NoOpinion(), ConstantPolicy(Decision.INSERT)]
        )
        assert chain.select(simple_conflict) is Decision.INSERT

    def test_first_opinion_wins(self, simple_conflict):
        chain = FirstDecisivePolicy(
            [ConstantPolicy(Decision.DELETE), ConstantPolicy(Decision.INSERT)]
        )
        assert chain.select(simple_conflict) is Decision.DELETE

    def test_all_shrug_raises(self, simple_conflict):
        chain = FirstDecisivePolicy([self.NoOpinion()])
        with pytest.raises(PolicyError, match="no policy"):
            chain.select(simple_conflict)

    def test_empty_chain_rejected(self):
        with pytest.raises(PolicyError):
            FirstDecisivePolicy([])


class TestPerPredicate:
    def test_routing(self):
        ctx_a = make_context("@name(r1) p -> +a. @name(r2) p -> -a.", "p.")
        ctx_b = make_context("@name(r1) p -> +b. @name(r2) p -> -b.", "p.")
        policy = PerPredicatePolicy(
            {"a": ConstantPolicy(Decision.INSERT)},
            default=ConstantPolicy(Decision.DELETE),
        )
        assert policy.select(ctx_a) is Decision.INSERT
        assert policy.select(ctx_b) is Decision.DELETE

    def test_default_is_inertia(self, present_conflict):
        policy = PerPredicatePolicy({})
        assert policy.select(present_conflict) is Decision.INSERT

    def test_flexible_resolution_requirement(self):
        """The paper's Section 3 'vary from atom to atom' requirement."""
        program = """
        @name(i1) p -> +alarm. @name(d1) p -> -alarm.
        @name(i2) p -> +hint.  @name(d2) p -> -hint.
        """
        policy = PerPredicatePolicy({"alarm": ConstantPolicy(Decision.INSERT)},
                                    default=ConstantPolicy(Decision.DELETE))
        result = park(program, "p.", policy=policy)
        assert parse_atom("alarm") in result
        assert parse_atom("hint") not in result


class TestTransactionWins:
    def test_transaction_update_beats_rule(self):
        # Rule deletes q; the transaction inserts it.  With inertia q would
        # vanish (q ∉ D); TransactionWins keeps the user's insert.
        program = "@name(r1) p -> -q."
        updates = [insert(parse_atom("q"))]
        inertia_result = park(program, "p.", updates=updates)
        assert parse_atom("q") not in inertia_result

        tx_result = park(
            program, "p.", updates=updates, policy=TransactionWinsPolicy()
        )
        assert parse_atom("q") in tx_result

    def test_two_transaction_updates_fall_back(self):
        # +q and -q both from the transaction: no side is "the" tx side.
        result = park(
            "", "q.", updates=[insert(parse_atom("q")), delete(parse_atom("q"))],
            policy=TransactionWinsPolicy(),
        )
        # fallback inertia: q ∈ D -> stays.
        assert parse_atom("q") in result

    def test_delete_side_transaction(self):
        program = "@name(r1) p -> +q."
        result = park(
            program, "p. q.", updates=[delete(parse_atom("q"))],
            policy=TransactionWinsPolicy(),
        )
        assert parse_atom("q") not in result
