"""Tests for the Section 5 example critics (recency, source reliability)."""

import pytest

from tests.policies.conftest import make_context

from repro.core.engine import park
from repro.lang.atoms import atom
from repro.policies.base import Decision
from repro.policies.composite import ConstantPolicy
from repro.policies.critics import RecencyCritic, SourceReliabilityCritic
from repro.policies.voting import VotingPolicy

CONFLICT = "@name(r1) p -> +a. @name(r2) p -> -a."


class TestRecencyCritic:
    def test_recent_atom_kept(self, simple_conflict):
        critic = RecencyCritic({atom("a"): 100}, horizon=50)
        assert critic.select(simple_conflict) is Decision.INSERT

    def test_old_atom_dropped(self, simple_conflict):
        critic = RecencyCritic({atom("a"): 10}, horizon=50)
        assert critic.select(simple_conflict) is Decision.DELETE

    def test_boundary_is_inclusive(self, simple_conflict):
        critic = RecencyCritic({atom("a"): 50}, horizon=50)
        assert critic.select(simple_conflict) is Decision.INSERT

    def test_unknown_atom_falls_back(self, simple_conflict, present_conflict):
        critic = RecencyCritic({}, horizon=0)
        assert critic.select(simple_conflict) is Decision.DELETE   # inertia, a∉D
        assert critic.select(present_conflict) is Decision.INSERT  # inertia, a∈D

    def test_observe_updates_table(self, simple_conflict):
        critic = RecencyCritic({}, horizon=5, fallback=ConstantPolicy("delete"))
        critic.observe(atom("a"), 9)
        assert critic.select(simple_conflict) is Decision.INSERT

    def test_end_to_end(self):
        result = park(CONFLICT, "p.", policy=RecencyCritic({atom("a"): 99}, horizon=1))
        assert atom("a") in result


class TestSourceReliabilityCritic:
    def _critic(self, r1_source="vendor", r2_source="intern", **kwargs):
        return SourceReliabilityCritic(
            source_of={"r1": r1_source, "r2": r2_source},
            reliability={"vendor": 0.9, "intern": 0.2},
            **kwargs,
        )

    def test_reliable_source_wins_insert(self, simple_conflict):
        assert self._critic().select(simple_conflict) is Decision.INSERT

    def test_reliable_source_wins_delete(self, simple_conflict):
        critic = self._critic(r1_source="intern", r2_source="vendor")
        assert critic.select(simple_conflict) is Decision.DELETE

    def test_unknown_rule_gets_default(self, simple_conflict):
        critic = SourceReliabilityCritic(
            source_of={"r2": "vendor"},
            reliability={"vendor": 0.9},
            default_reliability=0.1,
        )
        assert critic.select(simple_conflict) is Decision.DELETE

    def test_tie_falls_back(self, simple_conflict):
        critic = SourceReliabilityCritic(
            source_of={"r1": "s", "r2": "s"}, reliability={"s": 0.5}
        )
        assert critic.select(simple_conflict) is Decision.DELETE  # inertia

    def test_best_instance_scores_the_side(self):
        ctx = make_context(
            """
            @name(weak) p -> +a.
            @name(strong) s -> +a.
            @name(mid) p -> -a.
            """,
            "p. s.",
        )
        critic = SourceReliabilityCritic(
            source_of={"weak": "w", "strong": "st", "mid": "m"},
            reliability={"w": 0.1, "st": 0.9, "m": 0.5},
        )
        assert critic.select(ctx) is Decision.INSERT


class TestCriticsInVotingPanel:
    def test_paper_composition(self, simple_conflict):
        """The paper's scenario: a panel mixing differently-informed critics."""
        panel = VotingPolicy(
            [
                RecencyCritic({atom("a"): 99}, horizon=1),  # votes insert
                SourceReliabilityCritic(
                    source_of={"r1": "good", "r2": "bad"},
                    reliability={"good": 1.0, "bad": 0.0},
                ),  # votes insert
                ConstantPolicy("delete"),  # votes delete
            ]
        )
        assert panel.select(simple_conflict) is Decision.INSERT
