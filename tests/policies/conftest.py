"""Policy-test helpers: build conflicts and contexts without an engine run."""

from __future__ import annotations

import pytest

from repro.core.conflicts import find_conflicts
from repro.core.interpretation import IInterpretation
from repro.lang import parse_program
from repro.policies.base import ConflictContext
from repro.storage.database import Database


def make_context(program_text, facts_text, conflict_index=0, **extras):
    """Parse, detect conflicts one step ahead, wrap the chosen one."""
    program = parse_program(program_text)
    database = Database.from_text(facts_text)
    interpretation = IInterpretation.from_database(database)
    conflicts = find_conflicts(program, interpretation)
    assert conflicts, "scenario produced no conflicts"
    return ConflictContext(
        database=database,
        program=program,
        interpretation=interpretation,
        conflict=conflicts[conflict_index],
        **extras,
    )


@pytest.fixture
def simple_conflict():
    """One +a / -a conflict, a ∉ D."""
    return make_context("@name(r1) p -> +a. @name(r2) p -> -a.", "p.")


@pytest.fixture
def present_conflict():
    """One +a / -a conflict, a ∈ D."""
    return make_context("@name(r1) p -> +a. @name(r2) p -> -a.", "p. a.")
