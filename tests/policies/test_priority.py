"""Tests for rule-priority conflict resolution."""

from tests.policies.conftest import make_context

from repro.core.engine import park
from repro.lang import parse_database
from repro.policies.base import Decision
from repro.policies.composite import ConstantPolicy
from repro.policies.priority import PriorityPolicy


class TestSelect:
    def test_higher_insert_priority_wins(self):
        ctx = make_context(
            "@name(r1) @priority(5) p -> +a. @name(r2) @priority(1) p -> -a.", "p."
        )
        assert PriorityPolicy().select(ctx) is Decision.INSERT

    def test_higher_delete_priority_wins(self):
        ctx = make_context(
            "@name(r1) @priority(1) p -> +a. @name(r2) @priority(5) p -> -a.", "p."
        )
        assert PriorityPolicy().select(ctx) is Decision.DELETE

    def test_side_max_decides(self):
        # ins side has rules at priority 1 and 9 -> side priority is 9.
        ctx = make_context(
            """
            @name(lo) @priority(1) p -> +a.
            @name(hi) @priority(9) s -> +a.
            @name(del) @priority(5) p -> -a.
            """,
            "p. s.",
        )
        assert PriorityPolicy().select(ctx) is Decision.INSERT

    def test_missing_priority_uses_default(self):
        ctx = make_context("@name(r1) p -> +a. @name(r2) @priority(1) p -> -a.", "p.")
        assert PriorityPolicy(default_priority=0).select(ctx) is Decision.DELETE
        assert PriorityPolicy(default_priority=10).select(ctx) is Decision.INSERT

    def test_tie_falls_to_tie_breaker(self):
        ctx = make_context(
            "@name(r1) @priority(3) p -> +a. @name(r2) @priority(3) p -> -a.", "p."
        )
        assert PriorityPolicy().select(ctx) is Decision.DELETE  # inertia: a ∉ D
        forced = PriorityPolicy(tie_breaker=ConstantPolicy(Decision.INSERT))
        assert forced.select(ctx) is Decision.INSERT


class TestPaperSection5:
    def test_priority_run(self, sec5):
        program, database = sec5
        result = park(program, database, policy=PriorityPolicy())
        assert result.atoms == frozenset(parse_database("p. a. b. q."))
        assert result.blocked_rules() == ["r2", "r4"]

    def test_differs_from_inertia_on_same_input(self, sec5):
        program, database = sec5
        inertia_result = park(program, database)
        priority_result = park(program, database, policy=PriorityPolicy())
        assert inertia_result.atoms != priority_result.atoms
