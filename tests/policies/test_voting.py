"""Tests for the voting scheme."""

import pytest

from repro.errors import PolicyError
from repro.policies.base import Decision
from repro.policies.composite import ConstantPolicy
from repro.policies.inertia import InertiaPolicy
from repro.policies.voting import VotingPolicy

INSERT = ConstantPolicy(Decision.INSERT)
DELETE = ConstantPolicy(Decision.DELETE)


class TestMajority:
    def test_unanimous(self, simple_conflict):
        panel = VotingPolicy([INSERT, INSERT, INSERT])
        assert panel.select(simple_conflict) is Decision.INSERT

    def test_majority_wins(self, simple_conflict):
        panel = VotingPolicy([INSERT, DELETE, DELETE])
        assert panel.select(simple_conflict) is Decision.DELETE

    def test_tally(self, simple_conflict):
        panel = VotingPolicy([INSERT, DELETE, INSERT])
        assert panel.tally(simple_conflict) == (2, 1)

    def test_tie_uses_tie_breaker(self, simple_conflict):
        panel = VotingPolicy([INSERT, DELETE])
        # default tie breaker: inertia; a ∉ D -> delete
        assert panel.select(simple_conflict) is Decision.DELETE
        forced = VotingPolicy([INSERT, DELETE], tie_breaker=INSERT)
        assert forced.select(simple_conflict) is Decision.INSERT

    def test_policies_can_be_critics(self, present_conflict):
        panel = VotingPolicy([InertiaPolicy(), DELETE, InertiaPolicy()])
        # two inertia critics see a ∈ D -> insert twice, one delete.
        assert panel.select(present_conflict) is Decision.INSERT

    def test_callable_critics(self, simple_conflict):
        panel = VotingPolicy([lambda ctx: "insert"])
        assert panel.select(simple_conflict) is Decision.INSERT


class TestValidation:
    def test_empty_panel_rejected(self):
        with pytest.raises(PolicyError):
            VotingPolicy([])

    def test_bad_vote_rejected(self, simple_conflict):
        panel = VotingPolicy([lambda ctx: 42])
        with pytest.raises(PolicyError):
            panel.select(simple_conflict)
