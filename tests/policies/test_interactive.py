"""Tests for interactive and scripted conflict resolution."""

import pytest

from repro.core.engine import park
from repro.errors import PolicyError
from repro.lang import parse_database
from repro.policies.base import Decision
from repro.policies.composite import ConstantPolicy
from repro.policies.interactive import InteractivePolicy, ScriptedPolicy


class TestInteractive:
    def test_callback_answers(self, simple_conflict):
        policy = InteractivePolicy(lambda ctx: "insert")
        assert policy.select(simple_conflict) is Decision.INSERT

    def test_short_answers(self, simple_conflict):
        assert InteractivePolicy(lambda c: "d").select(simple_conflict) is Decision.DELETE
        assert InteractivePolicy(lambda c: "+").select(simple_conflict) is Decision.INSERT
        assert InteractivePolicy(lambda c: " DELETE ").select(simple_conflict) is Decision.DELETE

    def test_decision_objects_pass_through(self, simple_conflict):
        policy = InteractivePolicy(lambda ctx: Decision.INSERT)
        assert policy.select(simple_conflict) is Decision.INSERT

    def test_garbage_answer_raises(self, simple_conflict):
        policy = InteractivePolicy(lambda ctx: "whatever")
        with pytest.raises(PolicyError, match="unintelligible"):
            policy.select(simple_conflict)

    def test_callback_required(self):
        with pytest.raises(PolicyError):
            InteractivePolicy("not callable")

    def test_callback_sees_conflict(self, simple_conflict):
        seen = []
        InteractivePolicy(lambda ctx: seen.append(ctx.conflict.atom) or "i").select(
            simple_conflict
        )
        assert [str(a) for a in seen] == ["a"]


class TestScripted:
    def test_replays_in_order(self):
        # Section 5 program: two conflicts in sequence; answer insert, then
        # delete -> r4 blocked first, then r5... actually the scripted
        # answers drive which sides get blocked.
        program = """
        @name(r1) p -> +a.
        @name(r2) p -> +q.
        @name(r3) a -> +b.
        @name(r4) a -> -q.
        @name(r5) b -> +q.
        """
        result = park(program, "p.", policy=ScriptedPolicy(["insert"]))
        # first (and only) conflict answered insert -> r4 blocked, q stays.
        assert result.atoms == frozenset(parse_database("p. a. b. q."))
        assert result.blocked_rules() == ["r4"]

    def test_runs_dry_strict(self, simple_conflict):
        policy = ScriptedPolicy([])
        with pytest.raises(PolicyError, match="ran out"):
            policy.select(simple_conflict)

    def test_fallback_when_not_strict(self, simple_conflict):
        policy = ScriptedPolicy(
            [], strict=False, fallback=ConstantPolicy(Decision.INSERT)
        )
        assert policy.select(simple_conflict) is Decision.INSERT

    def test_remaining(self, simple_conflict):
        policy = ScriptedPolicy(["i", "d"])
        assert policy.remaining == 2
        policy.select(simple_conflict)
        assert policy.remaining == 1

    def test_bad_script_rejected_up_front(self):
        with pytest.raises(PolicyError):
            ScriptedPolicy(["sideways"])


class TestConsoleAsker:
    def test_prompts_and_parses(self, simple_conflict, monkeypatch, capsys):
        from repro.policies.interactive import console_asker

        answers = iter(["sideways", "i"])
        monkeypatch.setattr("builtins.input", lambda prompt="": next(answers))
        decision = console_asker(simple_conflict)
        assert decision is Decision.INSERT
        printed = capsys.readouterr().out
        assert "Conflict on atom: a" in printed
        assert "insert: r1" in printed
        assert "delete: r2" in printed
        assert "please answer" in printed  # re-prompt after bad input

    def test_delete_answer(self, simple_conflict, monkeypatch):
        from repro.policies.interactive import console_asker

        monkeypatch.setattr("builtins.input", lambda prompt="": "d")
        assert console_asker(simple_conflict) is Decision.DELETE
