"""Tests for the principle of inertia."""

from repro.core.engine import park
from repro.lang import parse_database
from repro.policies.base import Decision
from repro.policies.inertia import InertiaPolicy


class TestSelect:
    def test_absent_atom_deletes(self, simple_conflict):
        assert InertiaPolicy().select(simple_conflict) is Decision.DELETE

    def test_present_atom_inserts(self, present_conflict):
        assert InertiaPolicy().select(present_conflict) is Decision.INSERT

    def test_name(self):
        assert InertiaPolicy().name == "inertia"


class TestNetEffect:
    """Inertia's defining property: a conflicting atom keeps its D-status."""

    PROGRAM = "@name(r1) p -> +a. @name(r2) p -> -a."

    def test_absent_stays_absent(self):
        result = park(self.PROGRAM, "p.")
        assert result.atoms == frozenset(parse_database("p."))

    def test_present_stays_present(self):
        result = park(self.PROGRAM, "p. a.")
        assert result.atoms == frozenset(parse_database("p. a."))

    def test_enforced_across_rounds(self):
        # +a and -a derived in *different* rounds (paper P1) still cancel.
        result = park(
            "@name(r1) p -> +q. @name(r2) p -> -a. @name(r3) q -> +a.", "p."
        )
        assert result.atoms == frozenset(parse_database("p. q."))
