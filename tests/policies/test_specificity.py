"""Tests for specificity-based conflict resolution."""

from tests.policies.conftest import make_context

from repro.core.engine import park
from repro.lang import parse_database
from repro.policies.base import Decision
from repro.policies.composite import ConstantPolicy
from repro.policies.specificity import SpecificityPolicy, more_specific


class TestMoreSpecific:
    def _groundings(self, program_text, facts_text):
        ctx = make_context(program_text, facts_text)
        (ins,) = ctx.conflict.ins
        (dels,) = ctx.conflict.dels
        return ins, dels

    def test_superset_body_is_more_specific(self):
        ins, dels = self._groundings(
            """
            @name(general) bird(X) -> +flies(X).
            @name(specific) bird(X), penguin(X) -> -flies(X).
            """,
            "bird(tweety). penguin(tweety).",
        )
        assert more_specific(dels, ins)
        assert not more_specific(ins, dels)

    def test_equal_bodies_incomparable(self):
        ins, dels = self._groundings(
            "@name(r1) p(X) -> +a(X). @name(r2) p(X) -> -a(X).", "p(c)."
        )
        assert not more_specific(ins, dels)
        assert not more_specific(dels, ins)


class TestSelect:
    PENGUIN = """
    @name(general) bird(X) -> +flies(X).
    @name(specific) bird(X), penguin(X) -> -flies(X).
    """

    def test_paper_penguin_example(self):
        ctx = make_context(self.PENGUIN, "bird(tweety). penguin(tweety).")
        assert SpecificityPolicy().select(ctx) is Decision.DELETE

    def test_specific_insert_side(self):
        ctx = make_context(
            """
            @name(general) bird(X) -> -flies(X).
            @name(specific) bird(X), plane(X) -> +flies(X).
            """,
            "bird(jet). plane(jet).",
        )
        assert SpecificityPolicy().select(ctx) is Decision.INSERT

    def test_incomparable_falls_back(self):
        ctx = make_context(
            "@name(r1) p(X) -> +a(X). @name(r2) p(X) -> -a(X).", "p(c)."
        )
        assert SpecificityPolicy().select(ctx) is Decision.DELETE  # inertia
        forced = SpecificityPolicy(fallback=ConstantPolicy(Decision.INSERT))
        assert forced.select(ctx) is Decision.INSERT


class TestEndToEnd:
    def test_penguin_does_not_fly(self):
        result = park(
            TestSelect.PENGUIN,
            "bird(tweety). penguin(tweety). bird(woody).",
            policy=SpecificityPolicy(),
        )
        assert result.atoms == frozenset(
            parse_database(
                "bird(tweety). penguin(tweety). bird(woody). flies(woody)."
            )
        )
