"""Tests for the parser."""

import pytest

from repro.errors import ParseError, SafetyError
from repro.lang import (
    Condition,
    Event,
    UpdateOp,
    parse_atom,
    parse_database,
    parse_program,
    parse_rule,
)
from repro.lang.atoms import atom
from repro.lang.terms import Constant, Variable


class TestRules:
    def test_paper_section2_rule(self):
        r = parse_rule(
            "emp(X), not active(X), payroll(X, Salary) -> -payroll(X, Salary)."
        )
        assert r.head.is_delete
        assert r.head.atom.predicate == "payroll"
        assert [type(l) for l in r.body] == [Condition, Condition, Condition]
        assert not r.body[1].positive

    def test_event_literals(self):
        r = parse_rule("+r(X), q(X) -> -s(X).")
        assert isinstance(r.body[0], Event)
        assert r.body[0].op is UpdateOp.INSERT

    def test_delete_event_literal(self):
        r = parse_rule("-active(X), payroll(X, S) -> +severance(X).")
        assert isinstance(r.body[0], Event)
        assert r.body[0].op is UpdateOp.DELETE

    def test_bodyless_rule(self):
        r = parse_rule("-> +q(b).")
        assert r.is_fact_rule()
        assert r.head.atom == atom("q", "b")

    def test_annotations(self):
        r = parse_rule("@name(r7) @priority(-2) p -> +q.")
        assert r.name == "r7"
        assert r.priority == -2

    def test_annotation_order_free(self):
        r = parse_rule("@priority(3) @name(x) p -> +q.")
        assert (r.name, r.priority) == ("x", 3)

    def test_unknown_annotation_rejected(self):
        with pytest.raises(ParseError, match="unknown annotation"):
            parse_rule("@speed(3) p -> +q.")

    def test_zero_ary_atoms(self):
        r = parse_rule("p -> +q.")
        assert r.body[0].atom.arity == 0

    def test_terms(self):
        r = parse_rule('p(X, alice, 42, -7, "New York") -> +q.')
        terms = r.body[0].atom.terms
        assert terms == (
            Variable("X"),
            Constant("alice"),
            Constant(42),
            Constant(-7),
            Constant("New York"),
        )

    def test_safety_enforced_at_parse(self):
        with pytest.raises(SafetyError):
            parse_rule("p(X) -> +q(Y).")


class TestProgram:
    def test_multiple_rules(self):
        p = parse_program("p -> +q. q -> +r. r -> -p.")
        assert len(p) == 3

    def test_empty_program(self):
        assert len(parse_program("")) == 0

    def test_comments_between_rules(self):
        p = parse_program("# first\np -> +q.\n% second\nq -> +r.")
        assert len(p) == 2


class TestErrors:
    def test_missing_period(self):
        with pytest.raises(ParseError, match="'.'"):
            parse_rule("p -> +q")

    def test_missing_head_sign(self):
        with pytest.raises(ParseError, match="head must start"):
            parse_rule("p -> q.")

    def test_trailing_input_in_parse_rule(self):
        with pytest.raises(ParseError, match="unexpected input"):
            parse_rule("p -> +q. r -> +s.")

    def test_error_carries_position(self):
        try:
            parse_program("p -> +q.\np -> q.")
        except ParseError as error:
            assert error.line == 2
        else:
            pytest.fail("expected ParseError")

    def test_dangling_minus_event(self):
        with pytest.raises(ParseError):
            parse_rule("- -> +q.")


class TestDatabase:
    def test_facts(self):
        facts = parse_database("p(a). q(a, 42). r.")
        assert atom("p", "a") in facts
        assert atom("q", "a", 42) in facts
        assert atom("r") in facts

    def test_duplicates_collapse(self):
        assert len(parse_database("p(a). p(a).")) == 1

    def test_variables_rejected(self):
        with pytest.raises(ParseError, match="contains variables"):
            parse_database("p(X).")

    def test_empty(self):
        assert parse_database("") == set()


class TestAtom:
    def test_parse_atom(self):
        assert parse_atom("q(X, a)") == atom("q", "X", "a")

    def test_trailing_input_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("q(a) extra")
