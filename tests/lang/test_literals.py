"""Tests for body literals: conditions and events."""

import pytest

from repro.lang.atoms import atom
from repro.lang.literals import Condition, Event, neg, on_delete, on_insert, pos
from repro.lang.terms import Constant, Variable
from repro.lang.updates import UpdateOp


class TestCondition:
    def test_pos_neg_helpers(self):
        a = atom("q", "X")
        assert pos(a) == Condition(a, True)
        assert neg(a) == Condition(a, False)

    def test_binding_power(self):
        assert pos(atom("q")).binds
        assert not neg(atom("q")).binds

    def test_negate_flips(self):
        literal = pos(atom("q"))
        assert literal.negate() == neg(atom("q"))
        assert literal.negate().negate() == literal

    def test_str(self):
        assert str(pos(atom("q", "X"))) == "q(X)"
        assert str(neg(atom("q", "X"))) == "not q(X)"

    def test_substitution(self):
        literal = neg(atom("q", "X"))
        grounded = literal.ground({Variable("X"): Constant("a")})
        assert grounded == neg(atom("q", "a"))
        assert not grounded.positive

    def test_atom_type_checked(self):
        with pytest.raises(TypeError):
            Condition("q", True)


class TestEvent:
    def test_helpers(self):
        a = atom("r", "X")
        assert on_insert(a).op is UpdateOp.INSERT
        assert on_delete(a).op is UpdateOp.DELETE
        assert on_insert(a).atom == a

    def test_events_bind(self):
        assert on_insert(atom("r", "X")).binds
        assert on_delete(atom("r", "X")).binds

    def test_str_uses_sign(self):
        assert str(on_insert(atom("r", "a"))) == "+r(a)"
        assert str(on_delete(atom("r", "a"))) == "-r(a)"

    def test_substitution_preserves_op(self):
        literal = on_delete(atom("r", "X"))
        grounded = literal.ground({Variable("X"): Constant("b")})
        assert grounded.op is UpdateOp.DELETE
        assert grounded.is_ground()

    def test_event_and_condition_unequal(self):
        assert on_insert(atom("r")) != pos(atom("r"))

    def test_hashable(self):
        a = atom("r")
        assert len({on_insert(a), on_insert(a), on_delete(a)}) == 2
