"""Tests for immutable substitutions."""

import pytest

from repro.lang.substitution import EMPTY_SUBSTITUTION, Substitution, substitution
from repro.lang.terms import Constant, Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a, b = Constant("a"), Constant("b")


class TestBasics:
    def test_mapping_protocol(self):
        s = Substitution({X: a, Y: b})
        assert s[X] == a
        assert len(s) == 2
        assert X in s
        assert Z not in s
        assert set(s) == {X, Y}
        assert s.get(Z) is None

    def test_keyword_constructor_strings_are_constants(self):
        s = substitution(X="a", Y=3)
        assert s[X] == Constant("a")
        assert s[Y] == Constant(3)

    def test_keyword_constructor_uppercase_string_still_constant(self):
        # Binding values are data, never variables.
        s = substitution(X="Abc")
        assert s[X] == Constant("Abc")

    def test_type_checks(self):
        with pytest.raises(TypeError):
            Substitution({"X": a})
        with pytest.raises(TypeError):
            Substitution({X: "a"})

    def test_empty_shared(self):
        assert len(EMPTY_SUBSTITUTION) == 0
        assert Substitution() == EMPTY_SUBSTITUTION


class TestIdentity:
    def test_equality_order_independent(self):
        assert Substitution({X: a, Y: b}) == Substitution({Y: b, X: a})

    def test_hash_consistent(self):
        assert hash(Substitution({X: a})) == hash(Substitution({X: a}))

    def test_equality_with_plain_mapping(self):
        assert Substitution({X: a}) == {X: a}

    def test_usable_in_sets(self):
        s1 = Substitution({X: a})
        s2 = Substitution({X: a})
        s3 = Substitution({X: b})
        assert len({s1, s2, s3}) == 2


class TestOperations:
    def test_bind_new(self):
        s = Substitution({X: a}).bind(Y, b)
        assert s[Y] == b
        assert s[X] == a

    def test_bind_same_value_returns_self(self):
        s = Substitution({X: a})
        assert s.bind(X, a) is s

    def test_bind_conflict_raises(self):
        with pytest.raises(ValueError):
            Substitution({X: a}).bind(X, b)

    def test_merge_compatible(self):
        merged = Substitution({X: a}).merge(Substitution({Y: b}))
        assert merged == Substitution({X: a, Y: b})

    def test_merge_conflict_returns_none(self):
        assert Substitution({X: a}).merge(Substitution({X: b})) is None

    def test_restrict(self):
        s = Substitution({X: a, Y: b})
        assert s.restrict({X}) == Substitution({X: a})
        assert s.restrict(set()) == EMPTY_SUBSTITUTION

    def test_covers(self):
        s = Substitution({X: a, Y: b})
        assert s.covers({X, Y})
        assert not s.covers({X, Z})

    def test_is_ground(self):
        assert Substitution({X: a}).is_ground()
        assert not Substitution({X: Y}).is_ground()

    def test_str_sorted_by_variable(self):
        s = Substitution({Y: b, X: a})
        assert str(s) == "[X <- a, Y <- b]"
