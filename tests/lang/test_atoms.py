"""Tests for atoms: construction, grounding, substitution."""

import pytest

from repro.lang.atoms import Atom, atom
from repro.lang.terms import Constant, Variable


class TestConstruction:
    def test_zero_ary(self):
        p = Atom("p")
        assert p.arity == 0
        assert p.is_ground()
        assert str(p) == "p"

    def test_terms_coerced_to_tuple(self):
        a = Atom("q", [Constant("a")])
        assert isinstance(a.terms, tuple)

    def test_empty_predicate_rejected(self):
        with pytest.raises(ValueError):
            Atom("")

    def test_non_term_argument_rejected(self):
        with pytest.raises(TypeError):
            Atom("p", ("raw-string",))

    def test_helper_coerces_values(self):
        a = atom("edge", "X", "b", 3)
        assert a.terms == (Variable("X"), Constant("b"), Constant(3))


class TestStructure:
    def test_variables_and_constants(self):
        a = atom("q", "X", "a", "Y")
        assert a.variables() == {Variable("X"), Variable("Y")}
        assert a.constants() == {Constant("a")}

    def test_is_ground(self):
        assert atom("p", "a", 1).is_ground()
        assert not atom("p", "X").is_ground()

    def test_signature(self):
        assert atom("q", "a", "b").signature() == ("q", 2)

    def test_value_tuple(self):
        assert atom("q", "a", 5).value_tuple() == ("a", 5)

    def test_value_tuple_requires_ground(self):
        with pytest.raises(ValueError):
            atom("q", "X").value_tuple()


class TestSubstitution:
    def test_substitute_partial(self):
        a = atom("q", "X", "Y")
        result = a.substitute({Variable("X"): Constant("a")})
        assert result == atom("q", "a", "Y")

    def test_substitute_identity_returns_self(self):
        a = atom("q", "a")
        assert a.substitute({Variable("X"): Constant("b")}) is a

    def test_ground_success(self):
        a = atom("q", "X")
        assert a.ground({Variable("X"): Constant("c")}) == atom("q", "c")

    def test_ground_rejects_unbound(self):
        with pytest.raises(ValueError, match="unbound: Y"):
            atom("q", "X", "Y").ground({Variable("X"): Constant("a")})

    def test_repeated_variable_substitution(self):
        a = atom("q", "X", "X")
        result = a.ground({Variable("X"): Constant("a")})
        assert result == atom("q", "a", "a")


class TestIdentity:
    def test_equality_structural(self):
        assert atom("q", "a") == atom("q", "a")
        assert atom("q", "a") != atom("q", "b")
        assert atom("q", "a") != atom("r", "a")

    def test_hashable_in_sets(self):
        assert len({atom("q", "a"), atom("q", "a"), atom("q", "b")}) == 2

    def test_arity_distinguishes(self):
        assert Atom("p") != atom("p", "a")
