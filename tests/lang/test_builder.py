"""Tests for the fluent Python rule builder."""

import pytest

from repro.lang import parse_rule
from repro.lang.builder import Pred, rules, when
from repro.lang.literals import Condition, Event
from repro.lang.rules import Rule

emp = Pred("emp")
active = Pred("active")
payroll = Pred("payroll")
stale = Pred("stale")
r_ = Pred("r")
s_ = Pred("s")


class TestPred:
    def test_call_builds_atom(self):
        assert str(emp("X").atom) == "emp(X)"

    def test_attribute_sugar(self):
        assert str(active.X.atom) == "active(X)"

    def test_mixed_terms(self):
        assert str(payroll("X", "alice", 3).atom) == "payroll(X, alice, 3)"

    def test_prefix_operators(self):
        assert isinstance(~active.X, Condition)
        assert not (~active.X).positive
        assert isinstance(+r_.X, Event)
        assert isinstance(-r_.X, Event)


class TestWhen:
    def test_paper_cleanup_rule(self):
        built = (
            when(emp.X, ~active.X, payroll("X", "S"))
            .then("-", payroll("X", "S"))
            .named("cleanup")
            .build()
        )
        parsed = parse_rule(
            "@name(cleanup) emp(X), not active(X), payroll(X, S) -> -payroll(X, S)."
        )
        assert built == parsed

    def test_eca_rule_via_on_insert(self):
        built = when().on_insert(r_("X").atom).then("-", s_("X")).build()
        assert built == parse_rule("+r(X) -> -s(X).")

    def test_eca_rule_via_event_expression(self):
        built = when(+r_.X).then("-", s_.X).build()
        assert built == parse_rule("+r(X) -> -s(X).")

    def test_then_accepts_signed_expression(self):
        built = when(emp.X).then(+stale.X).build()
        assert built == parse_rule("emp(X) -> +stale(X).")

    def test_priority_and_name(self):
        finished = when(emp.X).then(+stale.X).named("r9").with_priority(4)
        assert finished.rule.name == "r9"
        assert finished.rule.priority == 4

    def test_and_extends_body(self):
        built = when(emp.X).and_(~active.X).then(+stale.X).build()
        assert len(built.body) == 2

    def test_bad_literal_rejected(self):
        with pytest.raises(TypeError):
            when("emp")

    def test_bad_head_op_rejected(self):
        with pytest.raises(ValueError):
            when(emp.X).then("*", stale.X)


class TestRulesHelper:
    def test_unwraps_mixture(self):
        finished = when(emp.X).then(+stale.X)
        plain = parse_rule("p -> +q.")
        result = rules(finished, plain)
        assert all(isinstance(r, Rule) for r in result)
        assert len(result) == 2

    def test_rejects_junk(self):
        with pytest.raises(TypeError):
            rules("p -> +q.")
