"""Tests for rules: construction, accessors, and the Section 2 safety rules."""

import pytest

from repro.errors import SafetyError
from repro.lang.atoms import atom
from repro.lang.literals import neg, on_delete, on_insert, pos
from repro.lang.rules import Rule, rule
from repro.lang.substitution import substitution
from repro.lang.updates import delete, insert


class TestConstruction:
    def test_simple_rule(self):
        r = rule(insert(atom("q", "X")), pos(atom("p", "X")), name="r1")
        assert r.name == "r1"
        assert len(r.body) == 1

    def test_bodyless_rule_with_ground_head(self):
        r = rule(insert(atom("q", "b")))
        assert r.is_fact_rule()

    def test_str(self):
        r = rule(delete(atom("s", "X")), pos(atom("p", "X")), neg(atom("r", "X")))
        assert str(r) == "p(X), not r(X) -> -s(X)"

    def test_bodyless_str(self):
        assert str(rule(insert(atom("q", "b")))) == "-> +q(b)"

    def test_priority_type_checked(self):
        with pytest.raises(TypeError):
            rule(insert(atom("q")), priority="high")


class TestSafetyCondition1:
    """Every head variable must occur in the body."""

    def test_head_variable_from_positive_body(self):
        rule(insert(atom("q", "X")), pos(atom("p", "X")))  # fine

    def test_head_variable_from_event_body(self):
        rule(delete(atom("s", "X")), on_insert(atom("r", "X")))  # fine

    def test_unbound_head_variable_rejected(self):
        with pytest.raises(SafetyError, match="head variable"):
            rule(insert(atom("q", "Y")), pos(atom("p", "X")))

    def test_bodyless_nonground_head_rejected(self):
        with pytest.raises(SafetyError):
            rule(insert(atom("q", "X")))

    def test_negated_literal_does_not_bind_head(self):
        with pytest.raises(SafetyError):
            rule(insert(atom("q", "X")), neg(atom("p", "X")))


class TestSafetyCondition2:
    """Negated-literal variables must occur in a positive body literal."""

    def test_negation_over_bound_variable(self):
        rule(insert(atom("q", "X")), pos(atom("p", "X")), neg(atom("r", "X")))

    def test_negation_with_fresh_variable_rejected(self):
        with pytest.raises(SafetyError, match="negated literal"):
            rule(insert(atom("q")), pos(atom("p")), neg(atom("r", "X")))

    def test_event_literal_binds_for_negation(self):
        rule(insert(atom("q", "X")), on_delete(atom("p", "X")), neg(atom("r", "X")))

    def test_ground_negation_always_fine(self):
        rule(insert(atom("q")), pos(atom("p")), neg(atom("r", "a")))


class TestAccessors:
    def setup_method(self):
        self.r = rule(
            insert(atom("q", "X")),
            pos(atom("p", "X")),
            neg(atom("s", "X")),
            on_insert(atom("t", "X")),
            name="mixed",
            priority=3,
        )

    def test_partitions(self):
        assert len(self.r.positive_conditions()) == 1
        assert len(self.r.negative_conditions()) == 1
        assert len(self.r.event_literals()) == 1

    def test_is_condition_action(self):
        assert not self.r.is_condition_action()
        plain = rule(insert(atom("q", "X")), pos(atom("p", "X")))
        assert plain.is_condition_action()

    def test_predicates(self):
        assert self.r.predicates() == {("q", 1), ("p", 1), ("s", 1), ("t", 1)}

    def test_variables(self):
        assert {v.name for v in self.r.variables()} == {"X"}

    def test_describe_prefers_name(self):
        assert self.r.describe() == "mixed"
        anonymous = rule(insert(atom("q")), pos(atom("p")))
        assert anonymous.describe() == "p -> +q"

    def test_substitute_produces_ground_instance(self):
        ground = self.r.substitute(substitution(X="a"))
        assert ground.head == insert(atom("q", "a"))
        assert all(l.is_ground() for l in ground.body)

    def test_rules_hashable(self):
        r2 = rule(
            insert(atom("q", "X")),
            pos(atom("p", "X")),
            neg(atom("s", "X")),
            on_insert(atom("t", "X")),
            name="mixed",
            priority=3,
        )
        assert hash(self.r) == hash(r2)
        assert self.r == r2
