"""Tests for terms: variables, constants, coercion."""

import pytest

from repro.lang.terms import Constant, Variable, is_constant, is_variable, make_term


class TestVariable:
    def test_equality_is_by_name(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")

    def test_hashable(self):
        assert len({Variable("X"), Variable("X"), Variable("Y")}) == 2

    def test_str(self):
        assert str(Variable("Salary")) == "Salary"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_repr_roundtrip(self):
        v = Variable("X")
        assert eval(repr(v)) == v


class TestConstant:
    def test_string_and_int_values(self):
        assert Constant("a").value == "a"
        assert Constant(42).value == 42

    def test_distinct_types_unequal(self):
        assert Constant("1") != Constant(1)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            Constant(True)

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            Constant(3.14)

    def test_none_rejected(self):
        with pytest.raises(TypeError):
            Constant(None)

    def test_str(self):
        assert str(Constant("alice")) == "alice"
        assert str(Constant(7)) == "7"

    def test_hashable(self):
        assert len({Constant("a"), Constant("a"), Constant("b")}) == 2


class TestMakeTerm:
    def test_uppercase_becomes_variable(self):
        assert make_term("X") == Variable("X")
        assert make_term("Salary") == Variable("Salary")

    def test_underscore_becomes_variable(self):
        assert make_term("_tmp") == Variable("_tmp")

    def test_lowercase_becomes_constant(self):
        assert make_term("alice") == Constant("alice")

    def test_int_becomes_constant(self):
        assert make_term(9) == Constant(9)

    def test_terms_pass_through(self):
        v = Variable("X")
        c = Constant("a")
        assert make_term(v) is v
        assert make_term(c) is c

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            make_term(3.5)

    def test_variable_and_constant_never_equal(self):
        assert Variable("X") != Constant("X")
