"""Tests for updates (signed atoms) and the UpdateOp enum."""

import pytest

from repro.lang.atoms import atom
from repro.lang.terms import Constant, Variable
from repro.lang.updates import Update, UpdateOp, delete, insert


class TestUpdateOp:
    def test_signs(self):
        assert UpdateOp.INSERT.sign == "+"
        assert UpdateOp.DELETE.sign == "-"

    def test_opposite_is_involution(self):
        for op in UpdateOp:
            assert op.opposite().opposite() is op

    def test_opposite_swaps(self):
        assert UpdateOp.INSERT.opposite() is UpdateOp.DELETE


class TestUpdate:
    def test_shorthands(self):
        a = atom("p", "x1")
        assert insert(a) == Update(UpdateOp.INSERT, a)
        assert delete(a) == Update(UpdateOp.DELETE, a)

    def test_flags(self):
        assert insert(atom("p")).is_insert
        assert not insert(atom("p")).is_delete
        assert delete(atom("p")).is_delete

    def test_negated(self):
        u = insert(atom("p", "a"))
        assert u.negated() == delete(atom("p", "a"))
        assert u.negated().negated() == u

    def test_str(self):
        assert str(insert(atom("q", "a"))) == "+q(a)"
        assert str(delete(atom("q"))) == "-q"

    def test_ground_and_variables(self):
        u = insert(atom("q", "X"))
        assert not u.is_ground()
        assert u.variables() == {Variable("X")}
        grounded = u.ground({Variable("X"): Constant("a")})
        assert grounded.is_ground()

    def test_substitute_identity_returns_self(self):
        u = insert(atom("q", "a"))
        assert u.substitute({Variable("X"): Constant("b")}) is u

    def test_type_checks(self):
        with pytest.raises(TypeError):
            Update("insert", atom("p"))
        with pytest.raises(TypeError):
            Update(UpdateOp.INSERT, "p")

    def test_hashable_and_distinct_by_op(self):
        a = atom("p")
        assert len({insert(a), delete(a), insert(a)}) == 2
