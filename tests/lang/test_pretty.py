"""Tests for the pretty-printer and its round-trip guarantee."""

import pytest

from repro.lang import (
    parse_database,
    parse_program,
    parse_rule,
    render_atom,
    render_database,
    render_literal,
    render_program,
    render_rule,
    render_term,
    render_update,
)
from repro.lang.atoms import atom
from repro.lang.literals import neg, on_delete, pos
from repro.lang.rules import rule
from repro.lang.terms import Constant, Variable
from repro.lang.updates import delete, insert


class TestTerms:
    def test_variable(self):
        assert render_term(Variable("X")) == "X"

    def test_plain_constant(self):
        assert render_term(Constant("alice")) == "alice"

    def test_integer(self):
        assert render_term(Constant(-3)) == "-3"

    def test_quoting_needed_for_spaces(self):
        assert render_term(Constant("new york")) == '"new york"'

    def test_quoting_needed_for_uppercase(self):
        # Would otherwise re-lex as a variable.
        assert render_term(Constant("Alice")) == '"Alice"'

    def test_quoting_keyword(self):
        assert render_term(Constant("not")) == '"not"'

    def test_quoting_empty(self):
        assert render_term(Constant("")) == '""'

    def test_escapes(self):
        assert render_term(Constant('say "hi"')) == '"say \\"hi\\""'

    def test_control_characters_render_escaped(self):
        # rendered text must never contain a raw newline — snapshots and
        # journal records are one-record-per-line formats
        assert render_term(Constant("a\nb")) == '"a\\nb"'
        assert render_term(Constant("a\rb")) == '"a\\rb"'
        assert render_term(Constant("a\tb")) == '"a\\tb"'

    def test_control_characters_roundtrip(self):
        from repro.lang.parser import parse_atom
        from repro.lang.atoms import Atom

        original = Atom("wrap", (Constant("a\nb\r\tc\\d\"e"),))
        from repro.lang.pretty import render_atom

        assert parse_atom(render_atom(original)) == original


class TestStructures:
    def test_atom(self):
        assert render_atom(atom("q", "X", "a")) == "q(X, a)"
        assert render_atom(atom("p")) == "p"

    def test_literal(self):
        assert render_literal(pos(atom("q"))) == "q"
        assert render_literal(neg(atom("q"))) == "not q"
        assert render_literal(on_delete(atom("q"))) == "-q"

    def test_update(self):
        assert render_update(insert(atom("q", "a"))) == "+q(a)"

    def test_rule_with_annotations(self):
        r = rule(delete(atom("s", "X")), pos(atom("p", "X")), name="r1", priority=2)
        assert render_rule(r) == "@name(r1) @priority(2) p(X) -> -s(X)."
        assert render_rule(r, include_annotations=False) == "p(X) -> -s(X)."

    def test_bodyless_rule(self):
        assert render_rule(rule(insert(atom("q", "b")))) == "-> +q(b)."

    def test_database_sorted(self):
        text = render_database({atom("b"), atom("a")})
        assert text.splitlines() == ["a.", "b."]

    def test_type_errors(self):
        with pytest.raises(TypeError):
            render_atom("p")
        with pytest.raises(TypeError):
            render_rule("p -> +q.")


class TestRoundTrip:
    CASES = [
        "p0 -> +q0.",
        "-> +q1(b).",
        "@name(r1) @priority(-5) p1(X), not q2(X), +r(X), -s(X) -> -t(X).",
        'p2("hello world", 42, -1, X) -> +q3(X).',
        "a(X, X), b(X) -> +c(X, X).",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_rule_roundtrip(self, text):
        original = parse_rule(text)
        assert parse_rule(render_rule(original)) == original

    def test_program_roundtrip(self):
        source = "\n".join(self.CASES)
        original = parse_program(source)
        assert parse_program(render_program(original)) == original

    def test_database_roundtrip(self):
        facts = parse_database('p(a). q("x y", 3). r.')
        assert parse_database(render_database(facts)) == facts
