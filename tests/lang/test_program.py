"""Tests for programs: validation, accessors, extension."""

import pytest

from repro.errors import ArityError, LanguageError
from repro.lang.atoms import atom
from repro.lang.literals import neg, on_insert, pos
from repro.lang.program import Program, program
from repro.lang.rules import rule
from repro.lang.updates import delete, insert

R1 = rule(insert(atom("q", "X")), pos(atom("p", "X")), name="r1")
R2 = rule(delete(atom("q", "X")), pos(atom("p", "X")), name="r2")


class TestValidation:
    def test_duplicate_names_rejected(self):
        clone = rule(insert(atom("z", "X")), pos(atom("p", "X")), name="r1")
        with pytest.raises(LanguageError, match="duplicate rule name"):
            program(R1, clone)

    def test_anonymous_rules_may_repeat(self):
        anon = rule(insert(atom("q", "X")), pos(atom("p", "X")))
        Program((anon, anon))  # no error

    def test_inconsistent_arity_rejected(self):
        bad = rule(insert(atom("q", "X", "Y")), pos(atom("p2", "X", "Y")))
        with pytest.raises(ArityError, match="arities"):
            program(R1, bad)

    def test_non_rule_rejected(self):
        with pytest.raises(TypeError):
            Program(("not a rule",))


class TestAccessors:
    def test_sequence_protocol(self):
        p = program(R1, R2)
        assert len(p) == 2
        assert p[0] is R1
        assert list(p) == [R1, R2]
        assert R1 in p

    def test_by_name(self):
        p = program(R1, R2)
        assert p.by_name("r2") is R2
        with pytest.raises(KeyError):
            p.by_name("missing")

    def test_predicates_and_arity(self):
        p = program(R1)
        assert p.predicates() == {("q", 1), ("p", 1)}
        assert p.arity_of("q") == 1
        assert p.arity_of("nope") is None

    def test_constants(self):
        r = rule(insert(atom("q", "a")), pos(atom("p", "b")))
        assert {c.value for c in program(r).constants()} == {"a", "b"}

    def test_classification_flags(self):
        insert_only = program(R1)
        assert insert_only.is_insert_only()
        assert insert_only.is_positive()
        assert insert_only.is_condition_action()

        with_delete = program(R1, R2)
        assert not with_delete.is_insert_only()

        with_neg = program(
            rule(insert(atom("q", "X")), pos(atom("p", "X")), neg(atom("r", "X")))
        )
        assert not with_neg.is_positive()

        with_event = program(rule(insert(atom("q", "X")), on_insert(atom("p", "X"))))
        assert not with_event.is_condition_action()
        assert not with_event.is_positive()

    def test_extend_returns_new_program(self):
        p = program(R1)
        extended = p.extend([R2])
        assert len(extended) == 2
        assert len(p) == 1

    def test_extend_validates(self):
        clone = rule(insert(atom("z", "X")), pos(atom("p", "X")), name="r1")
        with pytest.raises(LanguageError):
            program(R1).extend([clone])

    def test_str_one_rule_per_line(self):
        assert str(program(R1, R2)).count("\n") == 1
