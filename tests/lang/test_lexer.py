"""Tests for the lexer."""

import pytest

from repro.errors import ParseError
from repro.lang import lexer as lex


def kinds(text):
    return [t.kind for t in lex.tokenize(text)]


def texts(text):
    return [t.text for t in lex.tokenize(text) if t.kind != lex.EOF]


class TestTokens:
    def test_simple_rule(self):
        assert kinds("p(X) -> +q(X).") == [
            lex.IDENT, lex.LPAREN, lex.VAR, lex.RPAREN,
            lex.ARROW, lex.PLUS, lex.IDENT, lex.LPAREN, lex.VAR, lex.RPAREN,
            lex.PERIOD, lex.EOF,
        ]

    def test_arrow_vs_minus(self):
        assert kinds("- ->") == [lex.MINUS, lex.ARROW, lex.EOF]

    def test_not_keyword(self):
        assert kinds("not nothing") == [lex.NOT, lex.IDENT, lex.EOF]

    def test_variables_start_upper_or_underscore(self):
        assert kinds("X _y abc") == [lex.VAR, lex.VAR, lex.IDENT, lex.EOF]

    def test_integers(self):
        assert kinds("42") == [lex.INT, lex.EOF]
        assert texts("42 7") == ["42", "7"]

    def test_identifier_cannot_start_with_digit(self):
        with pytest.raises(ParseError):
            lex.tokenize("1abc")

    def test_annotations(self):
        assert kinds("@name(r1)") == [
            lex.AT, lex.IDENT, lex.LPAREN, lex.IDENT, lex.RPAREN, lex.EOF
        ]


class TestStrings:
    def test_double_quoted(self):
        tokens = lex.tokenize('"hello world"')
        assert tokens[0].kind == lex.STRING
        assert tokens[0].text == "hello world"

    def test_single_quoted(self):
        assert lex.tokenize("'a b'")[0].text == "a b"

    def test_escapes(self):
        assert lex.tokenize(r'"say \"hi\""')[0].text == 'say "hi"'
        assert lex.tokenize(r'"back\\slash"')[0].text == "back\\slash"

    def test_control_escapes(self):
        assert lex.tokenize(r'"a\nb"')[0].text == "a\nb"
        assert lex.tokenize(r'"a\rb"')[0].text == "a\rb"
        assert lex.tokenize(r'"a\tb"')[0].text == "a\tb"

    def test_unknown_escape_stays_literal(self):
        # only \" \' \\ \n \r \t are escapes; anything else keeps the
        # backslash, matching what the pretty-printer has always emitted
        assert lex.tokenize(r'"a\qb"')[0].text == "a\\qb"

    def test_unterminated_raises(self):
        with pytest.raises(ParseError, match="unterminated"):
            lex.tokenize('"oops')

    def test_newline_terminates_with_error(self):
        with pytest.raises(ParseError):
            lex.tokenize('"oops\n"')


class TestTrivia:
    def test_hash_comments(self):
        assert kinds("p. # comment\nq.") == [
            lex.IDENT, lex.PERIOD, lex.IDENT, lex.PERIOD, lex.EOF
        ]

    def test_percent_comments(self):
        assert kinds("p. % datalog style\nq.") == [
            lex.IDENT, lex.PERIOD, lex.IDENT, lex.PERIOD, lex.EOF
        ]

    def test_whitespace_insensitive(self):
        assert kinds("p  (\tX )") == kinds("p(X)")

    def test_positions_tracked(self):
        tokens = lex.tokenize("p\n  q")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            lex.tokenize("p ? q")

    def test_empty_input(self):
        assert kinds("") == [lex.EOF]
        assert kinds("   # only a comment") == [lex.EOF]
