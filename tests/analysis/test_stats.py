"""Tests for power-law fitting and sweep helpers."""

import math

import pytest

from repro.analysis.stats import (
    PowerLawFit,
    SweepPoint,
    fit_power_law,
    geometric_sizes,
    summarize_sweep,
)


class TestFitPowerLaw:
    def test_exact_linear(self):
        sizes = [10, 20, 40, 80]
        times = [0.1 * s for s in sizes]
        fit = fit_power_law(sizes, times)
        assert fit.exponent == pytest.approx(1.0)
        assert fit.coefficient == pytest.approx(0.1)
        assert fit.r_squared == pytest.approx(1.0)

    def test_exact_quadratic(self):
        sizes = [8, 16, 32, 64]
        times = [3e-6 * s * s for s in sizes]
        fit = fit_power_law(sizes, times)
        assert fit.exponent == pytest.approx(2.0)

    def test_noise_tolerated(self):
        sizes = [10, 20, 40, 80, 160]
        times = [0.01 * s ** 1.5 * (1 + 0.05 * ((i % 2) * 2 - 1))
                 for i, s in enumerate(sizes)]
        fit = fit_power_law(sizes, times)
        assert 1.3 < fit.exponent < 1.7
        assert fit.r_squared > 0.95

    def test_predict(self):
        fit = PowerLawFit(exponent=2.0, coefficient=0.5, r_squared=1.0)
        assert fit.predict(4) == pytest.approx(8.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1.0])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1.0])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0.0, 1.0])
        with pytest.raises(ValueError):
            fit_power_law([5, 5], [1.0, 2.0])

    def test_str(self):
        fit = fit_power_law([10, 100], [1.0, 100.0])
        assert "n^2.00" in str(fit)


class TestSweepHelpers:
    def test_summarize_sweep(self):
        points = [SweepPoint(size=s, seconds=0.001 * s) for s in (10, 20, 40)]
        fit, table = summarize_sweep(points)
        assert fit.exponent == pytest.approx(1.0)
        assert "size" in table
        assert "10" in table

    def test_geometric_sizes(self):
        sizes = geometric_sizes(10, 1000, 5)
        assert sizes[0] == 10
        assert sizes[-1] == 1000
        assert sizes == sorted(sizes)
        assert len(sizes) == 5

    def test_geometric_sizes_dedup(self):
        sizes = geometric_sizes(2, 4, 10)
        assert len(sizes) == len(set(sizes))

    def test_geometric_sizes_validation(self):
        with pytest.raises(ValueError):
            geometric_sizes(0, 10, 3)
        with pytest.raises(ValueError):
            geometric_sizes(10, 5, 3)
        with pytest.raises(ValueError):
            geometric_sizes(1, 10, 1)
