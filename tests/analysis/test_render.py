"""Tests for paper-notation rendering."""

from repro.analysis.render import (
    render_database,
    render_decision,
    render_frozen_interpretation,
    render_interpretation,
    render_trace,
    trace_interpretation_strings,
)
from repro.analysis.trace import TraceRecorder
from repro.core.engine import ParkEngine
from repro.core.interpretation import IInterpretation
from repro.lang.atoms import atom
from repro.lang.updates import delete, insert
from repro.storage.database import Database


class TestInterpretationNotation:
    def test_marks_and_order(self):
        i = IInterpretation.from_database(Database.from_text("p."))
        i.add_update(insert(atom("q")))
        i.add_update(delete(atom("a")))
        assert render_interpretation(i) == "{-a, p, +q}"

    def test_frozen_form(self):
        frozen = (
            frozenset({atom("p")}),
            frozenset({atom("q")}),
            frozenset({atom("a")}),
        )
        assert render_frozen_interpretation(frozen) == "{-a, p, +q}"

    def test_empty(self):
        assert render_frozen_interpretation((frozenset(), frozenset(), frozenset())) == "{}"

    def test_database(self):
        assert render_database(Database.from_text("q. p(a).")) == "{p(a), q}"


class TestTraceRendering:
    def run(self, program, facts):
        recorder = TraceRecorder()
        ParkEngine(listeners=[recorder]).run(program, facts)
        return recorder

    def test_paper_section5_trace(self):
        """The numbered sets must equal the paper's (1)-(7) walkthrough."""
        recorder = self.run(
            """
            @name(r1) p -> +a.
            @name(r2) p -> +q.
            @name(r3) a -> +b.
            @name(r4) a -> -q.
            @name(r5) b -> +q.
            """,
            "p.",
        )
        assert trace_interpretation_strings(recorder) == [
            "{+a, p, +q}",                 # (1)
            "{+a, +b, p, +q, -q}",         # (2) inconsistent
            "{+a, p}",                     # (3)
            "{+a, +b, p, -q}",             # (4)
            "{+a, +b, p, +q, -q}",         # (5) inconsistent
            "{+a, p}",                     # (6)
            "{+a, +b, p, -q}",             # (7)
        ]

    def test_render_trace_structure(self):
        text = render_trace(self.run("@name(r1) p -> +a. @name(r2) p -> -a.", "p."))
        assert "(1)" in text
        assert "inconsistent" in text
        assert "restart from I0" in text
        assert "fixpoint:" in text
        assert "conflict on a" in text

    def test_render_trace_without_decisions(self):
        recorder = self.run("@name(r1) p -> +a. @name(r2) p -> -a.", "p.")
        text = render_trace(recorder, include_decisions=False)
        assert "conflict on" not in text

    def test_decision_line(self):
        recorder = self.run("@name(r1) p -> +a. @name(r2) p -> -a.", "p.")
        ((conflict, decision),) = recorder.conflicts()[0].decisions
        line = render_decision(conflict, decision)
        assert line == "conflict on a: ins={r1} del={r2} -> delete"
