"""Trace equivalence: identical event sequences across backends and strategies.

The PARK trace is the semantics made visible — the sequence of applied
rounds, conflicts, restarts, and the fixpoint, with the intermediate
interpretations.  Telemetry, the matcher backend, and the Γ evaluation
strategy are all performance machinery; none of them may change a single
recorded event.  These tests run the same programs under every
(strategy × backend) combination — with and without metrics/tracing
attached — and assert the :class:`TraceRecorder` event lists compare
equal (the event dataclasses are frozen, so ``==`` is structural).
"""

import pytest

from repro.analysis.trace import TraceRecorder
from repro.core.engine import ParkEngine
from repro.engine.match import (
    clear_compile_cache,
    get_matcher_backend,
    set_matcher_backend,
)
from repro.obs import Metrics, Tracer

BACKENDS = ("interpreted", "compiled")
STRATEGIES = ("naive", "seminaive", "incremental")

PROGRAMS = [
    # Pure deduction, multiple rounds.
    ("p -> +q. q -> +r. r -> +s.", "p."),
    # Recursion over a relation.
    (
        "edge(X, Y) -> +path(X, Y). path(X, Y), edge(Y, Z) -> +path(X, Z).",
        "edge(a, b). edge(b, c). edge(c, d). edge(d, a).",
    ),
    # The paper's P1: one conflict, one restart, a blocked instance.
    ("@name(r1) p -> +q. @name(r2) p -> -a. @name(r3) q -> +a.", "p. a."),
    # Negation plus deletion.
    (
        "@name(a) p(X), not q(X) -> +r(X). @name(b) r(X) -> -p(X).",
        "p(1). p(2). q(2).",
    ),
]


@pytest.fixture(autouse=True)
def _restore_backend():
    previous = get_matcher_backend()
    clear_compile_cache()
    yield
    set_matcher_backend(previous)
    clear_compile_cache()


def _record(program, facts, strategy, backend, with_telemetry=False):
    set_matcher_backend(backend)
    clear_compile_cache()
    recorder = TraceRecorder()
    options = {}
    if with_telemetry:
        options["metrics"] = Metrics()
        options["tracer"] = Tracer()
    engine = ParkEngine(
        listeners=[recorder], evaluation=strategy, **options
    )
    engine.run(program, facts)
    return recorder


@pytest.mark.parametrize("program,facts", PROGRAMS)
def test_event_sequences_identical_across_all_combinations(program, facts):
    reference = _record(program, facts, "naive", "interpreted")
    assert reference.events, "reference run recorded no events"
    for strategy in STRATEGIES:
        for backend in BACKENDS:
            recorder = _record(program, facts, strategy, backend)
            assert recorder.events == reference.events, (
                "trace diverged for evaluation=%s matcher=%s"
                % (strategy, backend)
            )


@pytest.mark.parametrize("program,facts", PROGRAMS)
def test_telemetry_does_not_perturb_the_trace(program, facts):
    for strategy in STRATEGIES:
        for backend in BACKENDS:
            plain = _record(program, facts, strategy, backend)
            telemetered = _record(
                program, facts, strategy, backend, with_telemetry=True
            )
            assert telemetered.events == plain.events, (
                "telemetry changed the trace for evaluation=%s matcher=%s"
                % (strategy, backend)
            )


def test_semantic_fingerprints_identical_across_combinations():
    """The strategy/backend-invariant counters agree on every combination."""
    program, facts = PROGRAMS[2]
    fingerprints = set()
    for strategy in STRATEGIES:
        for backend in BACKENDS:
            set_matcher_backend(backend)
            clear_compile_cache()
            metrics = Metrics()
            ParkEngine(evaluation=strategy, metrics=metrics).run(program, facts)
            fingerprints.add(metrics.fingerprint())
    assert len(fingerprints) == 1
