"""Tests for why-not explanations (the negative-space of provenance).

Covers every kind in the taxonomy — blocked (with winning side named),
lost in a restart, refuted by negation, never matched, underivable —
on the paper's own examples E3–E5 plus the stale-conflict construction
of ``tests/core/test_stale_conflicts.py`` run through the Explainer.
"""

import pytest

from repro.analysis.explain import Explainer, why_not
from repro.core.engine import park
from repro.errors import EngineError
from repro.workloads.paper import PAPER_EXAMPLES

STALE = """
@name(r0) seed -> +c.
@name(r1) not b -> -a.
@name(r2) c -> +b.
@name(r3) b -> +a.
"""

LOST = """
@name(r1) p -> +q.
@name(r2) q -> +b.
@name(r3) b -> -q.
"""


def paper(identifier, **options):
    return PAPER_EXAMPLES[identifier].run(audit=True, **options)


class TestBlocked:
    def test_e3_losing_grounding_names_winning_side(self):
        result = paper("E3")
        verdict = Explainer(result).why_not("+q")
        assert verdict.kind == "blocked"
        assert [g.rule.name for g in verdict.blocked] == ["r1"]
        assert str(verdict.winner) == "-q"
        assert [g.rule.name for g in verdict.winners] == ["r2"]
        assert verdict.policy == "inertia"
        assert verdict.epoch == 1

    def test_e4_custom_policy_blocked_sides(self):
        # Section 4.2 graph: the custom SELECT deletes q(a, c) (the cut
        # pair) and every reflexive q(X, X); the blocked +q instances
        # must name the r2/r3 deletion instances as winners.
        result = paper("E4")
        explainer = Explainer(result)
        for target, winner_rules in (
            ("+q(a, c)", {"r3"}),
            ("+q(a, a)", {"r2", "r3"}),
        ):
            verdict = explainer.why_not(target)
            assert verdict.kind == "blocked", target
            assert verdict.policy == "sec42-custom"
            assert {g.rule.name for g in verdict.winners} == winner_rules
            assert {g.rule.name for g in verdict.blocked} == {"r1"}

    def test_blocked_without_trail_falls_back_to_provenance(self):
        result = paper("E3")
        result.trail = None  # ParkResult is not frozen
        verdict = Explainer(result).why_not("+q")
        assert verdict.kind == "blocked"
        assert str(verdict.winner) == "-q"
        assert [g.rule.name for g in verdict.winners] == ["r2"]
        assert verdict.epoch is None  # unknown without the trail

    def test_stale_conflict_through_explainer(self):
        # The del side of the conflict on a is provenance-completed (r1's
        # body is invalid by the time +a fires); inertia keeps a, so the
        # stale deriver r1 is the blocked instance and r3 the winner.
        result = park(STALE, "seed. a.", audit=True)
        verdict = Explainer(result).why_not("-a")
        assert verdict.kind == "blocked"
        assert [g.rule.name for g in verdict.blocked] == ["r1"]
        assert [g.rule.name for g in verdict.winners] == ["r3"]
        conflicts = [
            e for e in result.trail.to_events() if e["kind"] == "conflict"
        ]
        assert any(e.get("stale_side") == "dels" for e in conflicts)


class TestLost:
    def test_lost_in_restart(self):
        result = park(LOST, "p.", audit=True)
        verdict = Explainer(result).why_not("+b")
        assert verdict.kind == "lost"
        assert verdict.epoch == 1
        assert [g.rule.name for g in verdict.lost_derivers] == ["r2"]
        # ...and the follow-up explains why it never re-derived
        assert any("q does not hold" in r.detail for r in verdict.reasons)

    def test_lost_requires_trail(self):
        result = park(LOST, "p.")
        verdict = Explainer(result, program=_program(LOST)).why_not("+b")
        # Without epoch archives the loss is invisible; the verdict
        # degrades to the candidate-rule analysis.
        assert verdict.kind == "never-matched"


def _program(text):
    from repro.lang.parser import parse_program

    return parse_program(text)


class TestRefutedAndNeverMatched:
    def test_refuted_by_negation(self):
        result = park("@name(r1) not b -> +c.", "b.", audit=True)
        verdict = Explainer(result).why_not("+c")
        assert verdict.kind == "refuted"
        (reason,) = verdict.reasons
        assert reason.rule == "r1"
        assert "b holds" in reason.detail

    def test_refuted_with_variables(self):
        result = park(
            "@name(r1) edge(X, Y), not bad(Y) -> +reach(Y).",
            "edge(a, b). bad(b).",
            audit=True,
        )
        verdict = Explainer(result).why_not("+reach(b)")
        assert verdict.kind == "refuted"
        assert "bad(b) holds" in verdict.reasons[0].detail

    def test_never_matched_names_dead_literal(self):
        result = paper("E3")
        verdict = Explainer(result).why_not("-a")
        assert verdict.kind == "never-matched"
        (reason,) = verdict.reasons
        assert reason.rule == "r4"
        assert "q does not hold" in reason.detail

    def test_e5_event_never_occurred(self):
        # E5 (Section 4.3 ECA): r3 fires on +r(X); s(a) and s(b) are
        # deleted, but -s(c) needs an event +r(c) that never happened.
        result = paper("E5")
        verdict = Explainer(result).why_not("-s(c)")
        assert verdict.kind == "never-matched"
        (reason,) = verdict.reasons
        assert reason.rule == "r3"
        assert "event" in reason.detail

    def test_underivable(self):
        result = paper("E3")
        verdict = Explainer(result).why_not("+zzz")
        assert verdict.kind == "underivable"
        assert verdict.reasons == ()

    def test_unknown_without_program_or_trail(self):
        result = park("@name(r1) p -> +q.", "p.")
        verdict = Explainer(result).why_not("+r")
        assert verdict.kind == "unknown"


class TestSurface:
    def test_present_literal(self):
        result = paper("E3")
        verdict = Explainer(result).why_not("+a")
        assert verdict.kind == "present"

    def test_text_rendering_names_winner(self):
        result = paper("E3")
        text = Explainer(result).why_not_text("+q")
        assert "why not +q?" in text
        assert "SELECT chose delete" in text
        assert "(r2)" in text  # the winning side, by name
        assert "(r1)" in text  # the blocked instance

    def test_shorthand(self):
        result = paper("E3")
        assert "blocked" in why_not(result, "+q")

    def test_to_dict_is_json_ready(self):
        import json

        result = paper("E3")
        payload = Explainer(result).why_not("+q").to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["kind"] == "blocked"
        assert payload["winners"] == ["(r2)"]

    def test_bad_target_rejected(self):
        result = paper("E3")
        with pytest.raises(EngineError):
            Explainer(result).why_not("q")  # no +/- marker
