"""Tests for the trace recorder."""

import pytest

from repro.analysis.trace import TraceRecorder
from repro.core.engine import ParkEngine
from repro.lang.atoms import atom


def run_with_trace(program_text, facts_text, **options):
    recorder = TraceRecorder()
    engine = ParkEngine(listeners=[recorder], **options)
    result = engine.run(program_text, facts_text)
    return recorder, result


class TestRecording:
    def test_conflict_free_run(self):
        recorder, _ = run_with_trace("p -> +q. q -> +r.", "p.")
        rounds = recorder.rounds()
        assert len(rounds) == 2
        assert recorder.conflicts() == []
        assert recorder.events[-1].kind == "fixpoint"
        assert recorder.epochs() == 1

    def test_round_event_contents(self):
        recorder, _ = run_with_trace("p -> +q.", "p.")
        (round_event,) = recorder.rounds()
        assert [str(u) for u in round_event.new_updates] == ["+q"]
        unmarked, plus, minus = round_event.interpretation
        assert plus == frozenset({atom("q")})

    def test_conflict_event_contents(self):
        recorder, _ = run_with_trace(
            "@name(r1) p -> +a. @name(r2) p -> -a.", "p."
        )
        (conflict_event,) = recorder.conflicts()
        assert len(conflict_event.conflicts) == 1
        assert len(conflict_event.decisions) == 1
        assert {g.rule.name for g in conflict_event.blocked_added} == {"r1"}
        # the inconsistent Γ(I) the paper would print
        _, plus, minus = conflict_event.inconsistent_interpretation
        assert atom("a") in plus and atom("a") in minus

    def test_restart_events(self):
        recorder, _ = run_with_trace("@name(r1) p -> +a. @name(r2) p -> -a.", "p.")
        restarts = [e for e in recorder.events if e.kind == "restart"]
        assert len(restarts) == 1
        assert restarts[0].epoch == 2
        assert recorder.epochs() == 2

    def test_trace_attached_to_result(self):
        recorder, result = run_with_trace("p -> +q.", "p.")
        assert result.trace is recorder
        assert recorder.result is result

    def test_recorder_reusable(self):
        recorder = TraceRecorder()
        engine = ParkEngine(listeners=[recorder])
        engine.run("p -> +q.", "p.")
        first_len = len(recorder)
        engine.run("p -> +q. q -> +r.", "p.")
        assert len(recorder) != first_len or recorder.events  # reset happened
        assert len(recorder.rounds()) == 2

    def test_interpretations_list(self):
        recorder, _ = run_with_trace("p -> +q. q -> +r.", "p.")
        interps = recorder.interpretations()
        assert len(interps) == 2
        assert interps[0][1] == frozenset({atom("q")})
        assert interps[1][1] == frozenset({atom("q"), atom("r")})

    def test_database_snapshot_captured(self):
        recorder, _ = run_with_trace("p -> +q.", "p.")
        assert recorder.database.freeze() == frozenset({atom("p")})
        assert recorder.policy_name == "inertia"
