"""Tests for the markdown run-report generator."""

import pytest

from repro.analysis.report import report, save_report
from repro.analysis.trace import TraceRecorder
from repro.core.engine import ParkEngine, park

P1 = """
@name(r1) p -> +q.
@name(r2) p -> -a.
@name(r3) q -> +a.
"""


def traced_run(program=P1, facts="p."):
    recorder = TraceRecorder()
    result = ParkEngine(listeners=[recorder]).run(program, facts)
    return result, recorder


class TestReport:
    def test_sections_present(self):
        result, recorder = traced_run()
        text = report(result, recorder)
        for heading in ("# PARK run report", "## Outcome", "## Counters",
                        "## Blocked rule instances", "## Conflict decisions",
                        "## Trace", "## Inputs"):
            assert heading in text

    def test_outcome_facts(self):
        result, recorder = traced_run()
        text = report(result, recorder)
        assert "`{p, q}`" in text
        assert "policy: `inertia`" in text
        assert "(r3)" in text

    def test_uses_attached_trace_by_default(self):
        result, _ = traced_run()
        assert "## Trace" in report(result)  # result.trace set by recorder

    def test_without_trace_still_reports(self):
        result = park(P1, "p.")
        text = report(result)
        assert "## Outcome" in text
        assert "## Trace" not in text

    def test_include_trace_false(self):
        result, recorder = traced_run()
        text = report(result, recorder, include_trace=False)
        assert "## Trace" not in text
        assert "## Conflict decisions" in text

    def test_conflict_free_run_omits_conflict_sections(self):
        result, recorder = traced_run("p -> +q.", "p.")
        text = report(result, recorder)
        assert "## Blocked rule instances" not in text
        assert "## Conflict decisions" not in text

    def test_custom_title(self):
        result, recorder = traced_run()
        assert report(result, recorder, title="E1").startswith("# E1")

    def test_save_report(self, tmp_path):
        result, recorder = traced_run()
        path = tmp_path / "report.md"
        text = save_report(result, str(path), trace=recorder)
        assert path.read_text() == text


class TestTelemetrySection:
    def test_per_epoch_gamma_counts(self):
        result, recorder = traced_run()
        text = report(result, recorder)
        assert "## Telemetry" in text
        # P1 under inertia: epoch 1 ends in the a-conflict, epoch 2 runs
        # to the fixpoint with r3 blocked.
        assert "* epoch 1: Γ^" in text
        assert "ended in a conflict (restart from I∅)" in text
        assert "* epoch 2: Γ^" in text
        assert "reached the fixpoint Θ^ω" in text

    def test_metrics_render_phase_and_index_lines(self):
        from repro.obs import Metrics

        recorder = TraceRecorder()
        metrics = Metrics()
        result = ParkEngine(listeners=[recorder], metrics=metrics).run(
            "edge(X, Y) -> +path(X, Y). path(X, Y), edge(Y, Z) -> +path(X, Z).",
            "edge(a, b). edge(b, c).",
        )
        text = report(result, recorder)  # metrics picked up via result.metrics
        assert "| phase.match |" in text
        assert "* index lookups:" in text
        assert "* rule matching:" in text
        assert "* conflicts resolved: 0 across 0 restarts" in text

    def test_explicit_metrics_parameter(self):
        from repro.obs import Metrics

        metrics = Metrics()
        result = ParkEngine(metrics=metrics).run("p -> +q.", "p.")
        text = report(result, metrics=metrics)
        assert "| phase.match |" in text

    def test_no_telemetry_without_trace_or_metrics(self):
        result = park(P1, "p.")
        assert "## Telemetry" not in report(result)
