"""Tests for run comparison."""

import pytest

from repro.analysis.compare import compare_runs
from repro.core.engine import park
from repro.lang.atoms import atom
from repro.policies.priority import PriorityPolicy

SEC5 = """
@name(r1) @priority(1) p -> +a.
@name(r2) @priority(2) p -> +q.
@name(r3) @priority(3) a -> +b.
@name(r4) @priority(4) a -> -q.
@name(r5) @priority(5) b -> +q.
"""


@pytest.fixture
def two_runs():
    return {
        "inertia": park(SEC5, "p."),
        "priority": park(SEC5, "p.", policy=PriorityPolicy()),
    }


class TestCompareRuns:
    def test_unique_atoms(self, two_runs):
        comparison = compare_runs(two_runs)
        assert comparison.unique_atoms["inertia"] == frozenset()
        assert comparison.unique_atoms["priority"] == frozenset({atom("q")})

    def test_common_atoms(self, two_runs):
        comparison = compare_runs(two_runs)
        assert comparison.common_atoms == frozenset(
            {atom("p"), atom("a"), atom("b")}
        )

    def test_agreement_flag(self, two_runs):
        assert not compare_runs(two_runs).agreement()
        same = {"one": park(SEC5, "p."), "two": park(SEC5, "p.")}
        assert compare_runs(same).agreement()

    def test_blocked_rules_tracked(self, two_runs):
        comparison = compare_runs(two_runs)
        assert comparison.blocked_rules["inertia"] == ("r2", "r5")
        assert comparison.blocked_rules["priority"] == ("r2", "r4")

    def test_markdown_table(self, two_runs):
        text = compare_runs(two_runs).to_markdown()
        assert "| inertia |" in text
        assert "| priority |" in text
        assert "runs agree: False" in text
        assert "q" in text

    def test_needs_two_runs(self):
        with pytest.raises(ValueError):
            compare_runs({"only": park(SEC5, "p.")})

    def test_order_preserved(self, two_runs):
        comparison = compare_runs(two_runs)
        assert comparison.names == ("inertia", "priority")
