"""Tests for derivation explanations."""

import pytest

from repro.analysis.explain import Explainer, why
from repro.core.engine import park
from repro.core.result import ParkResult, RunStats
from repro.errors import EngineError
from repro.lang.atoms import atom
from repro.lang.updates import insert


class TestExplain:
    def test_chain_derivation(self):
        result = park("@name(r1) p -> +q. @name(r2) q -> +r.", "p.")
        node = Explainer(result).explain("+r")
        assert str(node.update) == "+r"
        (step,) = node.steps
        assert step.grounding.rule.name == "r2"
        (support,) = step.supports
        assert support.note == "derived"
        inner_step = support.child.steps[0]
        assert inner_step.grounding.rule.name == "r1"
        assert inner_step.supports[0].note == "base fact"

    def test_update_objects_accepted(self):
        result = park("p -> +q.", "p.")
        node = Explainer(result).explain(insert(atom("q")))
        assert node.steps

    def test_negation_support(self):
        result = park("@name(r1) p, not z -> +q.", "p.")
        node = Explainer(result).explain("+q")
        notes = [s.note for s in node.steps[0].supports]
        assert notes == ["base fact", "absent"]

    def test_negation_via_deletion_mark(self):
        result = park(
            "@name(killer) p -> -z. @name(r1) not z -> +q.", "p. z."
        )
        node = Explainer(result).explain("+q")
        (support,) = node.steps[0].supports
        assert support.note == "marked deleted"
        assert support.child.steps[0].grounding.rule.name == "killer"

    def test_event_support(self):
        result = park(
            "@name(r1) p -> +q. @name(r2) +q -> +r.", "p."
        )
        node = Explainer(result).explain("+r")
        (support,) = node.steps[0].supports
        assert support.note == "event"
        assert support.child.steps[0].grounding.rule.name == "r1"

    def test_multiple_derivations(self):
        result = park("@name(r1) p -> +q. @name(r2) s -> +q.", "p. s.")
        node = Explainer(result).explain("+q")
        assert {step.grounding.rule.name for step in node.steps} == {"r1", "r2"}

    def test_cycle_guard(self):
        result = park("@name(r1) p -> +q. @name(r2) q -> +q2. @name(r3) q2 -> +q.",
                      "p.")
        node = Explainer(result).explain("+q")
        # walking q -> q2 -> q must terminate with a cyclic marker
        text = Explainer(result).explain_text("+q")
        assert "[cycle]" in text or node.steps  # cycle cut somewhere inside

    def test_unknown_literal_rejected(self):
        result = park("p -> +q.", "p.")
        with pytest.raises(EngineError, match="not in the final"):
            Explainer(result).explain("+zzz")

    def test_bad_target_strings(self):
        result = park("p -> +q.", "p.")
        with pytest.raises(EngineError, match="marked literals"):
            Explainer(result).explain("q")

    def test_requires_provenance(self):
        bare = ParkResult(
            database=None, delta=None, interpretation=None,
            blocked=frozenset(), stats=RunStats(), policy_name="x",
        )
        with pytest.raises(EngineError, match="no provenance"):
            Explainer(bare)


class TestWhy:
    def test_text_outline(self):
        result = park("@name(r1) p -> +q.", "p.")
        text = why(result, "+q")
        lines = text.splitlines()
        assert lines[0] == "+q"
        assert "by (r1)" in lines[1]
        assert "base fact" in lines[2]
