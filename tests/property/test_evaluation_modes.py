"""The three Γ evaluation strategies are observationally identical.

``naive`` recomputes every rule's firings each round; ``seminaive``
delta-matches the purely positive fragment; ``incremental`` additionally
delta-matches event literals and skips negation-bearing rules whose body
marks were untouched.  All three must produce **bit-identical**
observable behaviour — per-round firings, recorded traces, blocked sets,
statistics, and final databases — for random safe programs (with events,
negation, and deletes), random transactions, every policy, and both
blocking modes.  Any divergence is an evaluation-strategy bug by
construction, since ``naive`` is the paper's definition transcribed.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.property import strategies as strat

from repro.analysis.trace import TraceRecorder
from repro.core.blocking import BlockingMode
from repro.core.engine import EngineListener, ParkEngine
from repro.errors import NonTerminationError
from repro.lang.atoms import Atom
from repro.lang.updates import Update, UpdateOp

RELAXED = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

STRATEGIES = ("naive", "seminaive", "incremental")


def _make_policy(name):
    from repro.policies.composite import ConstantPolicy
    from repro.policies.inertia import InertiaPolicy
    from repro.policies.priority import PriorityPolicy

    if name == "inertia":
        return InertiaPolicy()
    if name == "priority":
        return PriorityPolicy()
    return ConstantPolicy(name)


class FiringsRecorder(EngineListener):
    """Captures every round's raw firings map, including inconsistent rounds."""

    def __init__(self):
        self.rounds = []

    def on_round(self, round_number, epoch, gamma_result):
        self.rounds.append((round_number, epoch, gamma_result.firings))


@st.composite
def scenarios(draw):
    """A random program + database + ground transaction updates."""
    program, database = draw(strat.program_database_pairs())
    arities = sorted(program.predicates())
    updates = []
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        predicate, arity = draw(st.sampled_from(arities))
        row = tuple(draw(strat.constants) for _ in range(arity))
        op = draw(st.sampled_from([UpdateOp.INSERT, UpdateOp.DELETE]))
        updates.append(Update(op, Atom(predicate, row)))
    return program, database, tuple(updates)


def _run(strategy, program, database, updates, policy_name, blocking):
    firings = FiringsRecorder()
    trace = TraceRecorder()
    engine = ParkEngine(
        policy=_make_policy(policy_name),
        blocking_mode=blocking,
        listeners=(trace, firings),
        evaluation=strategy,
    )
    result = engine.run(program, database, updates=updates)
    return result, tuple(trace.events), tuple(firings.rounds)


@given(
    scenario=scenarios(),
    policy_name=st.sampled_from(["inertia", "priority", "insert", "delete"]),
    blocking=st.sampled_from([BlockingMode.ALL, BlockingMode.MINIMAL]),
)
@RELAXED
def test_strategies_bit_identical(scenario, policy_name, blocking):
    program, database, updates = scenario
    outcomes = {}
    failures = {}
    for strategy in STRATEGIES:
        try:
            outcomes[strategy] = _run(
                strategy, program, database, updates, policy_name, blocking
            )
        except NonTerminationError as error:
            # A policy that cannot make progress must fail identically
            # under every strategy.
            failures[strategy] = str(error)
    if failures:
        assert set(failures) == set(STRATEGIES), (failures, outcomes)
        assert len(set(failures.values())) == 1, failures
        return

    base_result, base_trace, base_firings = outcomes["naive"]
    for strategy in STRATEGIES[1:]:
        result, trace, firings = outcomes[strategy]
        assert firings == base_firings, strategy
        assert trace == base_trace, strategy
        assert result.blocked == base_result.blocked, strategy
        assert result.atoms == base_result.atoms, strategy
        assert result.delta.inserts == base_result.delta.inserts, strategy
        assert result.delta.deletes == base_result.delta.deletes, strategy
        assert result.stats.rounds == base_result.stats.rounds, strategy
        assert result.stats.restarts == base_result.stats.restarts, strategy
        assert (
            result.stats.conflicts_resolved
            == base_result.stats.conflicts_resolved
        ), strategy
        assert (
            result.stats.firings_total == base_result.stats.firings_total
        ), strategy


@given(scenario=scenarios())
@RELAXED
def test_firing_counts_match_without_listeners(scenario):
    """``stats.firings_total`` is identical with and without listeners
    attached — the listener-free path uses the evaluators' incremental
    counters instead of re-summing the firings map."""
    program, database, updates = scenario
    for strategy in STRATEGIES:
        try:
            silent = ParkEngine(evaluation=strategy).run(
                program, database, updates=updates
            )
            listened = ParkEngine(
                evaluation=strategy, listeners=(TraceRecorder(),)
            ).run(program, database, updates=updates)
        except NonTerminationError:
            continue
        assert silent.stats.firings_total == listened.stats.firings_total
        assert silent.atoms == listened.atoms
