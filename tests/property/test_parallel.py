"""Parallel Γ collection is observationally identical to sequential.

The PARK Γ operator collects every firing against a *fixed*
interpretation, so partitioning the outer candidate scan across worker
processes (:mod:`repro.engine.parallel`) and merging the per-shard
firing sets must be a pure implementation detail: for every random
program, database, and update transaction, an engine run with
``parallel=N`` workers must be bit-identical to the sequential run —
per-round firings, traces, blocked sets, statistics, deltas, and final
databases — across all three Γ evaluation strategies and both storage
layouts.  A second property checks the sharding primitive itself:
:func:`~repro.storage.relation.stable_row_shard` partitions (disjoint
shards that cover the relation) identically under both layouts.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.property import strategies as strat
from tests.property.test_storage_backends import (
    FiringsRecorder,
    _with_storage,
    engine_scenarios,
)

from repro.analysis.trace import TraceRecorder
from repro.core.engine import ParkEngine
from repro.errors import NonTerminationError
from repro.storage.relation import (
    ColumnarRelation,
    Relation,
    stable_row_shard,
)

RELAXED = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

STORAGES = ("row", "columnar")
STRATEGIES = ("naive", "seminaive", "incremental")


def _run_engine(strategy, program, database, updates, parallel):
    firings = FiringsRecorder()
    trace = TraceRecorder()
    engine = ParkEngine(
        listeners=(trace, firings),
        evaluation=strategy,
        parallel=parallel,
    )
    result = engine.run(program, database, updates=updates)
    return result, tuple(trace.events), tuple(firings.rounds)


@given(
    scenario=engine_scenarios(),
    strategy=st.sampled_from(STRATEGIES),
    storage=st.sampled_from(STORAGES),
)
@RELAXED
def test_parallel_runs_bit_identical_to_sequential(scenario, strategy, storage):
    program, database, updates = scenario
    outcomes = {}
    failures = {}
    for workers in (0, 2):
        try:
            outcomes[workers] = _with_storage(
                storage,
                "interpreted",
                lambda: _run_engine(
                    strategy, program, database, updates, workers
                ),
            )
        except NonTerminationError as error:
            failures[workers] = str(error)
    if failures:
        assert set(failures) == {0, 2}, (failures, outcomes)
        assert len(set(failures.values())) == 1, failures
        return

    base_result, base_trace, base_firings = outcomes[0]
    result, trace, firings = outcomes[2]
    assert firings == base_firings
    assert trace == base_trace
    assert result.blocked == base_result.blocked
    assert result.atoms == base_result.atoms
    assert result.delta.inserts == base_result.delta.inserts
    assert result.delta.deletes == base_result.delta.deletes
    assert result.stats.rounds == base_result.stats.rounds
    assert result.stats.restarts == base_result.stats.restarts
    assert result.stats.firings_total == base_result.stats.firings_total


# -- sharding primitive ------------------------------------------------------------

_VALUES = ("a", "b", "c", 1, 2, -7, "dd")


@st.composite
def relation_contents(draw):
    arity = draw(st.integers(min_value=0, max_value=3))
    rows = draw(
        st.lists(
            st.tuples(*[st.sampled_from(_VALUES)] * arity),
            max_size=30,
        )
    )
    nshards = draw(st.integers(min_value=1, max_value=5))
    return arity, rows, nshards


@given(relation_contents())
@RELAXED
def test_partition_is_disjoint_and_covers_both_layouts(contents):
    arity, rows, nshards = contents
    row_rel = Relation("r", arity)
    col_rel = ColumnarRelation("r", arity)
    for row in rows:
        row_rel.add(row)
        col_rel.add(row)

    # Each layout shards in its own row dialect (raw tuples vs intern
    # ids), so the *partitions* may differ across layouts — what must
    # hold for both is disjointness and coverage.
    for relation in (row_rel, col_rel):
        shards = [set(part.rows()) for part in relation.partition(nshards)]
        assert len(shards) == nshards
        # Disjoint: each row lands in exactly one shard...
        assert sum(len(shard) for shard in shards) == len(relation)
        # ...and together they cover the relation.
        union = set().union(*shards) if shards else set()
        assert union == set(relation.rows())

    # The row layout's native dialect IS raw tuples: the shard a row
    # lands in is exactly the one stable_row_shard names.
    for index, part in enumerate(row_rel.partition(nshards)):
        for row in part.rows():
            assert stable_row_shard(row, nshards) == index


def test_stable_row_shard_is_process_stable():
    # The shard function must not depend on PYTHONHASHSEED-salted
    # ``hash()`` — workers in other processes recompute it.  Pin a few
    # known values so any accidental reliance on builtin hashing of
    # strings shows up as a cross-run flake immediately.
    assert stable_row_shard((), 1) == 0
    for nshards in (1, 2, 3, 7):
        for row in [("a",), ("a", "b"), (1, 2, 3), ("x", 9)]:
            shard = stable_row_shard(row, nshards)
            assert 0 <= shard < nshards
            assert stable_row_shard(row, nshards) == shard
