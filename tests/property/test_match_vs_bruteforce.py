"""The indexed matcher agrees with brute-force grounding + validity.

This is the correctness anchor for the whole evaluation engine: for every
(rule, interpretation) pair, the set of substitutions the backtracking
matcher produces must equal the set obtained by enumerating *all* ground
substitutions over the Herbrand universe and checking validity literal by
literal with the paper's definition.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.property import strategies as strat

from repro.core.interpretation import IInterpretation
from repro.core.validity import InterpretationView, rule_instance_valid
from repro.engine.grounder import ground_substitutions, herbrand_universe
from repro.engine.match import match_rule
from repro.lang.program import Program
from repro.storage.database import Database

RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def matching_scenarios(draw):
    """A safe rule + an i-interpretation over a tiny constant universe."""
    program, database = draw(
        strat.program_database_pairs(max_rules=1, max_facts=6)
    )
    (rule,) = program
    interpretation = IInterpretation.from_database(database)
    arities = {}
    for predicate, arity in rule.predicates():
        arities[predicate] = arity
    for atom in database.atoms():
        arities[atom.predicate] = atom.arity
    # Mark a few atoms +/- over the same predicates.
    from repro.lang.atoms import Atom
    from repro.lang.terms import Constant
    from repro.lang.updates import UpdateOp, Update

    names = sorted(arities)
    for _ in range(draw(st.integers(min_value=0, max_value=5))):
        predicate = draw(st.sampled_from(names))
        row = tuple(
            Constant(draw(st.sampled_from(["a", "b", "c"])))
            for _ in range(arities[predicate])
        )
        op = draw(st.sampled_from([UpdateOp.INSERT, UpdateOp.DELETE]))
        interpretation.add_update(Update(op, Atom(predicate, row)))
    return rule, interpretation


@given(matching_scenarios())
@RELAXED
def test_matcher_equals_bruteforce(scenario):
    rule, interpretation = scenario
    view = InterpretationView(interpretation)
    matched = set(match_rule(rule, view))

    # Brute force over the joint universe of rule, unmarked, plus, minus.
    program = Program((rule,))
    joint = Database()
    for store in (
        interpretation.unmarked,
        interpretation.plus,
        interpretation.minus,
    ):
        for atom in store.atoms():
            joint.add(atom)
    universe = herbrand_universe(program, joint)
    if not universe:
        from repro.lang.terms import Constant

        universe = [Constant("a")]

    expected = {
        substitution
        for substitution in ground_substitutions(rule, universe)
        if rule_instance_valid(rule, substitution, interpretation)
    }
    assert matched == expected


@given(matching_scenarios())
@RELAXED
def test_matcher_yields_unique_substitutions(scenario):
    rule, interpretation = scenario
    view = InterpretationView(interpretation)
    found = list(match_rule(rule, view))
    assert len(found) == len(set(found))
