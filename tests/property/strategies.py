"""Hypothesis strategies for language objects and safe programs."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.lang.atoms import Atom
from repro.lang.literals import Condition, Event, neg, pos
from repro.lang.program import Program
from repro.lang.rules import Rule
from repro.lang.terms import Constant, Variable
from repro.lang.updates import Update, UpdateOp, delete, insert

# -- terms ---------------------------------------------------------------------

variable_names = st.from_regex(r"[A-Z][a-z0-9_]{0,4}", fullmatch=True)
predicate_names = st.from_regex(r"[a-z][a-z0-9_]{0,5}", fullmatch=True)
symbol_values = st.from_regex(r"[a-z][a-z0-9_]{0,5}", fullmatch=True)
string_values = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    min_size=0,
    max_size=8,
).filter(lambda s: "\n" not in s)

variables = st.builds(Variable, variable_names)
constants = st.one_of(
    st.builds(Constant, symbol_values),
    st.builds(Constant, st.integers(min_value=-999, max_value=999)),
    st.builds(Constant, string_values),
)
terms = st.one_of(variables, constants)


def atoms(term_strategy=terms, max_arity=3):
    return st.builds(
        Atom,
        predicate_names,
        st.lists(term_strategy, max_size=max_arity).map(tuple),
    )


ground_atoms = atoms(term_strategy=constants)

# -- literals / updates -----------------------------------------------------------

updates = st.builds(
    Update, st.sampled_from([UpdateOp.INSERT, UpdateOp.DELETE]), atoms()
)
ground_updates = st.builds(
    Update, st.sampled_from([UpdateOp.INSERT, UpdateOp.DELETE]), ground_atoms
)
literals = st.one_of(
    st.builds(pos, atoms()),
    st.builds(neg, atoms()),
    st.builds(Event, updates),
)

# -- safe rules --------------------------------------------------------------------


@st.composite
def safe_rules(draw, max_body=3, allow_events=True, allow_deletes=True):
    """Random rules guaranteed to satisfy the Section 2 safety conditions."""
    body = []
    binding_vars = []
    body_size = draw(st.integers(min_value=0, max_value=max_body))

    for index in range(body_size):
        arity = draw(st.integers(min_value=0, max_value=2))
        literal_terms = []
        for _ in range(arity):
            if binding_vars and draw(st.booleans()):
                literal_terms.append(draw(st.sampled_from(binding_vars)))
            elif draw(st.booleans()):
                literal_terms.append(draw(constants))
            else:
                fresh = Variable("V%d" % len(binding_vars))
                binding_vars.append(fresh)
                literal_terms.append(fresh)
        atom_obj = Atom(draw(predicate_names), tuple(literal_terms))

        kinds = ["pos"]
        if binding_vars and atom_obj.variables() <= set(binding_vars):
            # negation only over already-bound variables; but a literal that
            # minted fresh vars above would bind them, so restrict to
            # reuse-only atoms for negation.
            pass
        if allow_events:
            kinds.append("event")
        kind = draw(st.sampled_from(kinds))
        if kind == "pos":
            body.append(pos(atom_obj))
        else:
            op = draw(st.sampled_from([UpdateOp.INSERT, UpdateOp.DELETE]))
            body.append(Event(Update(op, atom_obj)))

    # Optionally add one negated literal over bound variables only.
    if binding_vars and draw(st.booleans()):
        count = draw(st.integers(min_value=0, max_value=min(2, len(binding_vars))))
        neg_terms = tuple(
            draw(st.sampled_from(binding_vars)) for _ in range(count)
        )
        body.append(neg(Atom(draw(predicate_names), neg_terms)))

    head_arity = draw(st.integers(min_value=0, max_value=2))
    head_terms = []
    for _ in range(head_arity):
        if binding_vars and draw(st.booleans()):
            head_terms.append(draw(st.sampled_from(binding_vars)))
        else:
            head_terms.append(draw(constants))
    head_atom = Atom(draw(predicate_names), tuple(head_terms))
    if allow_deletes and draw(st.booleans()):
        head = delete(head_atom)
    else:
        head = insert(head_atom)
    return Rule(head=head, body=tuple(body))


@st.composite
def arity_consistent_programs(draw, max_rules=5, **rule_options):
    """Safe programs whose predicates also have consistent arities."""
    rules = draw(
        st.lists(safe_rules(**rule_options), min_size=1, max_size=max_rules)
    )
    arities = {}
    kept = []
    for rule in rules:
        consistent = True
        staged = {}
        for predicate, arity in rule.predicates():
            known = arities.get(predicate, staged.get(predicate))
            if known is None:
                staged[predicate] = arity
            elif known != arity:
                consistent = False
                break
        if consistent:
            arities.update(staged)
            kept.append(rule)
    if not kept:
        # Every candidate clashed (possibly within a single rule); fall back
        # to a minimal trivial program so downstream strategies always get
        # something valid.
        fallback = Rule(head=insert(Atom("p0")), body=(pos(Atom("q0")),))
        kept = [fallback]
        arities = {"p0": 0, "q0": 0}
    return Program(tuple(kept)), arities


@st.composite
def program_database_pairs(draw, max_facts=10, **program_options):
    """A safe program plus a random database with matching arities."""
    from repro.storage.database import Database

    program, arities = draw(arity_consistent_programs(**program_options))
    database = Database()
    names = sorted(arities)
    for _ in range(draw(st.integers(min_value=0, max_value=max_facts))):
        predicate = draw(st.sampled_from(names))
        row = tuple(draw(constants) for _ in range(arities[predicate]))
        database.add(Atom(predicate, row))
    return program, database
