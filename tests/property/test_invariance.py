"""Order-invariance properties of the semantics.

``Γ`` applies all rules in parallel and conflicts are resolved in a
canonical (atom-sorted) order, so the PARK result must be invariant
under:

* permuting the literals inside a rule body (the planner may choose a
  different join order, but the valid groundings are the same set);
* permuting the rules of the program (rule identity, not position,
  matters — priorities travel with the rule).

These catch a whole class of implementation bugs (accidental dependence
on iteration order, hash order, or plan order).
"""

import random as stdlib_random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.property import strategies as strat

from repro.core.engine import park
from repro.lang.program import Program
from repro.lang.rules import Rule

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _shuffle_body(rule, seed):
    body = list(rule.body)
    stdlib_random.Random(seed).shuffle(body)
    return Rule(
        head=rule.head, body=tuple(body), name=rule.name, priority=rule.priority
    )


@given(pair=strat.program_database_pairs(), seed=st.integers(0, 1000))
@RELAXED
def test_body_order_irrelevant(pair, seed):
    program, database = pair
    shuffled = Program(tuple(_shuffle_body(r, seed + i) for i, r in enumerate(program)))
    original = park(program, database)
    permuted = park(shuffled, database)
    assert original.atoms == permuted.atoms
    # blocked sets contain rule objects whose bodies differ textually, so
    # compare by (rule index is gone) — head+substitution suffices here:
    original_blocked = {
        (str(g.rule.head), str(g.substitution)) for g in original.blocked
    }
    permuted_blocked = {
        (str(g.rule.head), str(g.substitution)) for g in permuted.blocked
    }
    assert original_blocked == permuted_blocked


@given(pair=strat.program_database_pairs(), seed=st.integers(0, 1000))
@RELAXED
def test_rule_order_irrelevant(pair, seed):
    program, database = pair
    rules = list(program)
    stdlib_random.Random(seed).shuffle(rules)
    shuffled = Program(tuple(rules))
    assert park(program, database).atoms == park(shuffled, database).atoms


@given(pair=strat.program_database_pairs())
@RELAXED
def test_duplicate_rules_irrelevant(pair):
    """Adding a syntactic copy of every rule changes nothing: groundings
    of equal rules are equal objects, so conflicts and blocking collapse."""
    program, database = pair
    doubled = Program(tuple(program) + tuple(program))
    assert park(program, database).atoms == park(doubled, database).atoms
