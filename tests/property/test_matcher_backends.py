"""The compiled and interpreted matcher backends are observationally identical.

The slot compiler (:mod:`repro.engine.compiler`) lowers rule bodies to
register-machine programs with composite-index lookups; the interpreted
backtracking matcher is the reference oracle.  For every (rule, view) the
two must produce the same substitution *set* (duplicates may differ in
multiplicity when an atom is both unmarked and ``+``-marked — consumers
are set-based), the same fireable heads, and — end to end — bit-identical
engine behaviour: per-round firings, traces, blocked sets, statistics,
and final databases, across random programs, transactions, policies,
blocking modes, and all three Γ evaluation strategies.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.property import strategies as strat

from repro.analysis.trace import TraceRecorder
from repro.core.blocking import BlockingMode
from repro.core.engine import EngineListener, ParkEngine
from repro.core.interpretation import IInterpretation
from repro.core.validity import InterpretationView
from repro.engine.match import (
    clear_compile_cache,
    fireable_heads,
    get_matcher_backend,
    match_body_once,
    match_rule,
    set_matcher_backend,
)
from repro.errors import NonTerminationError
from repro.lang.atoms import Atom
from repro.lang.terms import Constant
from repro.lang.updates import Update, UpdateOp

RELAXED = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

BACKENDS = ("interpreted", "compiled")
STRATEGIES = ("naive", "seminaive", "incremental")


def _with_backend(backend, thunk):
    previous = get_matcher_backend()
    set_matcher_backend(backend)
    clear_compile_cache()
    try:
        return thunk()
    finally:
        set_matcher_backend(previous)


def _make_policy(name):
    from repro.policies.composite import ConstantPolicy
    from repro.policies.inertia import InertiaPolicy
    from repro.policies.priority import PriorityPolicy

    if name == "inertia":
        return InertiaPolicy()
    if name == "priority":
        return PriorityPolicy()
    return ConstantPolicy(name)


class FiringsRecorder(EngineListener):
    def __init__(self):
        self.rounds = []

    def on_round(self, round_number, epoch, gamma_result):
        self.rounds.append((round_number, epoch, gamma_result.firings))


@st.composite
def matching_scenarios(draw):
    """A safe rule + an i-interpretation with random +/- marks."""
    program, database = draw(
        strat.program_database_pairs(max_rules=1, max_facts=6)
    )
    (rule,) = program
    interpretation = IInterpretation.from_database(database)
    arities = {}
    for predicate, arity in rule.predicates():
        arities[predicate] = arity
    for atom in database.atoms():
        arities[atom.predicate] = atom.arity
    names = sorted(arities)
    for _ in range(draw(st.integers(min_value=0, max_value=5))):
        predicate = draw(st.sampled_from(names))
        row = tuple(
            Constant(draw(st.sampled_from(["a", "b", "c"])))
            for _ in range(arities[predicate])
        )
        op = draw(st.sampled_from([UpdateOp.INSERT, UpdateOp.DELETE]))
        interpretation.add_update(Update(op, Atom(predicate, row)))
    return rule, interpretation


@given(matching_scenarios())
@RELAXED
def test_backends_identical_substitution_sets(scenario):
    rule, interpretation = scenario
    results = {}
    for backend in BACKENDS:
        view = InterpretationView(interpretation)
        results[backend] = _with_backend(
            backend, lambda: set(match_rule(rule, view))
        )
    assert results["compiled"] == results["interpreted"]


@given(matching_scenarios())
@RELAXED
def test_backends_identical_fireable_heads(scenario):
    rule, interpretation = scenario
    heads = {}
    once = {}
    for backend in BACKENDS:
        view = InterpretationView(interpretation)
        heads[backend] = _with_backend(
            backend, lambda: sorted(fireable_heads(rule, view), key=str)
        )
        once[backend] = _with_backend(
            backend, lambda: match_body_once(rule, view)
        )
    assert heads["compiled"] == heads["interpreted"]
    assert once["compiled"] == once["interpreted"]


@st.composite
def engine_scenarios(draw):
    program, database = draw(strat.program_database_pairs())
    arities = sorted(program.predicates())
    updates = []
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        predicate, arity = draw(st.sampled_from(arities))
        row = tuple(draw(strat.constants) for _ in range(arity))
        op = draw(st.sampled_from([UpdateOp.INSERT, UpdateOp.DELETE]))
        updates.append(Update(op, Atom(predicate, row)))
    return program, database, tuple(updates)


def _run_engine(strategy, program, database, updates, policy_name, blocking):
    firings = FiringsRecorder()
    trace = TraceRecorder()
    engine = ParkEngine(
        policy=_make_policy(policy_name),
        blocking_mode=blocking,
        listeners=(trace, firings),
        evaluation=strategy,
    )
    result = engine.run(program, database, updates=updates)
    return result, tuple(trace.events), tuple(firings.rounds)


@given(
    scenario=engine_scenarios(),
    strategy=st.sampled_from(STRATEGIES),
    policy_name=st.sampled_from(["inertia", "priority", "insert", "delete"]),
    blocking=st.sampled_from([BlockingMode.ALL, BlockingMode.MINIMAL]),
)
@RELAXED
def test_backends_bit_identical_engine_runs(
    scenario, strategy, policy_name, blocking
):
    program, database, updates = scenario
    outcomes = {}
    failures = {}
    for backend in BACKENDS:
        try:
            outcomes[backend] = _with_backend(
                backend,
                lambda: _run_engine(
                    strategy, program, database, updates, policy_name, blocking
                ),
            )
        except NonTerminationError as error:
            failures[backend] = str(error)
    if failures:
        assert set(failures) == set(BACKENDS), (failures, outcomes)
        assert len(set(failures.values())) == 1, failures
        return

    base_result, base_trace, base_firings = outcomes["interpreted"]
    result, trace, firings = outcomes["compiled"]
    assert firings == base_firings
    assert trace == base_trace
    assert result.blocked == base_result.blocked
    assert result.atoms == base_result.atoms
    assert result.delta.inserts == base_result.delta.inserts
    assert result.delta.deletes == base_result.delta.deletes
    assert result.stats.rounds == base_result.stats.rounds
    assert result.stats.restarts == base_result.stats.restarts
    assert result.stats.conflicts_resolved == base_result.stats.conflicts_resolved
    assert result.stats.firings_total == base_result.stats.firings_total
