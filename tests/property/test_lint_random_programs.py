"""Lint agrees with the runtime on every random workload program.

The property of the satellite task: every program out of
``workloads/random_programs.py`` either lints clean (no error-severity
diagnostics — and then the strict parser and the engine accept it), or
lint's error diagnostics predict exactly the error class the strict
parser raises.  Corrupted variants (unbound head variables, dangling
negated variables) exercise the prediction side.
"""

import pytest

from repro.errors import SafetyError
from repro.lang import parse_program, render_program
from repro.lang.literals import neg
from repro.lang.rules import Rule
from repro.lang.terms import Variable
from repro.lint import analyze_text, severity_of
from repro.workloads.random_programs import ProgramGenerator, random_workload

SEEDS = range(12)

#: Diagnostic code -> error class the strict toolchain raises for it.
PREDICTED_ERRORS = {
    "PARK002": SafetyError,
    "PARK003": SafetyError,
}


def lint_errors(text):
    report = analyze_text(text)
    return [d for d in report.diagnostics if d.severity == "error"]


class TestGeneratedProgramsLintClean:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_clean_and_runnable(self, seed):
        workload = random_workload(
            seed, event_probability=0.2, delete_head_probability=0.3
        )
        text = render_program(workload.program)
        errors = lint_errors(text)
        assert errors == [], [d.format() for d in errors]
        # lint clean => the strict parser accepts the very same text
        reparsed = parse_program(text)
        assert len(reparsed) == len(workload.program)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_clean_under_eventful_generation(self, seed):
        generator = ProgramGenerator(seed=seed, event_probability=0.5)
        text = render_program(generator.program(10))
        assert lint_errors(text) == []


def _corrupt_head(rule):
    """Widen the head with a fresh variable: breaks safety condition 1."""
    fresh = Variable("Zfresh")
    head = rule.head
    atom = head.atom
    new_atom = type(atom)(atom.predicate + "_c", atom.terms + (fresh,))
    return Rule.__new_unchecked__(
        type(head)(head.op, new_atom), rule.body, rule.name, rule.priority
    )


def _corrupt_negation(rule):
    """Append a negated literal over a fresh variable: breaks condition 2."""
    fresh = Variable("Zfresh")
    extra = neg(type(rule.head.atom)("dangling", (fresh,)))
    return Rule.__new_unchecked__(
        rule.head, rule.body + (extra,), rule.name, rule.priority
    )


class TestLintPredictsRuntimeErrors:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("corrupt", [_corrupt_head, _corrupt_negation])
    def test_error_class_predicted(self, seed, corrupt):
        program = ProgramGenerator(seed=seed).program(6)
        rules = list(program)
        rules[seed % len(rules)] = corrupt(rules[seed % len(rules)])
        text = "\n".join(render_program(type(program)(tuple(rules))).splitlines())
        errors = lint_errors(text)
        assert errors, "corruption must produce an error diagnostic"
        predicted = {PREDICTED_ERRORS[d.code] for d in errors}
        assert len(predicted) == 1
        with pytest.raises(tuple(predicted)):
            parse_program(text)

    def test_every_registered_error_code_has_error_severity(self):
        for code in PREDICTED_ERRORS:
            assert severity_of(code) == "error"
