"""Property tests on the core data structures' invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.property import strategies as strat

from repro.core.interpretation import IInterpretation
from repro.errors import StorageError
from repro.lang.substitution import Substitution
from repro.lang.updates import UpdateOp
from repro.storage.database import Database
from repro.storage.delta import Delta


def _arity_consistent(atoms_list):
    arities = {}
    kept = []
    for atom in atoms_list:
        known = arities.get(atom.predicate)
        if known is None:
            arities[atom.predicate] = atom.arity
            kept.append(atom)
        elif known == atom.arity:
            kept.append(atom)
    return kept


ground_atom_lists = st.lists(strat.ground_atoms, max_size=12).map(_arity_consistent)


class TestDatabaseProperties:
    @given(ground_atom_lists)
    def test_add_is_idempotent(self, atoms_list):
        db = Database(atoms_list)
        size = len(db)
        db.update(atoms_list)
        assert len(db) == size

    @given(ground_atom_lists)
    def test_freeze_equals_contents(self, atoms_list):
        db = Database(atoms_list)
        assert db.freeze() == frozenset(atoms_list)

    @given(ground_atom_lists)
    def test_copy_equal_but_independent(self, atoms_list):
        db = Database(atoms_list)
        clone = db.copy()
        assert clone == db
        for atom in list(clone.atoms()):
            clone.remove(atom)
        assert db.freeze() == frozenset(atoms_list)

    @given(ground_atom_lists, ground_atom_lists)
    def test_diff_apply_identity(self, before_atoms, after_atoms):
        before = Database(_arity_consistent(before_atoms + after_atoms)[: len(before_atoms)])
        # Build an arity-consistent 'after' over the same catalog universe.
        after = Database(_arity_consistent(before_atoms + after_atoms))
        delta = Delta.diff(before, after)
        assert delta.apply(before) == after


class TestDeltaProperties:
    @given(ground_atom_lists, st.integers(min_value=0, max_value=12))
    def test_composition_associative_on_application(self, atoms_list, split):
        from repro.lang.updates import insert

        xs = atoms_list[: split % (len(atoms_list) + 1)]
        ys = atoms_list[split % (len(atoms_list) + 1):]
        d1 = Delta([insert(a) for a in xs])
        d2 = Delta([insert(a) for a in ys])
        db = Database()
        assert d1.then(d2).apply(db) == d2.apply(d1.apply(db))

    @given(ground_atom_lists)
    def test_invert_twice_identity(self, atoms_list):
        from repro.lang.updates import insert

        delta = Delta([insert(a) for a in atoms_list])
        assert delta.invert().invert() == delta


class TestInterpretationProperties:
    @given(ground_atom_lists, st.lists(strat.ground_updates, max_size=10))
    def test_consistency_detection_matches_definition(self, atoms_list, updates):
        interpretation = IInterpretation.from_database(Database(atoms_list))
        for update in updates:
            try:
                interpretation.add_update(update)
            except Exception:
                pass  # arity clash with base data; irrelevant here
        _, plus, minus = interpretation.freeze()
        assert interpretation.is_consistent() == (not (plus & minus))
        assert set(interpretation.conflicting_atoms()) == plus & minus

    @given(ground_atom_lists)
    def test_restart_drops_all_marks(self, atoms_list):
        from repro.lang.updates import insert

        interpretation = IInterpretation.from_database(Database())
        for atom in atoms_list:
            interpretation.add_update(insert(atom))
        fresh = interpretation.restarted()
        assert fresh.marked_count() == 0


class TestSubstitutionProperties:
    @given(st.dictionaries(strat.variables, strat.constants, max_size=5))
    def test_hash_equality_contract(self, bindings):
        s1 = Substitution(bindings)
        s2 = Substitution(dict(bindings))
        assert s1 == s2
        assert hash(s1) == hash(s2)

    @given(
        st.dictionaries(strat.variables, strat.constants, max_size=4),
        st.dictionaries(strat.variables, strat.constants, max_size=4),
    )
    def test_merge_commutative_when_defined(self, a, b):
        s1, s2 = Substitution(a), Substitution(b)
        left = s1.merge(s2)
        right = s2.merge(s1)
        assert left == right
