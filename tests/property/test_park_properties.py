"""Property-based tests of the PARK semantics itself.

These encode the Section 3 requirements as executable properties over
randomly generated safe programs:

* unambiguous semantics — PARK is a deterministic function of its input;
* termination — every run reaches a fixpoint (no budget needed);
* consistency — the final i-interpretation is consistent, so ``incorp``
  is defined;
* unchanged base — ``I∅`` equals the input database at the fixpoint;
* conflict-freedom degeneration — insert-only programs never restart and
  agree with the inflationary semantics.
"""

from hypothesis import HealthCheck, given, settings

from tests.property import strategies as strat

from repro.baselines.inflationary import inflationary_fixpoint
from repro.core.blocking import BlockingMode
from repro.core.engine import park

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestRequirements:
    @given(strat.program_database_pairs())
    @RELAXED
    def test_terminates_and_is_consistent(self, pair):
        program, database = pair
        result = park(program, database)
        assert result.interpretation.is_consistent()

    @given(strat.program_database_pairs())
    @RELAXED
    def test_deterministic(self, pair):
        program, database = pair
        assert park(program, database).atoms == park(program, database).atoms

    @given(strat.program_database_pairs())
    @RELAXED
    def test_unmarked_part_is_input_database(self, pair):
        program, database = pair
        result = park(program, database)
        assert result.interpretation.unmarked == database

    @given(strat.program_database_pairs())
    @RELAXED
    def test_input_database_never_mutated(self, pair):
        program, database = pair
        before = database.freeze()
        park(program, database)
        assert database.freeze() == before

    @given(strat.program_database_pairs())
    @RELAXED
    def test_delta_matches_database_change(self, pair):
        program, database = pair
        result = park(program, database)
        assert result.delta.apply(database) == result.database

    @given(strat.program_database_pairs())
    @RELAXED
    def test_restart_bound_by_groundings(self, pair):
        # Coarse form of the paper's complexity remark: restarts never
        # exceed the number of blocked instances (each blocks >= 1 new).
        program, database = pair
        result = park(program, database)
        assert result.stats.restarts <= max(1, result.stats.blocked_instances)


class TestConflictFreeFragment:
    @given(strat.program_database_pairs(allow_deletes=False, allow_events=False))
    @RELAXED
    def test_insert_only_never_restarts(self, pair):
        program, database = pair
        result = park(program, database)
        assert result.stats.restarts == 0
        assert result.blocked == frozenset()

    @given(strat.program_database_pairs(allow_deletes=False, allow_events=False))
    @RELAXED
    def test_insert_only_matches_inflationary(self, pair):
        program, database = pair
        assert park(program, database).database == inflationary_fixpoint(
            program, database
        )


class TestBlockingModes:
    @given(strat.program_database_pairs())
    @RELAXED
    def test_minimal_mode_terminates_too(self, pair):
        program, database = pair
        result = park(program, database, blocking_mode=BlockingMode.MINIMAL)
        assert result.interpretation.is_consistent()

    @given(strat.program_database_pairs())
    @RELAXED
    def test_minimal_blocks_no_more_than_all(self, pair):
        program, database = pair
        all_mode = park(program, database, blocking_mode=BlockingMode.ALL)
        minimal = park(program, database, blocking_mode=BlockingMode.MINIMAL)
        assert minimal.stats.blocked_instances <= all_mode.stats.blocked_instances


class TestEvaluationStrategies:
    @given(strat.program_database_pairs())
    @RELAXED
    def test_seminaive_equals_naive(self, pair):
        """The semi-naive Γ evaluation is observationally identical."""
        program, database = pair
        naive = park(program, database, evaluation="naive")
        seminaive = park(program, database, evaluation="seminaive")
        assert naive.atoms == seminaive.atoms
        assert naive.blocked == seminaive.blocked
        assert naive.stats.rounds == seminaive.stats.rounds
