"""The columnar and row storage layouts are observationally identical.

:class:`~repro.storage.relation.ColumnarRelation` stores rows as tuples
of intern-table ids in per-column ``array('q')`` arrays; the row-oriented
:class:`~repro.storage.relation.Relation` is the reference oracle.  For
every random program, database, and update transaction, an engine run
must be bit-identical under both layouts — per-round firings, traces,
blocked sets, statistics, deltas, and final databases — across all three
Γ evaluation strategies and both matcher backends.  A relation-level
property additionally drives the two layouts through the same random
mutation sequence and asserts the raw dialect (rows, membership,
candidates) agrees at every step.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.property import strategies as strat

from repro.analysis.trace import TraceRecorder
from repro.core.engine import EngineListener, ParkEngine
from repro.engine.match import (
    clear_compile_cache,
    get_matcher_backend,
    set_matcher_backend,
)
from repro.errors import NonTerminationError
from repro.lang.atoms import Atom
from repro.lang.updates import Update, UpdateOp
from repro.storage.relation import (
    ColumnarRelation,
    Relation,
    get_storage_backend,
    set_storage_backend,
)

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

STORAGES = ("row", "columnar")
BACKENDS = ("interpreted", "compiled")
STRATEGIES = ("naive", "seminaive", "incremental")


def _with_storage(storage, backend, thunk):
    previous_storage = get_storage_backend()
    previous_backend = get_matcher_backend()
    set_storage_backend(storage)
    set_matcher_backend(backend)
    clear_compile_cache()
    try:
        return thunk()
    finally:
        set_storage_backend(previous_storage)
        set_matcher_backend(previous_backend)
        clear_compile_cache()


class FiringsRecorder(EngineListener):
    def __init__(self):
        self.rounds = []

    def on_round(self, round_number, epoch, gamma_result):
        self.rounds.append((round_number, epoch, gamma_result.firings))


@st.composite
def engine_scenarios(draw):
    program, database = draw(strat.program_database_pairs())
    arities = sorted(program.predicates())
    updates = []
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        predicate, arity = draw(st.sampled_from(arities))
        row = tuple(draw(strat.constants) for _ in range(arity))
        op = draw(st.sampled_from([UpdateOp.INSERT, UpdateOp.DELETE]))
        updates.append(Update(op, Atom(predicate, row)))
    return program, database, tuple(updates)


def _run_engine(strategy, program, database, updates):
    firings = FiringsRecorder()
    trace = TraceRecorder()
    engine = ParkEngine(
        listeners=(trace, firings),
        evaluation=strategy,
    )
    result = engine.run(program, database, updates=updates)
    return result, tuple(trace.events), tuple(firings.rounds)


@given(
    scenario=engine_scenarios(),
    strategy=st.sampled_from(STRATEGIES),
    backend=st.sampled_from(BACKENDS),
)
@RELAXED
def test_storage_layouts_bit_identical_engine_runs(scenario, strategy, backend):
    program, database, updates = scenario
    outcomes = {}
    failures = {}
    for storage in STORAGES:
        try:
            outcomes[storage] = _with_storage(
                storage,
                backend,
                lambda: _run_engine(strategy, program, database, updates),
            )
        except NonTerminationError as error:
            failures[storage] = str(error)
    if failures:
        assert set(failures) == set(STORAGES), (failures, outcomes)
        assert len(set(failures.values())) == 1, failures
        return

    base_result, base_trace, base_firings = outcomes["row"]
    result, trace, firings = outcomes["columnar"]
    assert firings == base_firings
    assert trace == base_trace
    assert result.blocked == base_result.blocked
    assert result.atoms == base_result.atoms
    assert result.delta.inserts == base_result.delta.inserts
    assert result.delta.deletes == base_result.delta.deletes
    assert result.stats.rounds == base_result.stats.rounds
    assert result.stats.restarts == base_result.stats.restarts
    assert result.stats.conflicts_resolved == base_result.stats.conflicts_resolved
    assert result.stats.firings_total == base_result.stats.firings_total


# -- relation-level oracle equivalence ---------------------------------------------

_VALUES = ("a", "b", "c", 1, 2)


@st.composite
def mutation_sequences(draw):
    arity = draw(st.integers(min_value=0, max_value=3))
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["add", "discard"]),
                st.tuples(*[st.sampled_from(_VALUES)] * arity),
            ),
            max_size=25,
        )
    )
    probes = draw(
        st.lists(
            st.tuples(*[st.sampled_from(_VALUES + ("zzz",))] * arity),
            max_size=5,
        )
    )
    return arity, ops, probes


@given(mutation_sequences())
@RELAXED
def test_columnar_matches_row_oracle(sequence):
    arity, ops, probes = sequence
    oracle = Relation("r", arity)
    columnar = ColumnarRelation("r", arity)
    for op, row in ops:
        if op == "add":
            assert oracle.add(row) == columnar.add(row)
        else:
            assert oracle.discard(row) == columnar.discard(row)
        assert len(oracle) == len(columnar)
        assert set(oracle.rows()) == set(columnar.rows())
        assert oracle == columnar and columnar == oracle
    for row in probes:
        assert (row in oracle) == (row in columnar)
    if arity:
        for column in range(arity):
            for value in _VALUES:
                assert set(oracle.candidates({column: value})) == set(
                    columnar.candidates({column: value})
                )
    assert set(oracle.candidates({})) == set(columnar.candidates({}))
