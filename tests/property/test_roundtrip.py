"""Property-based round-trip tests for the parser / pretty-printer."""

from hypothesis import given, settings

from tests.property import strategies as strat

from repro.lang.parser import parse_atom, parse_program, parse_rule
from repro.lang.pretty import (
    render_atom,
    render_program,
    render_rule,
    render_term,
)
from repro.lang.program import Program


class TestTermRoundTrip:
    @given(strat.terms)
    def test_terms_survive_atom_roundtrip(self, term):
        from repro.lang.atoms import Atom

        original = Atom("wrap", (term,))
        assert parse_atom(render_atom(original)) == original


class TestAtomRoundTrip:
    @given(strat.atoms())
    def test_atoms(self, atom_obj):
        assert parse_atom(render_atom(atom_obj)) == atom_obj

    @given(strat.ground_atoms)
    def test_ground_atoms(self, atom_obj):
        parsed = parse_atom(render_atom(atom_obj))
        assert parsed == atom_obj
        assert parsed.is_ground()


class TestRuleRoundTrip:
    @given(strat.safe_rules())
    @settings(max_examples=200)
    def test_rules(self, rule):
        assert parse_rule(render_rule(rule)) == rule

    @given(strat.safe_rules(allow_events=False, allow_deletes=False))
    def test_deductive_rules(self, rule):
        assert parse_rule(render_rule(rule)) == rule


class TestProgramRoundTrip:
    @given(strat.arity_consistent_programs())
    def test_programs(self, pair):
        program, _ = pair
        assert parse_program(render_program(program)) == program

    @given(strat.arity_consistent_programs())
    def test_render_is_deterministic(self, pair):
        program, _ = pair
        assert render_program(program) == render_program(program)
